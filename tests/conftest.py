"""Shared fixtures for the test suite.

Expensive artifacts (synthetic corpora, engines, representatives) are
session-scoped; tests must treat them as immutable.
"""

from __future__ import annotations

import os
import time
import types

import pytest
from hypothesis import settings as hypothesis_settings

from repro.corpus import Collection, Query
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.representatives import DatabaseRepresentative, TermStats, build_representative

# -- Hypothesis profiles -------------------------------------------------------
#
# "ci" is fully deterministic (derandomized, fixed example budget) so the
# GitHub Actions matrix cannot flake on pull requests; "ci-main" spends a
# larger randomized example budget on pushes to main, where a rare failure
# is a find rather than a blocked merge.  Select with HYPOTHESIS_PROFILE.

hypothesis_settings.register_profile(
    "ci", derandomize=True, max_examples=50, deadline=None
)
hypothesis_settings.register_profile(
    "ci-main", max_examples=400, deadline=None, print_blob=True
)
hypothesis_settings.register_profile("dev", deadline=None)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


# -- fault-injection engine doubles -------------------------------------------
#
# Wrappers around a real SearchEngine that misbehave only in ``search``;
# everything else (name, index, collection, max_similarity, ...) delegates,
# so representatives build normally and the oracle still works.


class EngineDouble:
    """Delegating wrapper base; subclasses override ``search``."""

    def __init__(self, inner: SearchEngine):
        self.inner = inner

    def __getattr__(self, attr):
        return getattr(self.inner, attr)


class SlowEngine(EngineDouble):
    """Answers correctly after ``delay`` seconds — a slow/hung backend."""

    def __init__(self, inner: SearchEngine, delay: float):
        super().__init__(inner)
        self.delay = delay
        self.calls = 0

    def search(self, query, threshold=0.0):
        self.calls += 1
        time.sleep(self.delay)
        return self.inner.search(query, threshold)


class FlakyEngine(EngineDouble):
    """Raises on the first ``failures`` calls, then answers correctly."""

    def __init__(self, inner: SearchEngine, failures: int, exc=RuntimeError):
        super().__init__(inner)
        self.remaining_failures = failures
        self.exc = exc
        self.calls = 0

    def search(self, query, threshold=0.0):
        self.calls += 1
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise self.exc(f"injected failure from {self.inner.name}")
        return self.inner.search(query, threshold)


class BrokenEngine(EngineDouble):
    """Raises on every call — a backend that is simply down."""

    def __init__(self, inner: SearchEngine, exc=ConnectionError):
        super().__init__(inner)
        self.exc = exc
        self.calls = 0

    def search(self, query, threshold=0.0):
        self.calls += 1
        raise self.exc(f"{self.inner.name} is down")


@pytest.fixture(scope="session")
def engine_doubles():
    """The fault-injection wrappers, importable from any test directory."""
    return types.SimpleNamespace(
        EngineDouble=EngineDouble,
        SlowEngine=SlowEngine,
        FlakyEngine=FlakyEngine,
        BrokenEngine=BrokenEngine,
    )

# -- the paper's worked example (Examples 3.1 / 3.2) ---------------------------

#: Document vectors of Example 3.1 (components on the three query terms).
EXAMPLE31_DOCS = [(3, 0, 0), (1, 1, 0), (0, 0, 2), (2, 0, 2), (0, 0, 0)]


@pytest.fixture(scope="session")
def example31_representative() -> DatabaseRepresentative:
    """The representative of the paper's Example 3.1 database: five
    documents, (p1,w1)=(0.6,2), (p2,w2)=(0.2,1), (p3,w3)=(0.4,2)."""
    return DatabaseRepresentative(
        "example31",
        n_documents=5,
        term_stats={
            "t1": TermStats(probability=0.6, mean=2.0, std=0.0, max_weight=3.0),
            "t2": TermStats(probability=0.2, mean=1.0, std=0.0, max_weight=1.0),
            "t3": TermStats(probability=0.4, mean=2.0, std=0.0, max_weight=2.0),
        },
    )


@pytest.fixture(scope="session")
def example31_query() -> Query:
    """q = (1, 1, 1) over the three terms, unnormalized as in the example."""
    return Query(terms=("t1", "t2", "t3"), weights=(1.0, 1.0, 1.0))


# -- tiny hand-made text corpus ---------------------------------------------------

TINY_TEXTS = [
    ("a1", "apple banana apple cherry"),
    ("a2", "banana cherry cherry"),
    ("a3", "apple apple apple"),
    ("a4", "durian elderberry fig"),
    ("a5", "fig grape banana"),
]


@pytest.fixture(scope="session")
def tiny_collection() -> Collection:
    """Five short fruit documents, stemming disabled for predictability."""
    from repro.text import TextPipeline

    return Collection.from_texts(
        "tiny", TINY_TEXTS, pipeline=TextPipeline(stem=False)
    )


@pytest.fixture(scope="session")
def tiny_engine(tiny_collection) -> SearchEngine:
    return SearchEngine(tiny_collection)


@pytest.fixture(scope="session")
def tiny_representative(tiny_engine) -> DatabaseRepresentative:
    return build_representative(tiny_engine)


# -- small synthetic corpus -------------------------------------------------------

SMALL_GROUP_SIZES = [60, 50, 40, 30, 25, 20, 15, 12, 10, 8]


@pytest.fixture(scope="session")
def small_model() -> NewsgroupModel:
    """A scaled-down newsgroup model: 10 groups, small vocabulary."""
    return NewsgroupModel(
        vocab_size=4000,
        topic_size=120,
        topic_band=(50, 1500),
        mean_length=80,
        seed=12345,
        group_sizes=SMALL_GROUP_SIZES,
    )


@pytest.fixture(scope="session")
def small_group0(small_model) -> Collection:
    return small_model.generate_group(0)


@pytest.fixture(scope="session")
def small_engine(small_group0) -> SearchEngine:
    return SearchEngine(small_group0)


@pytest.fixture(scope="session")
def small_representative(small_engine) -> DatabaseRepresentative:
    return build_representative(small_engine)


@pytest.fixture(scope="session")
def small_queries(small_model):
    return QueryLogModel(small_model, seed=99).generate(150)
