"""Shared fixtures for the test suite.

Expensive artifacts (synthetic corpora, engines, representatives) are
session-scoped; tests must treat them as immutable.
"""

from __future__ import annotations

import pytest

from repro.corpus import Collection, Query
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.representatives import DatabaseRepresentative, TermStats, build_representative

# -- the paper's worked example (Examples 3.1 / 3.2) ---------------------------

#: Document vectors of Example 3.1 (components on the three query terms).
EXAMPLE31_DOCS = [(3, 0, 0), (1, 1, 0), (0, 0, 2), (2, 0, 2), (0, 0, 0)]


@pytest.fixture(scope="session")
def example31_representative() -> DatabaseRepresentative:
    """The representative of the paper's Example 3.1 database: five
    documents, (p1,w1)=(0.6,2), (p2,w2)=(0.2,1), (p3,w3)=(0.4,2)."""
    return DatabaseRepresentative(
        "example31",
        n_documents=5,
        term_stats={
            "t1": TermStats(probability=0.6, mean=2.0, std=0.0, max_weight=3.0),
            "t2": TermStats(probability=0.2, mean=1.0, std=0.0, max_weight=1.0),
            "t3": TermStats(probability=0.4, mean=2.0, std=0.0, max_weight=2.0),
        },
    )


@pytest.fixture(scope="session")
def example31_query() -> Query:
    """q = (1, 1, 1) over the three terms, unnormalized as in the example."""
    return Query(terms=("t1", "t2", "t3"), weights=(1.0, 1.0, 1.0))


# -- tiny hand-made text corpus ---------------------------------------------------

TINY_TEXTS = [
    ("a1", "apple banana apple cherry"),
    ("a2", "banana cherry cherry"),
    ("a3", "apple apple apple"),
    ("a4", "durian elderberry fig"),
    ("a5", "fig grape banana"),
]


@pytest.fixture(scope="session")
def tiny_collection() -> Collection:
    """Five short fruit documents, stemming disabled for predictability."""
    from repro.text import TextPipeline

    return Collection.from_texts(
        "tiny", TINY_TEXTS, pipeline=TextPipeline(stem=False)
    )


@pytest.fixture(scope="session")
def tiny_engine(tiny_collection) -> SearchEngine:
    return SearchEngine(tiny_collection)


@pytest.fixture(scope="session")
def tiny_representative(tiny_engine) -> DatabaseRepresentative:
    return build_representative(tiny_engine)


# -- small synthetic corpus -------------------------------------------------------

SMALL_GROUP_SIZES = [60, 50, 40, 30, 25, 20, 15, 12, 10, 8]


@pytest.fixture(scope="session")
def small_model() -> NewsgroupModel:
    """A scaled-down newsgroup model: 10 groups, small vocabulary."""
    return NewsgroupModel(
        vocab_size=4000,
        topic_size=120,
        topic_band=(50, 1500),
        mean_length=80,
        seed=12345,
        group_sizes=SMALL_GROUP_SIZES,
    )


@pytest.fixture(scope="session")
def small_group0(small_model) -> Collection:
    return small_model.generate_group(0)


@pytest.fixture(scope="session")
def small_engine(small_group0) -> SearchEngine:
    return SearchEngine(small_group0)


@pytest.fixture(scope="session")
def small_representative(small_engine) -> DatabaseRepresentative:
    return build_representative(small_engine)


@pytest.fixture(scope="session")
def small_queries(small_model):
    return QueryLogModel(small_model, seed=99).generate(150)
