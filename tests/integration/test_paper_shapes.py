"""Integration tests asserting the paper's qualitative findings.

These encode the *shape* claims of Section 4 — which method wins, and by
what kind of margin — on the small synthetic corpus, so a regression in any
estimator that flips the paper's conclusions fails loudly.
"""

import pytest

from repro.core import (
    BasicEstimator,
    GlossHighCorrelationEstimator,
    PreviousMethodEstimator,
    SubrangeEstimator,
)
from repro.evaluation import MethodSpec, run_usefulness_experiment
from repro.representatives import quantize_representative


@pytest.fixture(scope="module")
def result(small_engine, small_representative, small_queries):
    methods = [
        MethodSpec("gloss-hc", GlossHighCorrelationEstimator(), small_representative),
        MethodSpec("prev", PreviousMethodEstimator(), small_representative),
        MethodSpec("subrange", SubrangeEstimator(), small_representative),
        MethodSpec("basic", BasicEstimator(), small_representative),
        MethodSpec(
            "subrange-1byte",
            SubrangeEstimator(),
            quantize_representative(small_representative),
        ),
        MethodSpec(
            "subrange-triplet",
            SubrangeEstimator(use_stored_max=False),
            small_representative.as_triplets(),
        ),
    ]
    return run_usefulness_experiment(
        small_engine, small_queries, methods, thresholds=(0.1, 0.2, 0.3)
    )


def totals(result, key, field):
    return sum(getattr(row, field) for row in result.metrics[key])


class TestMethodOrdering:
    def test_subrange_matches_most(self, result):
        assert totals(result, "subrange", "match") > totals(result, "prev", "match")
        assert totals(result, "prev", "match") > totals(result, "gloss-hc", "match")

    def test_subrange_matches_nearly_all_useful(self, result):
        matched = totals(result, "subrange", "match")
        useful = sum(result.useful_counts())
        assert matched >= 0.85 * useful

    def test_subrange_smaller_dn_than_gloss(self, result):
        assert totals(result, "subrange", "d_nodoc") < totals(
            result, "gloss-hc", "d_nodoc"
        )

    def test_subrange_smaller_ds_than_others(self, result):
        for other in ("gloss-hc", "prev"):
            assert totals(result, "subrange", "d_avgsim") < totals(
                result, other, "d_avgsim"
            )

    def test_subrange_beats_plain_basic(self, result):
        assert totals(result, "subrange", "match") >= totals(
            result, "basic", "match"
        )

    def test_mismatch_stays_moderate(self, result):
        # Subrange mismatches must stay a small fraction of matches, as in
        # every paper table.
        assert totals(result, "subrange", "mismatch") <= 0.25 * totals(
            result, "subrange", "match"
        )


class TestQuantizationRobustness:
    """Tables 7-9: one-byte coding changes essentially nothing."""

    def test_match_nearly_identical(self, result):
        exact = totals(result, "subrange", "match")
        approx = totals(result, "subrange-1byte", "match")
        assert abs(exact - approx) <= max(3, 0.02 * exact)

    def test_dn_nearly_identical(self, result):
        exact = totals(result, "subrange", "d_nodoc")
        approx = totals(result, "subrange-1byte", "d_nodoc")
        assert approx == pytest.approx(exact, rel=0.15, abs=0.5)


class TestMaxWeightValue:
    """Tables 10-12: dropping the stored max weight hurts.

    In the paper the damage shows up as lost matches (their max weights far
    exceed the normal approximation); on a near-normal synthetic weight
    distribution the same estimation error surfaces as spurious matches and
    larger AvgSim error instead — degraded accuracy either way.
    """

    def test_triplet_mismatches_much_more(self, result):
        quad = totals(result, "subrange", "mismatch")
        trip = totals(result, "subrange-triplet", "mismatch")
        assert trip >= 2 * max(quad, 1)

    def test_triplet_larger_avgsim_error(self, result):
        assert totals(result, "subrange-triplet", "d_avgsim") > totals(
            result, "subrange", "d_avgsim"
        )

    def test_triplet_still_beats_gloss(self, result):
        assert totals(result, "subrange-triplet", "match") > totals(
            result, "gloss-hc", "match"
        )
