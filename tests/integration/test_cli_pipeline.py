"""Integration test: the CLI data pipeline end to end.

synth (reduced scale via a patched model) -> represent -> estimate, plus
the evaluate command on a tiny query budget.  Exercises the exact command
sequence the README documents.
"""

import pytest

from repro.cli import main
from repro.corpus import load_collection, load_queries


@pytest.mark.slow
class TestCliPipeline:
    def test_synth_represent_estimate(self, tmp_path, capsys):
        out_dir = tmp_path / "data"
        assert main(
            ["synth", "--out-dir", str(out_dir), "--n-queries", "50"]
        ) == 0
        assert (out_dir / "D1.jsonl.gz").exists()
        assert (out_dir / "D2.jsonl.gz").exists()
        assert (out_dir / "D3.jsonl.gz").exists()
        assert (out_dir / "queries.jsonl.gz").exists()

        d1 = load_collection(out_dir / "D1.jsonl.gz")
        assert d1.n_documents == 761
        queries = load_queries(out_dir / "queries.jsonl.gz")
        assert len(queries) == 50

        rep_path = tmp_path / "d1.rep.json"
        assert main(
            [
                "represent",
                "--collection", str(out_dir / "D1.jsonl.gz"),
                "--out", str(rep_path),
            ]
        ) == 0
        assert rep_path.exists()

        # Estimate with a term guaranteed to exist in D1.
        term = next(iter(d1.vocabulary))
        assert main(
            [
                "estimate",
                "--collection", str(out_dir / "D1.jsonl.gz"),
                "--representative", str(rep_path),
                "--query", term,
                "--threshold", "0.1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "estimated: NoDoc=" in out

    def test_evaluate_small(self, capsys):
        assert main(
            ["evaluate", "--database", "D1", "--queries", "60"]
        ) == 0
        out = capsys.readouterr().out
        assert "match/mismatch on D1" in out
        assert "subrange method" in out
