"""Differential suite: the columnar broker vs the scalar broker.

A broker constructed with ``columnar=True`` keeps the fleet's
representatives in the packed :class:`FleetRepresentativeStore` and
answers supported estimators through the engine-axis vectorized grid.
That path promises *exact* equality with the scalar broker — same bits,
same row order, same cache interplay — so every comparison here is
``==``, never ``approx``.

Covered: estimate_all/estimate_batch/search equality across estimator
families, the estimate cache in front of the fleet path, representative
refresh via re-registration, fall-back for estimators the grid does not
support, and the lightweight read-through ref the registration keeps in
place of the dict representative.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BasicEstimator,
    BinaryIndependenceEstimator,
    GlossDisjointEstimator,
    GlossHighCorrelationEstimator,
    PreviousMethodEstimator,
    SubrangeEstimator,
)
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker
from repro.representatives import (
    DatabaseRepresentative,
    FleetRepresentativeRef,
    SubrangeScheme,
    build_representative,
)

N_QUERIES = 25
THRESHOLDS = (0.1, 0.3, 0.6)


@pytest.fixture(scope="module")
def fleet_model():
    return NewsgroupModel(
        vocab_size=2500,
        topic_size=100,
        topic_band=(40, 1000),
        mean_length=70,
        seed=2024,
        group_sizes=[35, 30, 25, 20],
    )


@pytest.fixture(scope="module")
def fleet_engines(fleet_model):
    return [
        SearchEngine(fleet_model.generate_group(group)) for group in range(4)
    ]


@pytest.fixture(scope="module")
def fleet_queries(fleet_model):
    return QueryLogModel(fleet_model, seed=77).generate(N_QUERIES)


def make_pair(engines, estimator_factory, **kwargs):
    brokers = []
    for columnar in (False, True):
        broker = MetasearchBroker(
            estimator=estimator_factory(), columnar=columnar, **kwargs
        )
        for engine in engines:
            broker.register(engine)
        brokers.append(broker)
    return brokers


ESTIMATOR_FACTORIES = [
    pytest.param(SubrangeEstimator, id="subrange"),
    pytest.param(
        lambda: SubrangeEstimator(scheme=SubrangeScheme.equal(4, include_max=True)),
        id="subrange-max",
    ),
    pytest.param(BasicEstimator, id="basic"),
    pytest.param(BinaryIndependenceEstimator, id="binary"),
    pytest.param(GlossHighCorrelationEstimator, id="gloss-hc"),
    pytest.param(GlossDisjointEstimator, id="gloss-dj"),
]


class TestEquality:
    @pytest.mark.parametrize("estimator_factory", ESTIMATOR_FACTORIES)
    def test_estimate_all_exact(
        self, fleet_engines, fleet_queries, estimator_factory
    ):
        scalar, columnar = make_pair(fleet_engines, estimator_factory)
        for query in fleet_queries:
            for threshold in THRESHOLDS:
                assert columnar.estimate_all(
                    query, threshold
                ) == scalar.estimate_all(query, threshold)

    def test_estimate_batch_exact(self, fleet_engines, fleet_queries):
        scalar, columnar = make_pair(fleet_engines, SubrangeEstimator)
        queries = [q for q in fleet_queries for __ in THRESHOLDS]
        thresholds = [t for __ in fleet_queries for t in THRESHOLDS]
        assert columnar.estimate_batch(queries, thresholds) == (
            scalar.estimate_batch(queries, thresholds)
        )

    def test_search_exact(self, fleet_engines, fleet_queries):
        scalar, columnar = make_pair(fleet_engines, SubrangeEstimator)
        for query in fleet_queries[:8]:
            a = scalar.search(query, 0.3)
            b = columnar.search(query, 0.3)
            assert b.estimates == a.estimates
            assert b.hits == a.hits


class TestCacheInterplay:
    def test_estimate_cache_serves_fleet_rows(self, fleet_engines, fleet_queries):
        __, columnar = make_pair(fleet_engines, SubrangeEstimator)
        query = fleet_queries[0]
        cold = columnar.estimate_all(query, 0.3)
        misses = columnar.cache.misses
        warm = columnar.estimate_all(query, 0.3)
        assert warm == cold
        assert columnar.cache.hits >= len(fleet_engines)
        assert columnar.cache.misses == misses

    def test_disabled_caches_still_exact(self, fleet_engines, fleet_queries):
        scalar, columnar = make_pair(
            fleet_engines, SubrangeEstimator, cache_size=0, polycache_size=0
        )
        for query in fleet_queries[:6]:
            assert columnar.estimate_all(query, 0.3) == scalar.estimate_all(
                query, 0.3
            )


class TestRegistration:
    def test_registration_keeps_read_through_ref(self, fleet_engines):
        __, columnar = make_pair(fleet_engines, SubrangeEstimator)
        name = fleet_engines[0].name
        rep = columnar.representative_of(name)
        assert isinstance(rep, FleetRepresentativeRef)
        materialized = columnar.fleet.materialize(name)
        assert dict(rep.items()) == dict(materialized.items())

    def test_refresh_invalidates_and_stays_exact(
        self, fleet_model, fleet_queries
    ):
        engines = [
            SearchEngine(fleet_model.generate_group(group)) for group in range(3)
        ]
        scalar, columnar = make_pair(engines, SubrangeEstimator)
        query = fleet_queries[0]
        before = columnar.estimate_all(query, 0.3)
        assert before == scalar.estimate_all(query, 0.3)
        # Refresh one engine's registration with a replacement
        # representative (as a subscribing broker would after an update).
        donor = build_representative(SearchEngine(fleet_model.generate_group(3)))
        replacement = DatabaseRepresentative(
            name=engines[0].name,
            n_documents=donor.n_documents,
            term_stats=dict(donor.items()),
        )
        scalar.register(engines[0], representative=replacement)
        columnar.register(engines[0], representative=replacement)
        after = columnar.estimate_all(query, 0.3)
        assert after == scalar.estimate_all(query, 0.3)
        # The fleet store really swapped the representative in place.
        materialized = columnar.fleet.materialize(engines[0].name)
        assert materialized.n_documents == donor.n_documents
        assert dict(materialized.items()) == dict(donor.items())

    def test_unsupported_estimator_falls_back(self, fleet_engines, fleet_queries):
        scalar, columnar = make_pair(fleet_engines, PreviousMethodEstimator)
        for query in fleet_queries[:6]:
            assert columnar.estimate_all(query, 0.3) == scalar.estimate_all(
                query, 0.3
            )
