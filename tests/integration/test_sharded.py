"""Integration tests for the sharded fleet topology.

The headline contract: a fleet partitioned across shard-worker
*processes* behind the scatter-gather coordinator answers every query
**exactly** (``==``) like an in-process columnar broker over the same
collections — same merged hits, same estimate rows, same invoked
engines — at 2 shards and at 4.  Plus the degradation story: a shard
killed mid-flight becomes per-engine ``EngineFailure`` records naming
the shard, while the surviving shards' answers merge exactly as the
in-process broker restricted to the surviving engines would.  The
asyncio frontend's framing policy (keep-alive reuse, 411/413/400) is
covered here too, since the coordinator is its primary tenant.
"""

import http.client
import json
import re
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.corpus import Collection, Document, Query, save_collection
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker
from repro.obs import MetricsRegistry
from repro.representatives import partition_round_robin
from repro.serving import (
    AsyncServingServer,
    CoordinatorApp,
    GatewayApp,
    GatewayClient,
    ServingServer,
    ShardApp,
    ShardedFleet,
)

pytestmark = pytest.mark.slow

N_ENGINES = 4

VOCAB = ["rocket", "orbit", "engine", "fuel", "sauce", "basil", "kiwi", "plum"]


def fleet_collections():
    """Four small overlapping collections with deterministic contents."""
    collections = []
    for e in range(N_ENGINES):
        documents = []
        for d in range(6):
            terms = [
                VOCAB[(e + d + k) % len(VOCAB)]
                for k in range((e * 7 + d * 3) % 5 + 2)
            ]
            documents.append(Document(f"e{e}-d{d}", terms=terms))
        collections.append(Collection.from_documents(f"engine{e}", documents))
    return collections


QUERIES = [
    Query(terms=("rocket", "orbit"), weights=(2.0, 1.0)),
    Query(terms=("sauce",), weights=(1.0,)),
    Query(terms=("kiwi", "fuel", "basil"), weights=(1.0, 3.0, 0.5)),
    Query(terms=("nosuchterm",), weights=(1.0,)),
]

THRESHOLDS = (0.0, 0.2, 0.5)


def save_fleet(tmp, collections):
    paths = []
    for collection in collections:
        path = tmp / f"{collection.name}.jsonl.gz"
        save_collection(collection, path)
        paths.append(str(path))
    return paths


def spawn_shard_workers(paths, n_shards):
    """Launch one ``repro serve shard`` process per round-robin slice;
    returns ``(processes, urls)`` with urls in shard-index order."""
    slices = [s for s in partition_round_robin(paths, n_shards) if s]
    processes, urls = [], []
    try:
        for index, slice_paths in enumerate(slices):
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "serve",
                    "shard",
                    "--shard-index",
                    str(index),
                    "--collections",
                    *slice_paths,
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            processes.append(proc)
        for proc in processes:
            url = None
            deadline = time.time() + 60
            while time.time() < deadline:
                line = proc.stdout.readline()
                if not line:
                    break
                match = re.search(r"serving shard at (http://\S+)", line)
                if match:
                    url = match.group(1)
                    break
            assert url, "shard worker did not announce its URL"
            urls.append(url)
    except BaseException:
        stop_processes(processes)
        raise
    return processes, urls


def stop_processes(processes):
    for proc in processes:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
    for proc in processes:
        try:
            proc.communicate(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()


def local_columnar_broker(collections):
    broker = MetasearchBroker(columnar=True)
    for collection in collections:
        broker.register(SearchEngine(collection))
    return broker


class TestShardedExactness:
    """2- and 4-shard topologies vs the in-process columnar broker."""

    @pytest.fixture(scope="class", params=[2, 4])
    def topology(self, request, tmp_path_factory):
        n_shards = request.param
        tmp = tmp_path_factory.mktemp(f"sharded-{n_shards}")
        collections = fleet_collections()
        paths = save_fleet(tmp, collections)
        processes, urls = spawn_shard_workers(paths, n_shards)
        fleet = ShardedFleet(urls, retries=1).attach(timeout=30.0)
        try:
            yield collections, fleet, urls
        finally:
            fleet.close()
            stop_processes(processes)

    @pytest.fixture(scope="class")
    def local_broker(self, topology):
        collections, __, __urls = topology
        return local_columnar_broker(collections)

    def test_every_engine_is_owned_exactly_once(self, topology):
        __, fleet, urls = topology
        assert fleet.n_shards == len(urls)
        assert fleet.engine_names == sorted(f"engine{e}" for e in range(N_ENGINES))

    def test_search_matches_in_process_broker_exactly(
        self, topology, local_broker
    ):
        __, fleet, __urls = topology
        for query in QUERIES:
            for threshold in THRESHOLDS:
                sharded = fleet.search(query, threshold)
                local = local_broker.search(query, threshold)
                assert sharded.hits == local.hits
                assert sharded.estimates == local.estimates
                assert sharded.invoked == local.invoked
                assert sharded.failures == local.failures

    def test_estimates_match_in_process_broker_exactly(
        self, topology, local_broker
    ):
        __, fleet, __urls = topology
        for query in QUERIES:
            for threshold in THRESHOLDS:
                assert fleet.estimate_all(query, threshold) == (
                    local_broker.estimate_all(query, threshold)
                )

    def test_batch_matches_in_process_broker_exactly(
        self, topology, local_broker
    ):
        __, fleet, __urls = topology
        sharded = fleet.search_batch(QUERIES, 0.2, limit=5)
        local = local_broker.search_batch(QUERIES, 0.2, limit=5)
        assert [r.hits for r in sharded] == [r.hits for r in local]
        assert [r.estimates for r in sharded] == [r.estimates for r in local]
        assert [r.invoked for r in sharded] == [r.invoked for r in local]
        assert [r.failures for r in sharded] == [r.failures for r in local]

    def test_per_query_thresholds_match(self, topology, local_broker):
        __, fleet, __urls = topology
        thresholds = [0.1, 0.3, 0.0, 0.5]
        assert fleet.estimate_batch(QUERIES, thresholds) == (
            local_broker.estimate_batch(QUERIES, thresholds)
        )

    def test_coordinator_app_serves_the_fleet(self, topology, local_broker):
        """The coordinator behind the asyncio frontend answers the PR 4
        wire schema exactly like a single-broker gateway would."""
        __, fleet, urls = topology
        app = CoordinatorApp(fleet, max_active=8, max_queued=16)
        server = AsyncServingServer(app)
        server.start_background()
        try:
            client = GatewayClient(server.url)
            health = client.healthz()
            assert health["role"] == "coordinator"
            assert len(health["shards"]) == len(urls)
            assert len(health["engines"]) == N_ENGINES
            for query in QUERIES:
                remote = client.search(query, 0.2)
                local = local_broker.search(query, 0.2)
                assert remote.hits == local.hits
                assert remote.estimates == local.estimates
                assert remote.invoked == local.invoked
            remote_batch = client.search_batch(QUERIES, 0.2, limit=5)
            local_batch = local_broker.search_batch(QUERIES, 0.2, limit=5)
            assert [r.hits for r in remote_batch] == [
                r.hits for r in local_batch
            ]
            metrics = client.metrics_text()
            assert "repro_serving_requests_total" in metrics
            assert "repro_serving_async_connections" in metrics
        finally:
            assert server.drain(timeout=15)
        assert server.final_metrics is not None


class TestPartialShardFailure:
    """A dead shard degrades to per-engine failures, never a failed query."""

    @pytest.fixture
    def degraded(self, tmp_path):
        collections = fleet_collections()
        paths = save_fleet(tmp_path, collections)
        processes, urls = spawn_shard_workers(paths, 2)
        fleet = ShardedFleet(urls, shard_timeout=5.0)
        try:
            fleet.attach(timeout=30.0)
            # Learn the ownership map from the workers themselves, then
            # kill shard 1 outright (SIGKILL: no graceful drain, the
            # socket just dies under the coordinator).
            with urllib.request.urlopen(urls[1] + "/healthz", timeout=5) as r:
                dead_engines = json.loads(r.read())["engines"]
            processes[1].kill()
            processes[1].wait(timeout=15)
            survivors = [
                c for c in collections if c.name not in set(dead_engines)
            ]
            yield fleet, survivors, dead_engines
        finally:
            fleet.close()
            stop_processes(processes)

    def test_search_degrades_to_surviving_engines(self, degraded):
        fleet, survivors, dead_engines = degraded
        local = local_columnar_broker(survivors)
        for query in QUERIES[:2]:
            sharded = fleet.search(query, 0.2)
            expected = local.search(query, 0.2)
            # The merged ranking is exactly the in-process broker
            # restricted to the surviving engines...
            assert sharded.hits == expected.hits
            assert sharded.estimates == expected.estimates
            assert sharded.invoked == expected.invoked
            # ...plus one failure record per engine the dead shard owned,
            # naming the shard so the topology fault is diagnosable.
            assert sorted(f.engine for f in sharded.failures) == sorted(
                dead_engines
            )
            for failure in sharded.failures:
                assert "shard 1" in failure.message
                assert failure.kind in ("error", "timeout")
            assert sharded.degraded

    def test_estimates_degrade_to_surviving_engines(self, degraded):
        fleet, survivors, dead_engines = degraded
        local = local_columnar_broker(survivors)
        query = QUERIES[0]
        assert fleet.estimate_all(query, 0.2) == local.estimate_all(query, 0.2)


class TestShardAppValidation:
    """Shard route policy, exercised directly against the app."""

    @pytest.fixture(scope="class")
    def shard_app(self):
        broker = local_columnar_broker(fleet_collections()[:2])
        return ShardApp(broker, shard_index=3, max_batch=2)

    def post(self, app, path, payload):
        return app.handle(
            "POST", path, {}, json.dumps(payload).encode("utf-8")
        )

    def test_healthz_names_shard_and_engines(self, shard_app):
        response = shard_app.handle("GET", "/healthz", {}, b"")
        assert response.status == 200
        assert response.payload["shard"] == 3
        assert response.payload["engines"] == ["engine0", "engine1"]

    def test_estimate_batch_answers_per_query_rows(self, shard_app):
        from repro.serving.wire import query_to_wire

        response = self.post(
            shard_app,
            "/estimate",
            {
                "queries": [query_to_wire(q) for q in QUERIES[:2]],
                "thresholds": 0.2,
            },
        )
        assert response.status == 200
        assert response.payload["kind"] == "shard.estimates"
        assert response.payload["shard"] == 3
        assert len(response.payload["rows"]) == 2
        assert all(len(row) == 2 for row in response.payload["rows"])

    def test_non_list_batch_is_400(self, shard_app):
        assert self.post(shard_app, "/estimate", {"queries": "nope"}).status == 400

    def test_oversized_batch_is_413(self, shard_app):
        from repro.serving.wire import query_to_wire

        wire = [query_to_wire(q) for q in QUERIES[:3]]
        response = self.post(
            shard_app, "/estimate", {"queries": wire, "thresholds": 0.2}
        )
        assert response.status == 413

    def test_unknown_engine_in_dispatch_is_400(self, shard_app):
        from repro.serving.wire import query_to_wire

        response = self.post(
            shard_app,
            "/dispatch",
            {
                "entries": [
                    {
                        "query": query_to_wire(QUERIES[0]),
                        "threshold": 0.2,
                        "engines": ["engine7"],
                    }
                ]
            },
        )
        assert response.status == 400
        assert "engine7" in response.payload["error"]

    def test_slice_round_trips_the_columnar_store(self, shard_app, tmp_path):
        import io

        from repro.representatives import FleetRepresentativeStore

        response = shard_app.handle("GET", "/slice", {}, b"")
        assert response.status == 200
        assert response.content_type == "application/octet-stream"
        assert response.headers["X-Repro-Shard"] == "3"
        restored = FleetRepresentativeStore.load_npz(io.BytesIO(response.raw))
        assert restored.engine_names == shard_app.broker.fleet.engine_names
        # Cached: the second request serves the identical buffer.
        again = shard_app.handle("GET", "/slice", {}, b"")
        assert again.raw is response.raw


class TestAsyncFrontendFraming:
    """The asyncio server's body/keep-alive policy mirrors the threaded one."""

    @pytest.fixture(scope="class")
    def async_gateway(self):
        broker = local_columnar_broker(fleet_collections())
        registry = MetricsRegistry()
        app = GatewayApp(
            broker, max_active=4, max_queued=8, registry=registry,
            max_body=4096,
        )
        server = AsyncServingServer(app)
        server.start_background()
        yield server
        server.drain(timeout=10)

    def request_raw(self, server, payload: bytes, conn=None, extra=()):
        own = conn is None
        if own:
            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
        headers = {"Content-Type": "application/json"}
        headers.update(dict(extra))
        conn.request("POST", "/search", body=payload, headers=headers)
        response = conn.getresponse()
        body = response.read()
        if own:
            conn.close()
        return response, body

    SEARCH = json.dumps(
        {
            "query": {"kind": "query", "terms": ["rocket"], "weights": [1.0]},
            "threshold": 0.1,
        }
    ).encode("utf-8")

    def test_keep_alive_reuses_one_connection(self, async_gateway):
        conn = http.client.HTTPConnection(
            async_gateway.host, async_gateway.port, timeout=10
        )
        try:
            first, __ = self.request_raw(async_gateway, self.SEARCH, conn)
            assert first.status == 200
            sock = conn.sock
            second, body = self.request_raw(async_gateway, self.SEARCH, conn)
            assert second.status == 200
            assert conn.sock is sock, "server closed a keep-alive connection"
            assert json.loads(body)["kind"] == "response"
        finally:
            conn.close()

    def test_chunked_body_is_411(self, async_gateway):
        conn = http.client.HTTPConnection(
            async_gateway.host, async_gateway.port, timeout=10
        )
        try:
            conn.putrequest("POST", "/search")
            conn.putheader("Transfer-Encoding", "chunked")
            conn.putheader("Content-Type", "application/json")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 411
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_oversized_body_is_413_and_closes(self, async_gateway):
        response, body = self.request_raw(async_gateway, b"x" * 8192)
        assert response.status == 413
        assert response.getheader("Connection") == "close"
        assert "exceeds" in json.loads(body)["error"]

    def test_bad_content_length_is_400(self, async_gateway):
        with socket.create_connection(
            (async_gateway.host, async_gateway.port), timeout=10
        ) as raw:
            raw.sendall(
                b"POST /search HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: banana\r\n\r\n"
            )
            answer = raw.recv(4096)
        assert answer.startswith(b"HTTP/1.1 400")

    def test_deadline_header_is_honored_case_insensitively(self, async_gateway):
        response, body = self.request_raw(
            async_gateway, self.SEARCH, extra=[("x-repro-deadline", "0.0")]
        )
        assert response.status == 504

    def test_unknown_route_is_404(self, async_gateway):
        conn = http.client.HTTPConnection(
            async_gateway.host, async_gateway.port, timeout=10
        )
        try:
            conn.request("GET", "/nope")
            assert conn.getresponse().status == 404
        finally:
            conn.close()


class TestThreadedAndAsyncAgree:
    """One app, both servers, identical answers — the frontends are
    interchangeable by contract."""

    def test_same_broker_same_answers(self):
        collections = fleet_collections()
        broker = local_columnar_broker(collections)
        threaded = ServingServer(GatewayApp(broker))
        threaded.start_background()
        async_server = AsyncServingServer(GatewayApp(broker))
        async_server.start_background()
        try:
            a = GatewayClient(threaded.url)
            b = GatewayClient(async_server.url)
            for query in QUERIES:
                ra, rb = a.search(query, 0.2), b.search(query, 0.2)
                assert ra.hits == rb.hits
                assert ra.estimates == rb.estimates
                assert ra.invoked == rb.invoked
        finally:
            threaded.drain(timeout=10)
            async_server.drain(timeout=10)
