"""Differential suite for the live-fleet delta pipeline.

The contract under test: a broker that catches up with a mutating engine
through :class:`RepresentativeDelta` application answers **exactly**
(``==``, never ``approx``) like a broker handed the engine's fresh
canonical snapshot — on the dict backend, the columnar fleet store, and
the sharded topology, for all five paper estimators.  On top of the
bit-exactness story sit the safety properties: precise invalidation never
serves a stale cache entry while retaining entries for untouched terms,
version mismatches are rejected, and a compacted delta log degrades to a
full-snapshot resync.
"""

import json
import urllib.request

import pytest

from repro.core import get_estimator
from repro.corpus import Document, Query
from repro.fleet import DeltaCompactedError, LiveEngineServer
from repro.metasearch import MetasearchBroker
from repro.serving import (
    LiveEngineApp,
    RemoteEngine,
    RemoteServingError,
    ServingServer,
    ShardApp,
    ShardedFleet,
)

pytestmark = pytest.mark.slow

ESTIMATORS = [
    "basic",
    "binary-independence",
    "gloss-hc",
    "gloss-disjoint",
    "subrange",
]

VOCAB = [
    "rocket", "orbit", "engine", "fuel", "sauce", "basil",
    "kiwi", "plum", "gear", "lens", "prism", "dune",
]

N_ENGINES = 3

QUERIES = [
    Query(terms=("rocket", "orbit"), weights=(2.0, 1.0)),
    Query(terms=("sauce",), weights=(1.0,)),
    Query(terms=("kiwi", "fuel", "basil"), weights=(1.0, 3.0, 0.5)),
    Query(terms=("comet", "plum"), weights=(1.0, 1.0)),  # fresh + old term
    Query(terms=("nosuchterm",), weights=(1.0,)),
]

THRESHOLDS = (0.0, 0.2, 0.5)


def make_documents(e):
    documents = []
    for d in range(8):
        terms = [
            VOCAB[(e + d + k) % len(VOCAB)]
            for k in range((e * 7 + d * 3) % 5 + 2)
        ]
        documents.append(Document(f"e{e}-d{d}", terms=terms))
    return documents


def churn(live):
    """A deterministic mutation script covering removal, unknown-term
    ingestion, and remove-then-re-add of an original document."""
    first = live.doc_ids[0]
    original = make_documents(int(live.name[-1]))[0]
    live.remove_documents(live.doc_ids[1:3])
    live.add_documents(
        [
            Document(f"{live.name}-n0", ["comet", "rocket", "dune"]),
            Document(f"{live.name}-n1", ["comet", "plum"]),
        ]
    )
    live.remove_documents([first])
    live.add_documents([original])


def make_live_fleet():
    fleet = []
    for e in range(N_ENGINES):
        live = LiveEngineServer(f"engine{e}", make_documents(e))
        fleet.append((live, live.snapshot()))
    return fleet


def assert_rows_match(stale_broker_like, fresh_broker):
    for query in QUERIES:
        for threshold in THRESHOLDS:
            assert stale_broker_like.estimate_all(
                query, threshold
            ) == fresh_broker.estimate_all(query, threshold)


def fresh_broker_for(fleet, estimator_name, **kwargs):
    broker = MetasearchBroker(estimator=get_estimator(estimator_name), **kwargs)
    for live, __ in fleet:
        broker.register(live, representative=live.snapshot().representative)
    return broker


class TestDifferentialBackends:
    """Delta catch-up == fresh snapshot, for every estimator and backend."""

    @pytest.fixture(scope="class")
    def churned_fleet(self):
        fleet = make_live_fleet()
        for live, __ in fleet:
            churn(live)
        return fleet

    @pytest.mark.parametrize("estimator_name", ESTIMATORS)
    def test_dict_backend_exact(self, churned_fleet, estimator_name):
        broker = MetasearchBroker(estimator=get_estimator(estimator_name))
        for live, base in churned_fleet:
            broker.register(
                live, representative=base.representative, version=base.version
            )
            report = broker.apply_representative_delta(
                live.delta_since(base.version)
            )
            assert report.to_version == live.version
            assert broker.representative_version(live.name) == live.version
        assert_rows_match(broker, fresh_broker_for(churned_fleet, estimator_name))

    @pytest.mark.parametrize("estimator_name", ESTIMATORS)
    def test_columnar_backend_exact(self, churned_fleet, estimator_name):
        broker = MetasearchBroker(
            estimator=get_estimator(estimator_name), columnar=True
        )
        for live, base in churned_fleet:
            broker.register(
                live, representative=base.representative, version=base.version
            )
            broker.apply_representative_delta(live.delta_since(base.version))
        assert_rows_match(
            broker,
            fresh_broker_for(churned_fleet, estimator_name, columnar=True),
        )

    def test_sync_representative_uses_delta_path(self, churned_fleet):
        broker = MetasearchBroker(estimator=get_estimator("subrange"))
        live, base = churned_fleet[0]
        broker.register(
            live, representative=base.representative, version=base.version
        )
        report = broker.sync_representative(live)
        assert report is not None and report.mode == "precise"
        assert broker.representative_version(live.name) == live.version
        fresh = MetasearchBroker(estimator=get_estimator("subrange"))
        fresh.register(live, representative=live.snapshot().representative)
        assert_rows_match(broker, fresh)


class TestShardedDeltaPropagation:
    @pytest.fixture(scope="class")
    def sharded(self):
        fleet = make_live_fleet()
        servers, urls = [], []
        try:
            for index in range(2):
                shard_broker = MetasearchBroker(columnar=True)
                for live, base in fleet[index::2]:
                    shard_broker.register(
                        live,
                        representative=base.representative,
                        version=base.version,
                    )
                server = ServingServer(ShardApp(shard_broker, shard_index=index))
                server.start_background()
                servers.append(server)
                urls.append(server.url)
            sharded_fleet = ShardedFleet(urls).attach(timeout=30.0)
            try:
                yield fleet, sharded_fleet
            finally:
                sharded_fleet.close()
        finally:
            for server in servers:
                server.drain(timeout=10)

    def test_delta_routes_to_owning_shard_and_stays_exact(self, sharded):
        fleet, sharded_fleet = sharded
        for live, base in fleet:
            churn(live)
            answer = sharded_fleet.apply_delta(live.delta_since(base.version))
            assert answer["engine"] == live.name
            assert answer["to_version"] == live.version
            assert answer["mode"] == "precise"
        local = MetasearchBroker(columnar=True)
        for live, __ in fleet:
            local.register(live, representative=live.snapshot().representative)
        for query in QUERIES:
            for threshold in THRESHOLDS:
                assert sharded_fleet.estimate_all(
                    query, threshold
                ) == local.estimate_all(query, threshold)

    def test_conflicting_delta_is_rejected_with_409(self, sharded):
        fleet, sharded_fleet = sharded
        live, base = fleet[0]
        # The shard already advanced past ``base`` in the previous test;
        # re-shipping the same catch-up delta must 409, not corrupt state.
        stale = live.delta_since(base.version)
        with pytest.raises(RemoteServingError) as excinfo:
            sharded_fleet.apply_delta(stale)
        assert excinfo.value.status == 409

    def test_unowned_engine_is_refused(self, sharded):
        __, sharded_fleet = sharded
        ghost = LiveEngineServer("ghost", [Document("g1", ["rocket"])])
        base = ghost.snapshot()
        ghost.add_documents([Document("g2", ["orbit"])])
        with pytest.raises(KeyError):
            sharded_fleet.apply_delta(ghost.delta_since(base.version))


class TestPreciseInvalidation:
    def make_broker(self, live, base, estimator_name="subrange"):
        broker = MetasearchBroker(estimator=get_estimator(estimator_name))
        broker.register(
            live, representative=base.representative, version=base.version
        )
        return broker

    def test_never_serves_stale_after_single_term_mutation(self):
        live = LiveEngineServer("db", make_documents(0))
        base = live.snapshot()
        broker = self.make_broker(live, base)
        touched = Query(terms=("rocket",), weights=(1.0,))
        untouched = Query(terms=("plum",), weights=(1.0,))
        for query in (touched, untouched):
            broker.estimate_all(query, 0.2)

        # Swap one document for another of the same size so n is constant:
        # the composed delta touches only the documents' own terms and the
        # broker may keep every other term's cache rows.
        doomed = live.doc_ids[0]
        live.remove_documents([doomed])
        live.add_documents([Document("db-swap", ["rocket", "rocket"])])
        delta = live.delta_since(base.version)
        assert delta.from_n_documents == delta.n_documents
        assert "plum" not in delta.terms

        report = broker.apply_representative_delta(delta)
        assert report.mode == "precise"
        assert report.cache_retained >= 1

        fresh = MetasearchBroker(estimator=get_estimator("subrange"))
        fresh.register(live, representative=live.snapshot().representative)
        assert broker.estimate_all(touched, 0.2) == fresh.estimate_all(
            touched, 0.2
        )

        hits_before = broker.cache.hits
        assert broker.estimate_all(untouched, 0.2) == fresh.estimate_all(
            untouched, 0.2
        )
        assert broker.cache.hits > hits_before

    def test_document_count_change_widens_eviction(self):
        live = LiveEngineServer("db", make_documents(0))
        base = live.snapshot()
        broker = self.make_broker(live, base)
        untouched = Query(terms=("plum",), weights=(1.0,))
        broker.estimate_all(untouched, 0.2)
        live.add_documents([Document("db-new", ["rocket"])])
        report = broker.apply_representative_delta(live.delta_since(base.version))
        # n changed: every present term's probability rescaled, so the
        # untouched-term entry must go too.
        assert report.mode == "precise"
        fresh = MetasearchBroker(estimator=get_estimator("subrange"))
        fresh.register(live, representative=live.snapshot().representative)
        assert broker.estimate_all(untouched, 0.2) == fresh.estimate_all(
            untouched, 0.2
        )

    def test_non_term_local_estimator_falls_back_to_full_eviction(self):
        live = LiveEngineServer("db", make_documents(0))
        base = live.snapshot()
        broker = self.make_broker(live, base, "binary-independence")
        query = Query(terms=("plum",), weights=(1.0,))
        broker.estimate_all(query, 0.2)
        doomed = live.doc_ids[0]
        live.remove_documents([doomed])
        live.add_documents([Document("db-swap", ["rocket", "rocket"])])
        report = broker.apply_representative_delta(live.delta_since(base.version))
        # The binary baseline folds every term's mean into one database
        # weight, so a single-term mutation still invalidates everything.
        assert report.mode == "full"
        fresh = MetasearchBroker(estimator=get_estimator("binary-independence"))
        fresh.register(live, representative=live.snapshot().representative)
        assert broker.estimate_all(query, 0.2) == fresh.estimate_all(query, 0.2)

    def test_version_mismatch_is_rejected(self):
        live = LiveEngineServer("db", make_documents(0))
        base = live.snapshot()
        broker = self.make_broker(live, base)
        live.add_documents([Document("db-new", ["rocket"])])
        delta = live.delta_since(base.version)
        broker.apply_representative_delta(delta)
        with pytest.raises(ValueError):
            broker.apply_representative_delta(delta)


class TestCompactionFallback:
    def test_compacted_log_degrades_to_snapshot_resync(self):
        live = LiveEngineServer("db", make_documents(0), log_limit=1)
        base = live.snapshot()
        live.add_documents([Document("db-n0", ["comet"])])
        live.add_documents([Document("db-n1", ["comet", "plum"])])
        with pytest.raises(DeltaCompactedError):
            live.delta_since(base.version)
        fallback = live.sync_representative(base.version)
        assert not hasattr(fallback, "records")
        assert fallback.version == live.version

        broker = MetasearchBroker(estimator=get_estimator("subrange"))
        broker.register(
            live, representative=base.representative, version=base.version
        )
        report = broker.sync_representative(live)
        assert report is None  # snapshot path, not a delta apply
        assert broker.representative_version(live.name) == live.version
        fresh = MetasearchBroker(estimator=get_estimator("subrange"))
        fresh.register(live, representative=live.snapshot().representative)
        assert_rows_match(broker, fresh)


class TestHTTPDeltaLoop:
    """LiveEngineApp + RemoteEngine + broker.sync_representative, end to end."""

    @pytest.fixture()
    def served(self):
        live = LiveEngineServer("engine0", make_documents(0))
        server = ServingServer(LiveEngineApp(live))
        server.start_background()
        try:
            yield live, server.url
        finally:
            server.drain(timeout=10)

    @staticmethod
    def post_mutate(url, payload):
        request = urllib.request.Request(
            f"{url}/mutate",
            data=json.dumps(payload).encode("ascii"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return json.loads(response.read())

    def test_broker_catches_up_over_http(self, served):
        live, url = served
        remote = RemoteEngine(url)
        broker = MetasearchBroker(estimator=get_estimator("subrange"))
        # An unregistered engine's first sync registers its snapshot.
        assert broker.sync_representative(remote) is None
        assert broker.representative_version(remote.name) == 0

        answer = self.post_mutate(
            url,
            {
                "remove": [live.doc_ids[0]],
                "add": [
                    {"doc_id": "engine0-n0", "terms": ["comet", "rocket"]},
                    {"doc_id": "engine0-n1", "terms": ["comet", "plum"]},
                ],
            },
        )
        assert answer["kind"] == "engine.mutated"
        assert answer["version"] == 2

        report = broker.sync_representative(remote)
        assert report is not None
        assert report.from_version == 0 and report.to_version == 2
        fresh = MetasearchBroker(estimator=get_estimator("subrange"))
        fresh.register(remote, representative=live.snapshot().representative)
        assert_rows_match(broker, fresh)

    def test_compaction_over_http_falls_back_to_snapshot(self):
        live = LiveEngineServer("engine0", make_documents(0), log_limit=1)
        server = ServingServer(LiveEngineApp(live))
        server.start_background()
        try:
            remote = RemoteEngine(server.url)
            broker = MetasearchBroker(estimator=get_estimator("subrange"))
            assert broker.sync_representative(remote) is None
            self.post_mutate(server.url, {"add": [{"doc_id": "n0", "terms": ["comet"]}]})
            self.post_mutate(server.url, {"add": [{"doc_id": "n1", "terms": ["comet"]}]})
            # The log kept only the latest mutation; the sync must come
            # back as a snapshot re-registration, not a delta.
            assert broker.sync_representative(remote) is None
            assert broker.representative_version(remote.name) == live.version
            fresh = MetasearchBroker(estimator=get_estimator("subrange"))
            fresh.register(remote, representative=live.snapshot().representative)
            assert_rows_match(broker, fresh)
        finally:
            server.drain(timeout=10)
