"""Integration tests for the golden-query evaluation harness.

Three guarantees the ``repro eval`` pipeline rests on:

* the committed golden sets regenerate byte-identically from their seed,
* every backend configuration (dict, columnar, sharded) produces an
  *identical* report over them, and
* the committed floors file passes against the current code — the same
  gate CI applies, so a floor regression fails here first.
"""

import contextlib
import json
from pathlib import Path

import pytest

from repro.core import get_estimator
from repro.engine import SearchEngine
from repro.evaluation.harness import (
    STRATUM_NAMES,
    build_eval_fleet,
    canonical_json_bytes,
    check_floors,
    golden_manifest,
    load_floors,
    load_golden_strata,
    manifest_payload,
    run_evaluation,
    stratum_payload,
)
from repro.metasearch import MetasearchBroker
from repro.representatives import build_representative, partition_round_robin
from repro.serving import ServingServer, ShardApp, ShardedFleet

GOLDEN_DIR = Path(__file__).parent / "golden" / "queries"
FLOORS_PATH = Path(__file__).parent / "golden" / "floors.json"

ESTIMATORS = [
    "basic",
    "binary-independence",
    "gloss-hc",
    "gloss-disjoint",
    "subrange",
]


@pytest.fixture(scope="module")
def golden():
    return load_golden_strata(GOLDEN_DIR)


@pytest.fixture(scope="module")
def eval_fleet():
    manifest = golden_manifest(GOLDEN_DIR)
    collections = build_eval_fleet(
        int(manifest["seed"]), int(manifest["n_engines"])
    )
    engines = [SearchEngine(c) for c in collections]
    representatives = {e.name: build_representative(e) for e in engines}
    return engines, representatives


def _broker_backends(engines, representatives, columnar):
    backends = {}
    for name in ESTIMATORS:
        broker = MetasearchBroker(
            estimator=get_estimator(name), columnar=columnar
        )
        for engine in engines:
            broker.register(engine, representative=representatives[engine.name])
        backends[name] = broker
    return backends


class TestGoldenRegeneration:
    def test_committed_sets_regenerate_byte_identically(self, tmp_path):
        # Satellite guarantee: one --seed reproduces the committed JSON.
        from repro.evaluation.harness import write_golden_strata

        manifest = golden_manifest(GOLDEN_DIR)
        written = write_golden_strata(
            tmp_path,
            seed=int(manifest["seed"]),
            n_engines=int(manifest["n_engines"]),
        )
        for name, path in written.items():
            committed = (GOLDEN_DIR / Path(path).name).read_bytes()
            assert Path(path).read_bytes() == committed, (
                f"{name}: regenerated golden set diverges from committed"
            )

    def test_manifest_covers_all_strata(self):
        manifest = golden_manifest(GOLDEN_DIR)
        assert sorted(manifest["strata"]) == sorted(STRATUM_NAMES)
        assert len(STRATUM_NAMES) >= 4

    def test_committed_files_are_canonical(self, golden):
        # Committed bytes == canonical serialization of their own payload
        # (catches hand edits that would break byte-reproducibility).
        for name, stratum in golden.items():
            committed = (GOLDEN_DIR / f"{name}.json").read_bytes()
            assert committed == canonical_json_bytes(stratum_payload(stratum))

    def test_strata_are_nonempty(self, golden):
        for stratum in golden.values():
            assert stratum.n_queries > 0
            assert stratum.diagnostic_threshold > stratum.threshold


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def columnar_result(self, golden, eval_fleet):
        engines, representatives = eval_fleet
        backends = _broker_backends(engines, representatives, columnar=True)
        return run_evaluation(
            backends, engines, golden, config="columnar",
        )

    def test_dict_matches_columnar(self, golden, eval_fleet, columnar_result):
        engines, representatives = eval_fleet
        backends = _broker_backends(engines, representatives, columnar=False)
        dict_result = run_evaluation(backends, engines, golden, config="dict")
        assert dict_result.comparable() == columnar_result.comparable()
        assert dict_result.detail == columnar_result.detail

    def test_sharded_matches_columnar(self, golden, eval_fleet, columnar_result):
        # The differential gate: a real scatter-gather topology (shard
        # brokers behind in-process HTTP servers, ShardedFleet in front)
        # must reproduce the columnar report exactly — same per-query
        # rankings, same selected sets, same aggregate scores.
        engines, representatives = eval_fleet
        with contextlib.ExitStack() as stack:
            backends = {}
            for name in ESTIMATORS:
                urls = []
                for index, engine_slice in enumerate(
                    s for s in partition_round_robin(engines, 2) if s
                ):
                    broker = MetasearchBroker(
                        estimator=get_estimator(name), columnar=True
                    )
                    for engine in engine_slice:
                        broker.register(
                            engine, representative=representatives[engine.name]
                        )
                    server = ServingServer(ShardApp(broker, shard_index=index))
                    server.start_background()
                    stack.callback(server.drain, 10.0)
                    urls.append(server.url)
                fleet = ShardedFleet(urls).attach(timeout=30.0)
                stack.callback(fleet.close)
                backends[name] = fleet
            sharded_result = run_evaluation(
                backends, engines, golden, config="sharded"
            )
        assert sharded_result.comparable() == columnar_result.comparable()
        assert sharded_result.detail == columnar_result.detail

    def test_report_covers_all_estimators_and_strata(self, columnar_result):
        payload = columnar_result.payload
        assert payload["estimators"] == sorted(ESTIMATORS)
        assert sorted(payload["strata"]) == sorted(STRATUM_NAMES)
        for stratum in payload["strata"].values():
            assert sorted(stratum["estimators"]) == sorted(ESTIMATORS)

    def test_committed_floors_pass(self, columnar_result):
        floors = load_floors(FLOORS_PATH)
        violations = check_floors(columnar_result.payload, floors)
        assert violations == [], "\n".join(violations)

    def test_monotonicity_never_fires(self, columnar_result):
        # Threshold monotonicity is structural: any violation anywhere is
        # a bug, not a tuning matter — pin it to zero across the board.
        for stratum in columnar_result.payload["strata"].values():
            for name, scores in stratum["estimators"].items():
                assert scores["tripwires"]["monotonicity_violations"] == 0, name


class TestEvalCli:
    def test_eval_command_end_to_end(self, tmp_path):
        from repro.cli import main

        code = main([
            "eval",
            "--config", "dict",
            "--golden-dir", str(GOLDEN_DIR),
            "--out-dir", str(tmp_path),
            "--check-floors", str(FLOORS_PATH),
        ])
        assert code == 0
        payload = json.loads((tmp_path / "eval_dict.json").read_text())
        assert payload["kind"] == "eval_report"
        assert payload["generated_at"]
        md = (tmp_path / "eval_dict.md").read_text()
        assert "Engine-selection evaluation" in md
