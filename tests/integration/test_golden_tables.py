"""Golden regression tests for the paper-table outputs.

The benchmark suite regenerates Tables 1-12 at full scale
(``benchmarks/results/*.txt``); that is far too slow for tier-1.  These
tests run the identical experiment pipeline — same estimators, same
renderers — on the small session-scoped corpus and compare the rendered
tables character-for-character against checked-in golden files.  Any
estimator change that silently shifts the paper-table numbers fails here
first.

To regenerate after an *intentional* estimator change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/integration/test_golden_tables.py
"""

import os
from pathlib import Path

import pytest

from repro.core import (
    SubrangeEstimator,
    fallback_count,
    get_estimator,
    reset_fallback_count,
)
from repro.engine import SearchEngine
from repro.evaluation import (
    MethodSpec,
    evaluate_selection,
    format_combined_table,
    format_error_table,
    format_match_table,
    run_usefulness_experiment,
)
from repro.metasearch import MetasearchBroker
from repro.representatives import quantize_representative

GOLDEN_DIR = Path(__file__).parent / "golden"
THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)


def check_golden(name: str, rendered: str) -> None:
    path = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered + "\n", encoding="utf-8")
    assert path.exists(), (
        f"golden file {path} missing; run with REPRO_REGEN_GOLDEN=1 to create it"
    )
    assert rendered + "\n" == path.read_text(encoding="utf-8"), (
        f"{name} drifted from its golden snapshot; if the change is "
        f"intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )


@pytest.fixture(scope="module")
def experiment(small_engine, small_representative, small_queries):
    """One sweep mirroring the conditions of Tables 1-12 at small scale."""
    methods = [
        MethodSpec("gloss-hc", get_estimator("gloss-hc"), small_representative),
        MethodSpec("prev", get_estimator("prev"), small_representative),
        MethodSpec("subrange", get_estimator("subrange"), small_representative),
        MethodSpec(
            "subrange-1byte",
            get_estimator("subrange"),
            quantize_representative(small_representative),
            label="Sub 1-byte",
        ),
        MethodSpec(
            "subrange-triplet",
            SubrangeEstimator(use_stored_max=False),
            small_representative,
            label="Sub triplet",
        ),
    ]
    return run_usefulness_experiment(
        small_engine, small_queries, methods, thresholds=THRESHOLDS
    )


class TestEstimatorTables:
    def test_match_table(self, experiment):
        """Counterpart of Tables 1/3/5: match/mismatch per method."""
        rendered = format_match_table(
            experiment, methods=["gloss-hc", "prev", "subrange"]
        )
        check_golden("match_table", rendered)

    def test_error_table(self, experiment):
        """Counterpart of Tables 2/4/6: d-N / d-S per method."""
        rendered = format_error_table(
            experiment, methods=["gloss-hc", "prev", "subrange"]
        )
        check_golden("error_table", rendered)

    def test_quantized_table(self, experiment):
        """Counterpart of Tables 7-9: subrange on the 1-byte representative."""
        check_golden(
            "quantized_table", format_combined_table(experiment, "subrange-1byte")
        )

    def test_triplet_table(self, experiment):
        """Counterpart of Tables 10-12: subrange without stored max weight."""
        check_golden(
            "triplet_table", format_combined_table(experiment, "subrange-triplet")
        )


class _BatchPipelineEstimator:
    """Adapter running every ``estimate_many`` through a single-engine
    broker's batched estimation path (one query duplicated across the
    threshold grid), so the paper-table experiment exercises the batch
    pipeline end to end."""

    def __init__(self, broker: MetasearchBroker):
        self.broker = broker
        self.name = broker.estimator.name
        self.label = broker.estimator.label

    def estimate_many(self, query, representative, thresholds):
        thresholds = list(thresholds)
        rows = self.broker.estimate_batch([query] * len(thresholds), thresholds)
        return [row[0].usefulness for row in rows]


class TestBatchPipelineTables:
    """Tables 1-12 computed through ``estimate_batch`` (adaptive budget
    disabled, both caches on) and pinned to the *same* golden files as the
    serial experiment — the batch pipeline must be drop-in identical."""

    @pytest.fixture(scope="class")
    def batch_experiment(self, small_engine, small_representative, small_queries):
        specs = [
            ("gloss-hc", get_estimator("gloss-hc"), small_representative, ""),
            ("prev", get_estimator("prev"), small_representative, ""),
            ("subrange", get_estimator("subrange"), small_representative, ""),
            (
                "subrange-1byte",
                get_estimator("subrange"),
                quantize_representative(small_representative),
                "Sub 1-byte",
            ),
            (
                "subrange-triplet",
                SubrangeEstimator(use_stored_max=False),
                small_representative,
                "Sub triplet",
            ),
        ]
        methods = []
        for key, estimator, representative, label in specs:
            broker = MetasearchBroker(estimator=estimator)
            broker.register(small_engine, representative=representative)
            methods.append(
                MethodSpec(
                    key,
                    _BatchPipelineEstimator(broker),
                    representative,
                    label=label,
                )
            )
        return run_usefulness_experiment(
            small_engine, small_queries, methods, thresholds=THRESHOLDS
        )

    def test_match_table_via_batch(self, batch_experiment):
        rendered = format_match_table(
            batch_experiment, methods=["gloss-hc", "prev", "subrange"]
        )
        check_golden("match_table", rendered)

    def test_error_table_via_batch(self, batch_experiment):
        rendered = format_error_table(
            batch_experiment, methods=["gloss-hc", "prev", "subrange"]
        )
        check_golden("error_table", rendered)

    def test_quantized_table_via_batch(self, batch_experiment):
        check_golden(
            "quantized_table",
            format_combined_table(batch_experiment, "subrange-1byte"),
        )

    def test_triplet_table_via_batch(self, batch_experiment):
        check_golden(
            "triplet_table",
            format_combined_table(batch_experiment, "subrange-triplet"),
        )


class TestColumnarGridTables:
    """Tables 1-12 computed through a ``columnar=True`` broker — the
    vectorized subrange grid with the batched ``BatchedGenFunc`` product
    — and pinned to the *same* golden files as the serial experiment.
    The paper-table numbers must survive the vectorized path bit-for-bit,
    with zero scalar-fallback demotions along the way."""

    @pytest.fixture(scope="class")
    def columnar_experiment(
        self, small_engine, small_representative, small_queries
    ):
        specs = [
            ("gloss-hc", get_estimator("gloss-hc"), small_representative, ""),
            ("prev", get_estimator("prev"), small_representative, ""),
            ("subrange", get_estimator("subrange"), small_representative, ""),
            (
                "subrange-1byte",
                get_estimator("subrange"),
                quantize_representative(small_representative),
                "Sub 1-byte",
            ),
            (
                "subrange-triplet",
                SubrangeEstimator(use_stored_max=False),
                small_representative,
                "Sub triplet",
            ),
        ]
        methods = []
        for key, estimator, representative, label in specs:
            broker = MetasearchBroker(estimator=estimator, columnar=True)
            broker.register(small_engine, representative=representative)
            methods.append(
                MethodSpec(
                    key,
                    _BatchPipelineEstimator(broker),
                    representative,
                    label=label,
                )
            )
        reset_fallback_count()
        experiment = run_usefulness_experiment(
            small_engine, small_queries, methods, thresholds=THRESHOLDS
        )
        assert fallback_count() == 0, (
            "the golden-table sweep demoted rows to the scalar path; "
            "every configuration must run through the batched kernel"
        )
        return experiment

    def test_match_table_via_columnar_grid(self, columnar_experiment):
        rendered = format_match_table(
            columnar_experiment, methods=["gloss-hc", "prev", "subrange"]
        )
        check_golden("match_table", rendered)

    def test_error_table_via_columnar_grid(self, columnar_experiment):
        rendered = format_error_table(
            columnar_experiment, methods=["gloss-hc", "prev", "subrange"]
        )
        check_golden("error_table", rendered)

    def test_quantized_table_via_columnar_grid(self, columnar_experiment):
        check_golden(
            "quantized_table",
            format_combined_table(columnar_experiment, "subrange-1byte"),
        )

    def test_triplet_table_via_columnar_grid(self, columnar_experiment):
        check_golden(
            "triplet_table",
            format_combined_table(columnar_experiment, "subrange-triplet"),
        )


class TestFleetSelectionTable:
    """Counterpart of the full-fleet bench table at tier-1 scale."""

    @pytest.fixture(scope="class")
    def fleet_broker(self, small_model):
        broker = MetasearchBroker()
        for group in range(6):
            broker.register(SearchEngine(small_model.generate_group(group)))
        return broker

    def test_selection_quality_table(self, fleet_broker, small_queries):
        queries = small_queries[:60]
        lines = [
            f"fleet selection: {len(fleet_broker)} engines, {len(queries)} queries",
            f"{'T':>4} {'exact':>7} {'recall':>8} {'precision':>10}",
        ]
        for threshold in (0.2, 0.3, 0.4):
            quality = evaluate_selection(fleet_broker, queries, threshold)
            lines.append(
                f"{threshold:>4.1f} {quality.exact_rate:>7.1%} "
                f"{quality.recall:>8.1%} {quality.precision:>10.1%}"
            )
        check_golden("fleet_selection", "\n".join(lines))
