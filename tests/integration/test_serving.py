"""Integration tests for the serving layer.

The headline contract: a fleet of engine-server *processes* behind the
HTTP gateway answers every query **exactly** (``==``) like an in-process
broker over the same collections — same merged hits, same estimates, same
invoked engines.  Plus the operational behaviors: load shedding under
burst (503 + ``Retry-After``, never a hang), graceful drain (in-flight
requests finish, new ones are refused, final metrics are flushed), and
server-side deadline enforcement (504).
"""

import json
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.corpus import Collection, Document, Query, save_collection
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker
from repro.obs import MetricsRegistry
from repro.serving import (
    EngineApp,
    GatewayApp,
    GatewayClient,
    RemoteEngine,
    RemoteServingError,
    ServingServer,
)

pytestmark = pytest.mark.slow

N_ENGINES = 4

VOCAB = ["rocket", "orbit", "engine", "fuel", "sauce", "basil", "kiwi", "plum"]


def fleet_collections():
    """Four small overlapping collections with deterministic contents."""
    collections = []
    for e in range(N_ENGINES):
        documents = []
        for d in range(6):
            terms = [
                VOCAB[(e + d + k) % len(VOCAB)]
                for k in range((e * 7 + d * 3) % 5 + 2)
            ]
            documents.append(Document(f"e{e}-d{d}", terms=terms))
        collections.append(Collection.from_documents(f"engine{e}", documents))
    return collections


QUERIES = [
    Query(terms=("rocket", "orbit"), weights=(2.0, 1.0)),
    Query(terms=("sauce",), weights=(1.0,)),
    Query(terms=("kiwi", "fuel", "basil"), weights=(1.0, 3.0, 0.5)),
    Query(terms=("nosuchterm",), weights=(1.0,)),
]


def post_json(url, payload, headers=None, timeout=10.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


class TestSubprocessFleet:
    """The acceptance contract, over real processes."""

    @pytest.fixture(scope="class")
    def fleet(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serving-fleet")
        collections = fleet_collections()
        processes, urls = [], []
        try:
            for collection in collections:
                path = tmp / f"{collection.name}.jsonl.gz"
                save_collection(collection, path)
                proc = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.cli",
                        "serve",
                        "engine",
                        "--collection",
                        str(path),
                    ],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                )
                processes.append(proc)
            for proc in processes:
                url = None
                deadline = time.time() + 30
                while time.time() < deadline:
                    line = proc.stdout.readline()
                    if not line:
                        break
                    match = re.search(r"serving engine at (http://\S+)", line)
                    if match:
                        url = match.group(1)
                        break
                assert url, "engine server did not announce its URL"
                urls.append(url)
            yield collections, urls
        finally:
            for proc in processes:
                proc.send_signal(signal.SIGTERM)
            for proc in processes:
                try:
                    proc.communicate(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.communicate()

    @pytest.fixture(scope="class")
    def gateway(self, fleet):
        __, urls = fleet
        broker = MetasearchBroker(workers=N_ENGINES)
        for url in urls:
            remote = RemoteEngine(url)
            snapshot = remote.snapshot_representative()
            broker.register(remote, representative=snapshot.representative)
        server = ServingServer(GatewayApp(broker, max_active=8, max_queued=16))
        server.start_background()
        yield GatewayClient(server.url)
        server.drain(timeout=10)

    @pytest.fixture(scope="class")
    def local_broker(self, fleet):
        collections, __ = fleet
        broker = MetasearchBroker()
        for collection in collections:
            broker.register(SearchEngine(collection))
        return broker

    def test_fleet_is_at_least_four_processes(self, fleet):
        __, urls = fleet
        assert len(urls) >= 4
        assert len(set(urls)) == len(urls)

    def test_search_matches_in_process_broker_exactly(
        self, gateway, local_broker
    ):
        for query in QUERIES:
            for threshold in (0.0, 0.2, 0.5):
                remote = gateway.search(query, threshold)
                local = local_broker.search(query, threshold)
                assert remote.hits == local.hits
                assert remote.estimates == local.estimates
                assert remote.invoked == local.invoked
                assert remote.failures == local.failures

    def test_estimates_match_in_process_broker_exactly(
        self, gateway, local_broker
    ):
        for query in QUERIES:
            assert gateway.estimate(query, 0.2) == local_broker.estimate_all(
                query, 0.2
            )

    def test_batch_matches_in_process_broker_exactly(
        self, gateway, local_broker
    ):
        remote = gateway.search_batch(QUERIES, 0.2, limit=5)
        local = local_broker.search_batch(QUERIES, 0.2, limit=5)
        assert [r.hits for r in remote] == [r.hits for r in local]
        assert [r.estimates for r in remote] == [r.estimates for r in local]
        assert [r.invoked for r in remote] == [r.invoked for r in local]

    def test_limit_respected_over_the_wire(self, gateway, local_broker):
        query = QUERIES[0]
        remote = gateway.search(query, 0.0, limit=3)
        local = local_broker.search(query, 0.0, limit=3)
        assert len(remote.hits) <= 3
        assert remote.hits == local.hits

    def test_quantized_representative_matches_local_quantization(self, fleet):
        from repro.representatives import build_representative
        from repro.representatives.quantized import quantize_representative

        collections, urls = fleet
        remote = RemoteEngine(urls[0])
        snapshot = remote.snapshot_representative(quantize=256)
        local = quantize_representative(
            build_representative(SearchEngine(collections[0])), levels=256
        )
        assert snapshot.representative == local

    def test_healthz_and_metrics(self, gateway):
        health = gateway.healthz()
        assert health["status"] == "ok"
        assert health["role"] == "gateway"
        assert len(health["engines"]) == N_ENGINES
        metrics = gateway.metrics_text()
        assert "repro_serving_requests_total" in metrics
        assert "repro_serving_admission_admitted_total" in metrics


class SlowLocalEngine:
    """A local engine whose search sleeps — drives shed/drain tests."""

    def __init__(self, inner, delay):
        self.inner = inner
        self.delay = delay

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    def search(self, query, threshold=0.0):
        time.sleep(self.delay)
        return self.inner.search(query, threshold)


def slow_gateway(delay, **gateway_kwargs):
    from repro.representatives import build_representative

    collection = Collection.from_documents(
        "slowdb", [Document("d1", terms=["rocket", "orbit"])]
    )
    engine = SearchEngine(collection)
    broker = MetasearchBroker()
    broker.register(
        SlowLocalEngine(engine, delay),
        representative=build_representative(engine),
    )
    registry = MetricsRegistry()
    app = GatewayApp(broker, registry=registry, **gateway_kwargs)
    server = ServingServer(app)
    server.start_background()
    return server, registry


SEARCH_BODY = {
    "query": {"kind": "query", "terms": ["rocket"], "weights": [1.0]},
    "threshold": 0.1,
}


class TestLoadShedding:
    def test_burst_sheds_with_retry_after_and_never_hangs(self):
        server, registry = slow_gateway(0.3, max_active=1, max_queued=0)
        statuses, retry_afters = [], []
        lock = threading.Lock()

        def fire():
            try:
                status, __ = post_json(
                    server.url + "/search", SEARCH_BODY, timeout=15
                )
                with lock:
                    statuses.append(status)
            except urllib.error.HTTPError as err:
                with lock:
                    statuses.append(err.code)
                    retry_afters.append(err.headers.get("Retry-After"))

        threads = [threading.Thread(target=fire) for __ in range(6)]
        started = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert all(not t.is_alive() for t in threads), "a request hung"
        assert time.monotonic() - started < 20
        assert statuses.count(200) >= 1
        assert statuses.count(503) >= 1
        assert all(ra is not None for ra in retry_afters)
        assert registry.value("serving.admission.shed") >= 1
        # The gateway survived the burst and still answers.
        status, __ = post_json(server.url + "/search", SEARCH_BODY)
        assert status == 200
        server.drain(timeout=10)

    def test_queued_requests_wait_then_run(self):
        server, registry = slow_gateway(0.15, max_active=1, max_queued=4)
        statuses = []
        lock = threading.Lock()

        def fire():
            status, __ = post_json(
                server.url + "/search", SEARCH_BODY, timeout=30
            )
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=fire) for __ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert statuses == [200, 200, 200]
        assert registry.value("serving.admission.shed") in (None, 0)
        server.drain(timeout=10)


class TestGracefulDrain:
    def test_inflight_completes_new_work_refused_metrics_flushed(self):
        server, __ = slow_gateway(0.5, max_active=2, max_queued=2)
        results = {}

        def long_request():
            try:
                status, payload = post_json(
                    server.url + "/search", SEARCH_BODY, timeout=30
                )
                results["status"] = status
                results["payload"] = payload
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                results["error"] = exc

        thread = threading.Thread(target=long_request)
        thread.start()
        time.sleep(0.15)  # let the request get in flight
        drainer = threading.Thread(target=lambda: server.drain(timeout=30))
        drainer.start()
        time.sleep(0.05)
        # New work is refused while draining...
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(server.url + "/search", SEARCH_BODY, timeout=10)
        assert excinfo.value.code == 503
        thread.join(timeout=30)
        drainer.join(timeout=30)
        # ...but the in-flight request completed normally,
        assert results.get("status") == 200
        assert results["payload"]["hits"]
        # and the final metrics flush captured the request counter.
        assert server.final_metrics is not None
        assert "repro_serving_requests_total" in server.final_metrics

    def test_drain_is_idempotent(self):
        server, __ = slow_gateway(0.0)
        assert server.drain(timeout=5)
        assert server.drain(timeout=5)  # second call returns, no deadlock


class TestDeadlines:
    def test_exhausted_deadline_rejected_with_504(self):
        server, __ = slow_gateway(0.0)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(
                server.url + "/search",
                SEARCH_BODY,
                headers={"X-Repro-Deadline": "0.0"},
            )
        assert excinfo.value.code == 504
        server.drain(timeout=5)

    def test_deadline_exceeded_mid_request_reported(self):
        server, __ = slow_gateway(0.3, max_active=2, max_queued=2)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(
                server.url + "/search",
                SEARCH_BODY,
                headers={"X-Repro-Deadline": "0.05"},
                timeout=15,
            )
        assert excinfo.value.code == 504
        server.drain(timeout=10)

    def test_bad_deadline_header_is_400(self):
        server, __ = slow_gateway(0.0)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(
                server.url + "/search",
                SEARCH_BODY,
                headers={"X-Repro-Deadline": "soon"},
            )
        assert excinfo.value.code == 400
        server.drain(timeout=5)

    def test_client_budget_propagates_to_engine_failure(self):
        """A gateway under deadline pressure maps engine slowness onto the
        broker's standard degradation path rather than an error page."""
        collection = Collection.from_documents(
            "slow", [Document("d1", terms=["rocket"])]
        )
        engine = SearchEngine(collection)
        engine_server = ServingServer(EngineApp(engine))
        engine_server.start_background()
        remote = RemoteEngine(engine_server.url, timeout=1e-6)
        with pytest.raises(RemoteServingError):
            remote.search(Query.from_terms(["rocket"]), 0.1)
        engine_server.drain(timeout=5)


class TestRemoteEngineErrors:
    def test_unreachable_server_raises_connection_error(self):
        remote = RemoteEngine("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(RemoteServingError):
            remote.search(Query.from_terms(["x"]), 0.1)

    def test_dispatcher_degrades_on_dead_remote(self):
        """A dead remote engine becomes an EngineFailure, not a crash."""
        collection = Collection.from_documents(
            "live", [Document("d1", terms=["rocket"])]
        )
        engine = SearchEngine(collection)
        from repro.representatives import build_representative

        broker = MetasearchBroker(workers=2)
        broker.register(engine)
        dead = RemoteEngine("http://127.0.0.1:9", timeout=0.3, name="dead")
        broker.register(
            dead, representative=build_representative(engine)
        )
        response = broker.search(Query.from_terms(["rocket"]), 0.1)
        assert [f.engine for f in response.failures] == ["dead"]
        assert response.failures[0].kind == "error"
        assert any(h.engine == "live" for h in response.hits)


class TestColumnarSnapshot:
    """``GET /representative?format=npz`` ships the columnar binary form."""

    @pytest.fixture
    def engine_server(self):
        collection = Collection.from_documents(
            "colnpz",
            [
                Document("d1", terms=["rocket", "orbit", "rocket", "fuel"]),
                Document("d2", terms=["sauce", "basil", "orbit"]),
                Document("d3", terms=["kiwi", "plum", "rocket"]),
            ],
        )
        engine = SearchEngine(collection)
        server = ServingServer(EngineApp(engine))
        server.start_background()
        yield engine, server
        server.drain(timeout=5)

    def test_columnar_snapshot_is_bit_exact(self, engine_server):
        from repro.representatives import build_representative

        engine, server = engine_server
        remote = RemoteEngine(server.url)
        snapshot = remote.snapshot_representative(columnar=True)
        local = build_representative(engine)
        assert snapshot.version == engine.n_documents
        assert snapshot.representative.name == local.name
        assert snapshot.representative.n_documents == local.n_documents
        assert dict(snapshot.representative.items()) == dict(local.items())

    def test_columnar_snapshot_registers_into_columnar_broker(self, engine_server):
        engine, server = engine_server
        remote = RemoteEngine(server.url)
        snapshot = remote.snapshot_representative(columnar=True)
        broker = MetasearchBroker(columnar=True)
        broker.register(remote, representative=snapshot.representative)
        local = MetasearchBroker()
        local.register(engine)
        query = Query.from_terms(["rocket", "orbit"])
        assert [
            (e.engine, e.usefulness) for e in broker.estimate_all(query, 0.1)
        ] == [
            (e.engine, e.usefulness) for e in local.estimate_all(query, 0.1)
        ]

    def test_columnar_excludes_quantize(self, engine_server):
        __, server = engine_server
        remote = RemoteEngine(server.url)
        with pytest.raises(ValueError):
            remote.snapshot_representative(quantize=256, columnar=True)

    @pytest.mark.parametrize(
        "suffix", ["?format=bogus", "?format=npz&quantize=256"]
    )
    def test_bad_format_requests_are_400(self, engine_server, suffix):
        __, server = engine_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{server.url}/representative{suffix}", timeout=5
            )
        assert excinfo.value.code == 400
