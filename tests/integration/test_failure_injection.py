"""Failure injection: corrupted inputs and degenerate statistics.

A representative travels between processes as JSON and is consumed long
after the engine built it; the estimators must reject corrupt data loudly
and handle legal-but-degenerate statistics gracefully.
"""

import json

import pytest

from repro.core import (
    BasicEstimator,
    GlossHighCorrelationEstimator,
    PreviousMethodEstimator,
    SubrangeEstimator,
)
from repro.corpus import Query
from repro.representatives import DatabaseRepresentative, TermStats

ALL = [
    BasicEstimator(),
    SubrangeEstimator(),
    PreviousMethodEstimator(),
    GlossHighCorrelationEstimator(),
]


class TestCorruptRepresentativeFiles:
    def test_not_json(self, tmp_path):
        path = tmp_path / "rep.json"
        path.write_text("this is not json {")
        with pytest.raises(json.JSONDecodeError):
            DatabaseRepresentative.load(path)

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "rep.json"
        path.write_text(json.dumps({"kind": "collection"}))
        with pytest.raises(ValueError, match="not a representative"):
            DatabaseRepresentative.load(path)

    def test_out_of_range_probability(self, tmp_path):
        payload = {
            "kind": "representative",
            "name": "x",
            "n_documents": 10,
            "terms": {"t": [1.5, 0.2, 0.1, 0.4]},  # p > 1
        }
        path = tmp_path / "rep.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="probability"):
            DatabaseRepresentative.load(path)

    def test_negative_std(self, tmp_path):
        payload = {
            "kind": "representative",
            "name": "x",
            "n_documents": 10,
            "terms": {"t": [0.5, 0.2, -0.1, 0.4]},
        }
        path = tmp_path / "rep.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="std"):
            DatabaseRepresentative.load(path)

    def test_missing_fields(self, tmp_path):
        payload = {
            "kind": "representative",
            "name": "x",
            "n_documents": 10,
            "terms": {"t": [0.5]},
        }
        path = tmp_path / "rep.json"
        path.write_text(json.dumps(payload))
        with pytest.raises((IndexError, TypeError)):
            DatabaseRepresentative.load(path)


class TestDegenerateStatistics:
    def test_term_in_every_document(self):
        rep = DatabaseRepresentative(
            "db", 10, {"ubiquitous": TermStats(1.0, 0.3, 0.0, 0.3)}
        )
        query = Query.from_terms(["ubiquitous"])
        for estimator in ALL:
            estimate = estimator.estimate(query, rep, 0.2)
            assert estimate.nodoc == pytest.approx(10.0), estimator

    def test_zero_weight_term(self):
        rep = DatabaseRepresentative(
            "db", 10, {"ghost": TermStats(0.4, 0.0, 0.0, 0.0)}
        )
        query = Query.from_terms(["ghost"])
        for estimator in ALL:
            estimate = estimator.estimate(query, rep, 0.1)
            assert estimate.nodoc == 0.0, estimator

    def test_single_document_database(self):
        rep = DatabaseRepresentative(
            "db", 1, {"only": TermStats(1.0, 0.8, 0.0, 0.8)}
        )
        query = Query.from_terms(["only"])
        estimate = SubrangeEstimator().estimate(query, rep, 0.5)
        assert estimate.nodoc == pytest.approx(1.0)
        assert estimate.avgsim == pytest.approx(0.8)

    def test_empty_database(self):
        rep = DatabaseRepresentative("db", 0, {})
        query = Query.from_terms(["anything"])
        for estimator in ALL:
            estimate = estimator.estimate(query, rep, 0.1)
            assert estimate.nodoc == 0.0, estimator

    def test_huge_database_stays_finite(self):
        rep = DatabaseRepresentative(
            "db", 10**9, {"t": TermStats(0.5, 0.3, 0.1, 0.9)}
        )
        query = Query.from_terms(["t"])
        for estimator in ALL:
            estimate = estimator.estimate(query, rep, 0.2)
            assert estimate.nodoc <= 10**9, estimator
            assert estimate.avgsim <= 1.0 + 1e-9, estimator

    def test_extreme_std(self):
        # A wild std must not produce negative weights or NaN.
        rep = DatabaseRepresentative(
            "db", 100, {"t": TermStats(0.5, 0.1, 50.0, 0.9)}
        )
        query = Query.from_terms(["t"])
        estimate = SubrangeEstimator().estimate(query, rep, 0.2)
        assert estimate.nodoc >= 0.0
        assert estimate.avgsim >= 0.0

    def test_pathological_text_inputs(self):
        from repro.text import TextPipeline

        pipeline = TextPipeline()
        assert pipeline.terms("\x00\x01\x02") == []
        long_token = "a" * 10000
        out = pipeline.terms(long_token)
        assert len(out) <= 1  # one (stemmed) token, no blowup
        assert pipeline.terms("🚀🚀🚀") == []
