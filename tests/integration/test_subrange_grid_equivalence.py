"""Differential wall: the vectorized grid vs the scalar estimators on
every configuration that used to demote to the scalar path.

Before the batched :class:`~repro.core.genfunc.BatchedGenFunc` product,
:func:`repro.core.fleet_usefulness_grid` routed several expansion
configurations through per-engine scalar ``GenFunc`` work: pruning
floors, ``max_terms`` caps, decimals off the default grid, and triplet
mode all skipped the parallel merge.  Those guards are gone — the batched
kernel implements the exact scalar semantics — so this suite sweeps each
formerly-guarded configuration (and their combinations) across all five
vectorized estimator families and asserts:

* the grid equals the scalar estimator **bit-for-bit** (``float.hex``
  equality, never ``approx``) on every engine x threshold cell,
* the sweep completes with **zero** scalar-fallback demotions
  (:func:`repro.core.fallback_count`) — the equality is earned by the
  batched kernel, not by quietly re-running the scalar code, and
* the *only* remaining demotion trigger — exponents whose rounding
  scaling overflows float64 — still demotes, is still counted, and still
  returns scalar-identical bits.

Fleet shapes covered: a correlated synthetic fleet, mutually disjoint
vocabularies, query terms unknown to every engine, and
overflow-adjacent weights on both sides of the demotion boundary.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BasicEstimator,
    BinaryIndependenceEstimator,
    GlossDisjointEstimator,
    GlossHighCorrelationEstimator,
    SubrangeEstimator,
    fallback_count,
    fleet_usefulness_grid,
    reset_fallback_count,
    supports_fleet,
)
from repro.corpus import Query
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.representatives import (
    DatabaseRepresentative,
    FleetRepresentativeStore,
    SubrangeScheme,
    TermStats,
    build_representative,
)

THRESHOLDS = (0.0, 0.1, 0.3, 0.6, 1.5)
N_QUERIES = 12

# Every expansion-control combination that used to trip a scalar
# fallback, plus the non-expansion families for completeness.  IDs name
# the formerly-guarded knob.
CONFIGS = [
    pytest.param(lambda: SubrangeEstimator(), id="subrange-default"),
    pytest.param(
        lambda: SubrangeEstimator(prune_floor=1e-6), id="subrange-pruned"
    ),
    pytest.param(
        lambda: SubrangeEstimator(max_terms=6), id="subrange-capped"
    ),
    pytest.param(
        lambda: SubrangeEstimator(prune_floor=1e-4, max_terms=4),
        id="subrange-pruned-capped",
    ),
    pytest.param(
        lambda: SubrangeEstimator(decimals=0), id="subrange-decimals-0"
    ),
    pytest.param(
        lambda: SubrangeEstimator(decimals=3), id="subrange-decimals-3"
    ),
    pytest.param(
        lambda: SubrangeEstimator(decimals=12, prune_floor=1e-9),
        id="subrange-decimals-12-pruned",
    ),
    pytest.param(
        lambda: SubrangeEstimator(use_stored_max=False), id="subrange-triplet"
    ),
    pytest.param(
        lambda: SubrangeEstimator(
            use_stored_max=False, prune_floor=1e-5, max_terms=5
        ),
        id="subrange-triplet-pruned-capped",
    ),
    pytest.param(
        lambda: SubrangeEstimator(
            scheme=SubrangeScheme.equal(4, include_max=False)
        ),
        id="subrange-no-max-singleton",
    ),
    pytest.param(lambda: BasicEstimator(), id="basic"),
    pytest.param(
        lambda: BasicEstimator(prune_floor=1e-6, max_terms=4),
        id="basic-pruned-capped",
    ),
    pytest.param(lambda: BinaryIndependenceEstimator(), id="binary"),
    pytest.param(
        lambda: BinaryIndependenceEstimator(global_weight=0.42),
        id="binary-global-weight",
    ),
    pytest.param(lambda: GlossHighCorrelationEstimator(), id="gloss-hc"),
    pytest.param(lambda: GlossDisjointEstimator(), id="gloss-dj"),
]


def _exact(a: float, b: float) -> bool:
    return float(a).hex() == float(b).hex()


def _store_of(reps):
    store = FleetRepresentativeStore()
    for rep in reps:
        store.add(rep)
    return store


def assert_grid_matches_scalar(estimator, reps, queries, thresholds=THRESHOLDS):
    assert supports_fleet(estimator)
    store = _store_of(reps)
    for query in queries:
        grid = fleet_usefulness_grid(estimator, store, query, thresholds)
        assert grid is not None and len(grid) == len(thresholds)
        for row, threshold in zip(grid, thresholds):
            assert len(row) == len(reps)
            for got, rep in zip(row, reps):
                want = estimator.estimate(query, rep, threshold)
                assert _exact(got.nodoc, want.nodoc), (
                    f"nodoc diverged: {rep.name} q={query.terms} "
                    f"t={threshold}: {got.nodoc!r} != {want.nodoc!r}"
                )
                assert _exact(got.avgsim, want.avgsim), (
                    f"avgsim diverged: {rep.name} q={query.terms} "
                    f"t={threshold}: {got.avgsim!r} != {want.avgsim!r}"
                )


@pytest.fixture(scope="module")
def synth_fleet():
    model = NewsgroupModel(
        vocab_size=2000,
        topic_size=90,
        topic_band=(40, 900),
        mean_length=60,
        seed=1999,
        group_sizes=[30, 25, 20, 15],
    )
    engines = [SearchEngine(model.generate_group(g)) for g in range(4)]
    reps = [build_representative(e) for e in engines]
    queries = QueryLogModel(model, seed=7).generate(N_QUERIES)
    return reps, queries


@pytest.fixture(scope="module")
def disjoint_fleet():
    """Engines with mutually disjoint vocabularies — every query matches
    at most one engine, the rest expand the empty product."""
    reps = []
    for e in range(3):
        stats = {
            f"only{e}-{t}": TermStats(
                probability=0.2 + 0.1 * t,
                mean=0.15 + 0.05 * e,
                std=0.04 * (t + 1),
                max_weight=0.6 + 0.1 * e,
            )
            for t in range(4)
        }
        reps.append(DatabaseRepresentative(f"dj{e}", 40 + 10 * e, stats))
    queries = [
        Query(terms=("only0-0", "only1-1"), weights=(0.7, 0.3)),
        Query(terms=("only2-0", "only2-3"), weights=(0.5, 0.5)),
        Query(terms=("only0-2",), weights=(1.0,)),
    ]
    return reps, queries


class TestFormerFallbackConfigs:
    """Every formerly-guarded configuration runs fully batched and equals
    the scalar estimator bit-for-bit."""

    @pytest.mark.parametrize("factory", CONFIGS)
    def test_synthetic_fleet(self, synth_fleet, factory):
        reps, queries = synth_fleet
        reset_fallback_count()
        assert_grid_matches_scalar(factory(), reps, queries)
        assert fallback_count() == 0, (
            "a formerly-guarded configuration demoted engines to the "
            "scalar path — the batched kernel must cover it"
        )

    @pytest.mark.parametrize("factory", CONFIGS)
    def test_disjoint_vocabularies(self, disjoint_fleet, factory):
        reps, queries = disjoint_fleet
        reset_fallback_count()
        assert_grid_matches_scalar(factory(), reps, queries)
        assert fallback_count() == 0


class TestUnknownTerms:
    @pytest.mark.parametrize("factory", CONFIGS)
    def test_ghost_terms_mixed_and_all_unknown(self, synth_fleet, factory):
        reps, queries = synth_fleet
        known = list(queries[0].terms)
        ghost_queries = [
            Query(
                terms=(known[0], "ghost-term-a"),
                weights=(0.6, 0.4),
            ),
            Query(terms=("ghost-term-a", "ghost-term-b"), weights=(0.5, 0.5)),
        ]
        reset_fallback_count()
        assert_grid_matches_scalar(factory(), reps, ghost_queries)
        assert fallback_count() == 0


class TestOverflowBoundary:
    """The one remaining demotion trigger: exponents whose ``np.round``
    scaling overflows float64."""

    @staticmethod
    def _rep(name, magnitude):
        stats = {
            "huge": TermStats(
                probability=0.5, mean=magnitude, std=0.0, max_weight=magnitude
            ),
            "plain": TermStats(
                probability=0.4, mean=0.2, std=0.05, max_weight=0.7
            ),
        }
        return DatabaseRepresentative(name, 50, stats)

    def test_near_boundary_stays_vectorized(self):
        # 1e280 * 10**8 = 1e288 — far below the 1e306 overflow guard, so
        # these rows must stay in the batched kernel.
        reps = [self._rep("near", 1e280), self._rep("small", 0.9)]
        queries = [Query(terms=("huge", "plain"), weights=(0.5, 0.5))]
        reset_fallback_count()
        assert_grid_matches_scalar(SubrangeEstimator(), reps, queries)
        assert fallback_count() == 0

    def test_overflowing_rows_demote_counted_and_exact(self):
        # 1e305 * 10**8 overflows; the affected engine must demote to the
        # scalar GenFunc (counted), while the healthy engine stays batched
        # — and both still match the scalar estimator exactly.
        import numpy as np

        reps = [self._rep("boom", 1e305), self._rep("small", 0.9)]
        queries = [Query(terms=("huge", "plain"), weights=(0.5, 0.5))]
        reset_fallback_count()
        with np.errstate(over="ignore"):
            assert_grid_matches_scalar(SubrangeEstimator(), reps, queries)
        assert fallback_count() == len(queries), (
            "exactly the overflowing engine should demote, once per query"
        )
