"""Differential suite: the coalescing front door changes *when* work
runs, never *what* it answers.

Every test drives a coalescing-enabled :class:`GatewayApp` (or
:class:`CoordinatorApp`) with genuinely concurrent requests through the
full ``handle()`` policy — admission, deadlines, wire encoding — and
compares each response against a coalescing-off twin serving identical
collections:

* ``/estimate`` responses must match **byte-for-byte** across all five
  estimators and both representative backends (dict and columnar).
* ``/search`` responses must match exactly after zeroing the wall-clock
  timing fields (``latencies`` values and ``failures[*].elapsed`` — the
  only nondeterministic bytes on the wire), including the per-engine
  ``EngineFailure`` records a broken backend produces and per-request
  ``limit`` truncation demuxed from the unlimited shared batch.
* The sharded topology: a gated fleet proves one flushed window costs
  exactly one ``/estimate`` RPC per shard (``coordinator.scatter.rpcs``
  == fanouts x shards) while duplicate queries dedup into one grid row.
* Cache interplay: a warm estimate answers from the probe without
  joining any window, and invalidating the cache mid-window (between
  enqueue and flush) never poisons the flushed batch.
* A Hypothesis schedule drives random arrival jitter, duplicates, and
  window geometry to hunt ordering races the fixed choreographies miss.
"""

import json
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import get_estimator
from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker
from repro.obs import MetricsRegistry
from repro.representatives import build_representative, partition_round_robin
from repro.serving import (
    CoordinatorApp,
    GatewayApp,
    ServingServer,
    ShardApp,
    ShardedFleet,
)
from repro.serving.wire import query_to_wire

pytestmark = pytest.mark.slow

ESTIMATORS = [
    "basic",
    "binary-independence",
    "gloss-hc",
    "gloss-disjoint",
    "subrange",
]

N_ENGINES = 4

VOCAB = ["rocket", "orbit", "engine", "fuel", "sauce", "basil", "kiwi", "plum"]


def fleet_collections():
    """Four small overlapping collections with deterministic contents."""
    collections = []
    for e in range(N_ENGINES):
        documents = []
        for d in range(6):
            terms = [
                VOCAB[(e + d + k) % len(VOCAB)]
                for k in range((e * 7 + d * 3) % 5 + 2)
            ]
            documents.append(Document(f"e{e}-d{d}", terms=terms))
        collections.append(Collection.from_documents(f"engine{e}", documents))
    return collections


QUERIES = [
    Query(terms=("rocket", "orbit"), weights=(2.0, 1.0)),
    Query(terms=("sauce",), weights=(1.0,)),
    Query(terms=("kiwi", "fuel", "basil"), weights=(1.0, 3.0, 0.5)),
    Query(terms=("nosuchterm",), weights=(1.0,)),
]

THRESHOLDS = (0.0, 0.2, 0.5)

#: Coalescing geometry used unless a test needs its own: a window long
#: enough that threads launched together genuinely coalesce, with
#: admission wide enough that the window (not the queue) is the batcher.
COALESCE_KWARGS = dict(
    coalesce_window=0.2,
    coalesce_max_batch=32,
    max_active=32,
    max_queued=64,
)


def make_broker(estimator_name, columnar, collections, wrap=None, **kwargs):
    """A broker over fresh engines for ``collections``; ``wrap`` maps an
    engine to its registered stand-in (representatives always build from
    the real engine, so estimates stay identical)."""
    broker = MetasearchBroker(
        estimator=get_estimator(estimator_name), columnar=columnar, **kwargs
    )
    for collection in collections:
        engine = SearchEngine(collection)
        registered = wrap(engine) if wrap is not None else engine
        broker.register(
            registered, representative=build_representative(engine)
        )
    return broker


def estimate_body(query, threshold):
    return json.dumps(
        {"query": query_to_wire(query), "threshold": threshold}
    ).encode("utf-8")


def search_body(query, threshold, limit=None):
    payload = {"query": query_to_wire(query), "threshold": threshold}
    if limit is not None:
        payload["limit"] = limit
    return json.dumps(payload).encode("utf-8")


def fire_concurrently(app, path, bodies, barrier_timeout=30):
    """POST every body from its own thread through the app's full
    ``handle`` policy; returns responses in submission order."""
    responses = [None] * len(bodies)
    barrier = threading.Barrier(len(bodies), timeout=barrier_timeout)

    def worker(i):
        barrier.wait()
        responses[i] = app.handle("POST", path, {}, bodies[i])

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(len(bodies))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "request thread hung"
    return responses


def serially(app, path, bodies):
    return [app.handle("POST", path, {}, body) for body in bodies]


def normalized(response):
    """Decode a ``/search`` response with its wall-clock-only fields
    (dispatch latencies, failure elapsed) zeroed; everything else must
    match exactly."""
    payload = json.loads(response.body_bytes())
    if isinstance(payload, dict):
        if isinstance(payload.get("latencies"), dict):
            payload["latencies"] = {
                name: 0.0 for name in payload["latencies"]
            }
        for failure in payload.get("failures", []) or []:
            if isinstance(failure, dict):
                failure["elapsed"] = 0.0
    return payload


class TestEstimateMatrix:
    """/estimate: byte-for-byte across estimators x backends."""

    @pytest.mark.parametrize("columnar", [False, True], ids=["dict", "columnar"])
    @pytest.mark.parametrize("estimator_name", ESTIMATORS)
    def test_coalesced_estimates_match_per_request_bytes(
        self, estimator_name, columnar
    ):
        collections = fleet_collections()
        registry = MetricsRegistry()
        on = GatewayApp(
            make_broker(estimator_name, columnar, collections),
            registry=registry,
            **COALESCE_KWARGS,
        )
        off = GatewayApp(
            make_broker(estimator_name, columnar, collections),
            max_active=32,
            max_queued=64,
        )
        bodies = [
            estimate_body(query, threshold)
            for query in QUERIES
            for threshold in THRESHOLDS
        ]
        coalesced = fire_concurrently(on, "/estimate", bodies)
        reference = serially(off, "/estimate", bodies)
        for got, want in zip(coalesced, reference):
            assert got.status == 200 and want.status == 200
            assert got.body_bytes() == want.body_bytes()
        assert registry.value(
            "serving.coalesce.requests", labels={"window": "estimate"}
        ) == len(bodies)


class TestSearchEquivalence:
    """/search: exact modulo timing, including failures and limits."""

    def test_search_with_broken_engine_and_limits(self, engine_doubles):
        collections = fleet_collections()

        def wrap(engine):
            if engine.name == "engine2":
                return engine_doubles.BrokenEngine(engine)
            return engine

        on = GatewayApp(
            make_broker("subrange", True, collections, wrap=wrap, workers=4),
            **COALESCE_KWARGS,
        )
        off = GatewayApp(
            make_broker("subrange", True, collections, wrap=wrap, workers=4),
            max_active=32,
            max_queued=64,
        )
        bodies = [
            search_body(query, threshold, limit)
            for query in QUERIES
            for threshold in (0.0, 0.2)
            for limit in (None, 3)
        ]
        coalesced = fire_concurrently(on, "/search", bodies)
        reference = serially(off, "/search", bodies)
        saw_failure = False
        for got, want in zip(coalesced, reference):
            assert got.status == 200 and want.status == 200
            got_payload, want_payload = normalized(got), normalized(want)
            assert got_payload == want_payload
            for failure in got_payload["failures"]:
                saw_failure = True
                assert failure["engine"] == "engine2"
                assert failure["failure_kind"] == "error"
        # The broken backend degraded at least one answer on both lanes,
        # so the equality above covered real EngineFailure records.
        assert saw_failure

    def test_duplicate_queries_share_one_estimate_row(self):
        """Identical concurrent estimates dedup into one grid row and
        still answer byte-for-byte."""
        collections = fleet_collections()
        registry = MetricsRegistry()
        broker = make_broker("subrange", True, collections)
        grid_rows = []
        original = broker.estimate_batch

        def counting_estimate_batch(queries, thresholds):
            queries = list(queries)
            grid_rows.append(len(queries))
            return original(queries, thresholds)

        broker.estimate_batch = counting_estimate_batch
        on = GatewayApp(broker, registry=registry, **COALESCE_KWARGS)
        off = GatewayApp(make_broker("subrange", True, collections))
        body = estimate_body(QUERIES[0], 0.2)
        bodies = [body] * 8
        coalesced = fire_concurrently(on, "/estimate", bodies)
        want = off.handle("POST", "/estimate", {}, body)
        for got in coalesced:
            assert got.status == 200
            assert got.body_bytes() == want.body_bytes()
        deduped = registry.value(
            "serving.coalesce.deduped", labels={"window": "estimate"}
        )
        hits = registry.value(
            "serving.coalesce.cache_hits", labels={"window": "estimate"}
        )
        # Every duplicate was absorbed before reaching the grid: either
        # deduped inside a window or answered by the cache probe once
        # the first flush warmed the estimate cache.
        assert deduped + hits >= 1
        assert sum(grid_rows) + deduped + hits == len(bodies)


class TestCacheInterplay:
    def test_warm_estimate_answers_from_probe_without_batching(self):
        collections = fleet_collections()
        registry = MetricsRegistry()
        app = GatewayApp(
            make_broker("subrange", True, collections),
            registry=registry,
            **COALESCE_KWARGS,
        )
        body = estimate_body(QUERIES[0], 0.2)
        first = app.handle("POST", "/estimate", {}, body)
        assert first.status == 200
        flushes_before = registry.value(
            "serving.coalesce.flush",
            labels={"window": "estimate", "reason": "idle"},
        )
        again = fire_concurrently(app, "/estimate", [body] * 6)
        for got in again:
            assert got.status == 200
            assert got.body_bytes() == first.body_bytes()
        assert registry.value(
            "serving.coalesce.cache_hits", labels={"window": "estimate"}
        ) == 6
        # No new flush of any kind: the probe answered before the window.
        flush_total = sum(
            registry.value(
                "serving.coalesce.flush",
                labels={"window": "estimate", "reason": reason},
            )
            for reason in ("idle", "drain", "full", "timer")
        )
        assert flush_total == flushes_before

    def test_mid_window_cache_invalidation_never_poisons_the_batch(self):
        """Clear the estimate cache while members sit queued behind a
        stalled leader: the flushed batch recomputes and still answers
        byte-for-byte."""
        collections = fleet_collections()
        broker = make_broker("subrange", True, collections)
        entered = threading.Event()
        gate = threading.Event()
        original = broker.estimate_batch
        calls = []

        def gated_estimate_batch(queries, thresholds):
            calls.append(len(list(queries)))
            if len(calls) == 1:
                entered.set()
                assert gate.wait(20), "estimate gate never released"
            return original(queries, thresholds)

        broker.estimate_batch = gated_estimate_batch
        app = GatewayApp(broker, **COALESCE_KWARGS)
        off = GatewayApp(make_broker("subrange", True, collections))
        leader_body = estimate_body(QUERIES[0], 0.0)
        member_bodies = [
            estimate_body(query, 0.2) for query in QUERIES[:3]
        ]

        leader_response = []
        leader = threading.Thread(
            target=lambda: leader_response.append(
                app.handle("POST", "/estimate", {}, leader_body)
            )
        )
        leader.start()
        assert entered.wait(10)

        member_responses = [None] * len(member_bodies)

        def member(i):
            member_responses[i] = app.handle(
                "POST", "/estimate", {}, member_bodies[i]
            )

        threads = [
            threading.Thread(target=member, args=(i,))
            for i in range(len(member_bodies))
        ]
        for thread in threads:
            thread.start()
        window = app._coalesce_estimate
        deadline = time.monotonic() + 10
        while window.queued < len(member_bodies):
            assert time.monotonic() < deadline, "members never queued"
            time.sleep(0.002)
        # The invalidation lands between enqueue and flush.
        broker.cache.clear()
        gate.set()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        leader.join(timeout=30)
        assert leader_response and leader_response[0].status == 200
        for body, got in zip(member_bodies, member_responses):
            want = off.handle("POST", "/estimate", {}, body)
            assert got.status == 200
            assert got.body_bytes() == want.body_bytes()
        # One solo leader batch, one coalesced member batch.
        assert calls == [1, len(member_bodies)]


class TestShardedCoordinator:
    """One flushed window costs one /estimate RPC per shard."""

    @pytest.fixture()
    def shard_servers(self):
        collections = fleet_collections()
        slices = partition_round_robin(collections, 2)
        servers = []
        try:
            for index, slice_collections in enumerate(slices):
                broker = MetasearchBroker(columnar=True)
                for collection in slice_collections:
                    engine = SearchEngine(collection)
                    broker.register(
                        engine, representative=build_representative(engine)
                    )
                server = ServingServer(ShardApp(broker, shard_index=index))
                server.start_background()
                servers.append(server)
            yield [server.url for server in servers]
        finally:
            for server in servers:
                server.drain(timeout=10)

    def test_window_costs_one_rpc_per_shard_and_dedups(self, shard_servers):
        urls = shard_servers
        registry = MetricsRegistry()
        entered = threading.Event()
        gate = threading.Event()

        class GatedFleet(ShardedFleet):
            calls = 0

            def estimate_batch(self, queries, thresholds):
                GatedFleet.calls += 1
                if GatedFleet.calls == 1:
                    entered.set()
                    assert gate.wait(20), "fleet gate never released"
                return super().estimate_batch(queries, thresholds)

        fleet = GatedFleet(urls, registry=registry).attach()
        app = CoordinatorApp(
            fleet,
            registry=registry,
            coalesce_window=0.5,
            coalesce_max_batch=32,
            max_active=32,
            max_queued=64,
        )
        off = CoordinatorApp(ShardedFleet(urls).attach())

        leader_body = estimate_body(QUERIES[0], 0.0)
        # Distinct members plus one duplicate pair exercising dedup.
        member_specs = [
            (QUERIES[0], 0.2),
            (QUERIES[1], 0.2),
            (QUERIES[2], 0.5),
            (QUERIES[1], 0.2),  # duplicate of member 1
            (QUERIES[3], 0.0),
        ]
        member_bodies = [estimate_body(q, t) for q, t in member_specs]

        leader_response = []
        leader = threading.Thread(
            target=lambda: leader_response.append(
                app.handle("POST", "/estimate", {}, leader_body)
            )
        )
        leader.start()
        assert entered.wait(10)

        member_responses = [None] * len(member_bodies)

        def member(i):
            member_responses[i] = app.handle(
                "POST", "/estimate", {}, member_bodies[i]
            )

        threads = [
            threading.Thread(target=member, args=(i,))
            for i in range(len(member_bodies))
        ]
        for thread in threads:
            thread.start()
        window = app._coalesce_estimate
        deadline = time.monotonic() + 10
        while window.queued < len(member_bodies):
            assert time.monotonic() < deadline, "members never queued"
            time.sleep(0.002)
        gate.set()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        leader.join(timeout=30)

        assert leader_response and leader_response[0].status == 200
        for body, got in zip(member_bodies, member_responses):
            want = off.handle("POST", "/estimate", {}, body)
            assert got.status == 200
            assert got.body_bytes() == want.body_bytes()

        # Exactly two scatter rounds reached the fleet: the solo leader
        # and the single flushed window holding every queued member.
        assert GatedFleet.calls == 2
        fanouts = registry.value(
            "coordinator.scatter.fanouts", labels={"phase": "estimate"}
        )
        rpcs = registry.value(
            "coordinator.scatter.rpcs", labels={"phase": "estimate"}
        )
        assert fanouts == 2
        assert rpcs == fanouts * len(urls)
        # The duplicate pair collapsed to one grid row inside the window.
        assert registry.value(
            "serving.coalesce.deduped", labels={"window": "estimate"}
        ) == 1


class TestArrivalJitter:
    """Hypothesis hunts ordering races the fixed choreographies miss."""

    @given(
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=len(QUERIES) - 1),
                st.sampled_from(THRESHOLDS),
                st.floats(min_value=0.0, max_value=0.03),
            ),
            min_size=2,
            max_size=8,
        ),
        window_ms=st.sampled_from([2.0, 10.0, 40.0]),
        max_batch=st.sampled_from([2, 4, 32]),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_arrival_schedule_answers_exactly(
        self, schedule, window_ms, max_batch
    ):
        collections = fleet_collections()
        on = GatewayApp(
            make_broker("basic", True, collections),
            coalesce_window=window_ms / 1000.0,
            coalesce_max_batch=max_batch,
            max_active=32,
            max_queued=64,
        )
        off = GatewayApp(make_broker("basic", True, collections))
        bodies = [
            estimate_body(QUERIES[qi], threshold)
            for qi, threshold, __ in schedule
        ]
        responses = [None] * len(schedule)

        def worker(i, delay):
            time.sleep(delay)
            responses[i] = on.handle("POST", "/estimate", {}, bodies[i])

        threads = [
            threading.Thread(target=worker, args=(i, spec[2]))
            for i, spec in enumerate(schedule)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "jittered request hung"
        for body, got in zip(bodies, responses):
            want = off.handle("POST", "/estimate", {}, body)
            assert got.status == 200
            assert got.body_bytes() == want.body_bytes()
