"""Integration tests for the paper's single-term-query guarantee.

Section 3.1: when the highest subrange contains only the maximum normalized
weight (probability 1/n), the subrange method identifies exactly the
databases that truly contain a document above the threshold, for every
single-term query and every threshold that separates the databases' maximum
weights.
"""

import numpy as np
import pytest

from repro.core import SubrangeEstimator
from repro.corpus import Query
from repro.corpus.synth import word_for_term_id
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker
from repro.representatives import build_representative


@pytest.fixture(scope="module")
def fleet(small_model):
    engines = [SearchEngine(small_model.generate_group(g)) for g in range(6)]
    reps = {e.name: build_representative(e) for e in engines}
    return engines, reps


def single_term_queries(engines, limit=40):
    """Terms that occur in at least two engines, as single-term queries."""
    counts = {}
    for engine in engines:
        for term in engine.collection.vocabulary:
            counts[term] = counts.get(term, 0) + 1
    shared = sorted(t for t, c in counts.items() if c >= 2)
    rng = np.random.default_rng(0)
    rng.shuffle(shared)
    return [Query.from_terms([t]) for t in shared[:limit]]


class TestGuarantee:
    def test_selection_matches_oracle_between_max_weights(self, fleet):
        """For thresholds strictly between consecutive per-engine maximum
        normalized weights, estimated selection == true selection."""
        engines, reps = fleet
        estimator = SubrangeEstimator()
        checked = 0
        for query in single_term_queries(engines):
            term = query.terms[0]
            max_weights = sorted(
                {
                    reps[e.name].get(term).max_weight
                    for e in engines
                    if reps[e.name].get(term) is not None
                },
                reverse=True,
            )
            if len(max_weights) < 2:
                continue
            # Midpoints between consecutive distinct maxima.
            for hi, lo in zip(max_weights, max_weights[1:]):
                threshold = (hi + lo) / 2
                selected = {
                    e.name
                    for e in engines
                    if estimator.estimate(
                        query, reps[e.name], threshold
                    ).identifies_useful
                }
                truth = {
                    e.name
                    for e in engines
                    if e.max_similarity(query) > threshold
                }
                assert selected == truth, (term, threshold)
                checked += 1
        assert checked > 20  # the test actually exercised the property

    def test_estimated_max_sim_equals_true_max_sim(self, fleet):
        """For single-term queries the top expansion exponent is exactly the
        engine's true maximum similarity."""
        engines, reps = fleet
        estimator = SubrangeEstimator()
        for query in single_term_queries(engines, limit=15):
            for engine in engines:
                stats = reps[engine.name].get(query.terms[0])
                if stats is None:
                    continue
                expansion = estimator.expand(query, reps[engine.name])
                assert expansion.max_exponent() == pytest.approx(
                    engine.max_similarity(query), abs=1e-6
                )

    def test_broker_level_guarantee(self, fleet):
        """Same property via the metasearch broker's public API."""
        engines, reps = fleet
        broker = MetasearchBroker(estimator=SubrangeEstimator())
        for engine in engines:
            broker.register(engine, representative=reps[engine.name])
        exercised = 0
        for query in single_term_queries(engines, limit=10):
            term = query.terms[0]
            maxima = sorted(
                (
                    reps[e.name].get(term).max_weight
                    for e in engines
                    if reps[e.name].get(term) is not None
                ),
                reverse=True,
            )
            if len(maxima) < 2 or maxima[0] - maxima[1] < 1e-9:
                continue
            threshold = (maxima[0] + maxima[1]) / 2
            assert set(broker.select(query, threshold)) == set(
                broker.true_selection(query, threshold)
            )
            exercised += 1
        assert exercised > 0

    def test_guarantee_fails_without_stored_max(self, fleet):
        """Sanity: the triplet mode does NOT enjoy the guarantee — this is
        the entire point of Tables 10-12.  We only require that it errs at
        least once on the same threshold family."""
        engines, reps = fleet
        estimator = SubrangeEstimator(use_stored_max=False)
        disagreements = 0
        for query in single_term_queries(engines):
            term = query.terms[0]
            maxima = sorted(
                (
                    reps[e.name].get(term).max_weight
                    for e in engines
                    if reps[e.name].get(term) is not None
                ),
                reverse=True,
            )
            if len(maxima) < 2:
                continue
            threshold = (maxima[0] + maxima[1]) / 2
            for engine in engines:
                rep = reps[engine.name].as_triplets()
                estimate = estimator.estimate(query, rep, threshold)
                truly = engine.max_similarity(query) > threshold
                if estimate.identifies_useful != truly:
                    disagreements += 1
        assert disagreements > 0
