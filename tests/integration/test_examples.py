"""Smoke tests: every example script runs to completion.

Examples are the public face of the library — a broken example is a broken
deliverable, so each one is executed in-process (fast paths only; the
table-reproduction example runs with a reduced query count).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "space-news" in out
        assert "estimated NoDoc" in out

    def test_representative_sizing(self, capsys):
        run_example("representative_sizing.py")
        out = capsys.readouterr().out
        assert "WSJ" in out
        assert "mean abs error" in out

    @pytest.mark.slow
    def test_reproduce_tables_reduced(self, capsys):
        run_example("reproduce_tables.py", argv=["120"])
        out = capsys.readouterr().out
        assert "Tables 1-2 analogue" in out
        assert "Table 7 analogue" in out
        assert "Table 10 analogue" in out

    @pytest.mark.slow
    def test_metasearch_selection(self, capsys):
        run_example("metasearch_selection.py")
        out = capsys.readouterr().out
        assert "selection quality" in out
        assert "recall of useful engines" in out

    @pytest.mark.slow
    def test_fleet_operations(self, capsys):
        run_example("fleet_operations.py")
        out = capsys.readouterr().out
        assert "streaming maintenance" in out
        assert "quota" in out

    @pytest.mark.slow
    def test_corpus_statistics(self, capsys):
        run_example("corpus_statistics.py")
        out = capsys.readouterr().out
        assert "Zipf exponent" in out
        assert "uniform-random contrast corpus" in out

    @pytest.mark.slow
    def test_hierarchical_metasearch(self, capsys):
        run_example("hierarchical_metasearch.py")
        out = capsys.readouterr().out
        assert "node estimates" in out
        assert "pruned" in out
