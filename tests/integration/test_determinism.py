"""Determinism: every seeded artifact is reproducible bit-for-bit.

The experiment suite's claims are only auditable if two runs with the same
seeds produce identical numbers; these tests rebuild the artifacts from
scratch and compare.
"""

from repro.core import SubrangeEstimator
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.evaluation import MethodSpec, run_usefulness_experiment
from repro.representatives import build_representative

MODEL_ARGS = dict(
    vocab_size=2000,
    topic_size=60,
    topic_band=(30, 900),
    mean_length=50,
    seed=424242,
    group_sizes=[40, 30],
)


class TestDeterminism:
    def test_corpus_identical_across_model_instances(self):
        a = NewsgroupModel(**MODEL_ARGS).generate_group(0)
        b = NewsgroupModel(**MODEL_ARGS).generate_group(0)
        assert len(a) == len(b)
        for i in range(len(a)):
            assert a.doc_id(i) == b.doc_id(i)
            assert a.terms_of(i) == b.terms_of(i)

    def test_group_generation_independent_of_order(self):
        model_forward = NewsgroupModel(**MODEL_ARGS)
        g0_first = model_forward.generate_group(0)
        model_backward = NewsgroupModel(**MODEL_ARGS)
        model_backward.generate_group(1)  # generate 1 before 0
        g0_second = model_backward.generate_group(0)
        assert g0_first.tf_vector(0) == g0_second.tf_vector(0)

    def test_queries_identical_across_instances(self):
        model = NewsgroupModel(**MODEL_ARGS)
        a = QueryLogModel(model, seed=5).generate(60)
        b = QueryLogModel(NewsgroupModel(**MODEL_ARGS), seed=5).generate(60)
        assert a == b

    def test_experiment_numbers_identical(self):
        def run():
            model = NewsgroupModel(**MODEL_ARGS)
            engine = SearchEngine(model.generate_group(0))
            rep = build_representative(engine)
            queries = QueryLogModel(model, seed=5).generate(80)
            return run_usefulness_experiment(
                engine,
                queries,
                [MethodSpec("subrange", SubrangeEstimator(), rep)],
                thresholds=(0.1, 0.3),
            )

        first = run()
        second = run()
        for row_a, row_b in zip(
            first.metrics["subrange"], second.metrics["subrange"]
        ):
            assert row_a == row_b

    def test_representative_identical(self):
        def build():
            model = NewsgroupModel(**MODEL_ARGS)
            return build_representative(SearchEngine(model.generate_group(1)))

        a, b = build(), build()
        assert a.n_terms == b.n_terms
        for term, stats in a.items():
            assert b.get(term) == stats
