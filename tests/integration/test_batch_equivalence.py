"""Differential suite: the batch pipeline vs the serial per-query path.

The batch APIs (`estimate_batch` / `search_batch`) and the two-level
memoization behind them (estimate cache + term-polynomial cache) promise
*exact* equality with the serial path — cached polynomial factors are
bit-for-bit what a fresh computation produces, every tail is read off the
same cumulative-sum arrays, and rows are assembled in the same engine
order.  So every comparison here is ``==``, never ``approx``.

Covered: plain equivalence over a realistic query log, per-query
thresholds, injected engine failures (a broker whose backend is down),
mid-batch cache invalidation via re-registration, disabled caches, and
non-expansion estimators falling back to the per-threshold path.
"""

from __future__ import annotations

import pytest

from repro.core import PreviousMethodEstimator, SubrangeEstimator
from repro.corpus import Query
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker
from repro.representatives import build_representative

THRESHOLD = 0.25
N_QUERIES = 40


@pytest.fixture(scope="module")
def fleet_model():
    return NewsgroupModel(
        vocab_size=2500,
        topic_size=100,
        topic_band=(40, 1000),
        mean_length=70,
        seed=2024,
        group_sizes=[35, 30, 25, 20],
    )


@pytest.fixture(scope="module")
def fleet_engines(fleet_model):
    return [
        SearchEngine(fleet_model.generate_group(group)) for group in range(4)
    ]


@pytest.fixture(scope="module")
def fleet_queries(fleet_model):
    return QueryLogModel(fleet_model, seed=77).generate(N_QUERIES)


def make_broker(engines, **kwargs) -> MetasearchBroker:
    broker = MetasearchBroker(**kwargs)
    for engine in engines:
        broker.register(engine)
    return broker


def response_signature(response):
    """Everything except timing: EngineFailure carries wall-clock fields,
    so failures compare by (engine, kind) instead of dataclass equality."""
    return (
        response.hits,
        response.invoked,
        response.estimates,
        [(f.engine, f.kind) for f in response.failures],
    )


class TestEstimateEquivalence:
    def test_batch_equals_serial_exactly(self, fleet_engines, fleet_queries):
        serial = make_broker(fleet_engines)
        batch = make_broker(fleet_engines)
        expected = [
            serial.estimate_all(query, THRESHOLD) for query in fleet_queries
        ]
        assert batch.estimate_batch(fleet_queries, THRESHOLD) == expected

    def test_batch_with_caches_disabled(self, fleet_engines, fleet_queries):
        serial = make_broker(fleet_engines)
        batch = make_broker(fleet_engines, cache_size=0, polycache_size=0)
        expected = [
            serial.estimate_all(query, THRESHOLD) for query in fleet_queries
        ]
        assert batch.estimate_batch(fleet_queries, THRESHOLD) == expected

    def test_per_query_thresholds(self, fleet_engines, fleet_queries):
        thresholds = [
            0.1 + 0.05 * (i % 6) for i in range(len(fleet_queries))
        ]
        serial = make_broker(fleet_engines)
        batch = make_broker(fleet_engines)
        expected = [
            serial.estimate_all(query, threshold)
            for query, threshold in zip(fleet_queries, thresholds)
        ]
        assert batch.estimate_batch(fleet_queries, thresholds) == expected

    def test_same_query_at_many_thresholds_shares_expansion(
        self, fleet_engines, fleet_queries
    ):
        """Duplicating one query across a threshold grid exercises the
        shared-expansion path; answers still match serial exactly."""
        query = fleet_queries[0]
        grid = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
        serial = make_broker(fleet_engines)
        batch = make_broker(fleet_engines)
        expected = [serial.estimate_all(query, t) for t in grid]
        assert batch.estimate_batch([query] * len(grid), grid) == expected

    def test_repeated_batches_stay_equal(self, fleet_engines, fleet_queries):
        """A warm second batch (everything cached) returns the same rows."""
        batch = make_broker(fleet_engines)
        first = batch.estimate_batch(fleet_queries, THRESHOLD)
        second = batch.estimate_batch(fleet_queries, THRESHOLD)
        assert first == second
        assert batch.cache.hits > 0

    def test_threshold_count_mismatch_rejected(
        self, fleet_engines, fleet_queries
    ):
        batch = make_broker(fleet_engines)
        with pytest.raises(ValueError, match="thresholds"):
            batch.estimate_batch(fleet_queries, [0.1, 0.2])

    def test_non_expansion_estimator(self, fleet_engines, fleet_queries):
        """Direct (threshold-dependent) estimators take the fallback path;
        equality must still be exact."""
        serial = make_broker(
            fleet_engines, estimator=PreviousMethodEstimator()
        )
        batch = make_broker(fleet_engines, estimator=PreviousMethodEstimator())
        expected = [
            serial.estimate_all(query, THRESHOLD)
            for query in fleet_queries[:10]
        ]
        assert batch.estimate_batch(fleet_queries[:10], THRESHOLD) == expected


class TestSearchEquivalence:
    def test_search_batch_equals_serial(self, fleet_engines, fleet_queries):
        serial = make_broker(fleet_engines)
        batch = make_broker(fleet_engines)
        expected = [
            response_signature(serial.search(query, THRESHOLD))
            for query in fleet_queries
        ]
        got = [
            response_signature(response)
            for response in batch.search_batch(fleet_queries, THRESHOLD)
        ]
        assert got == expected

    def test_search_batch_concurrent_dispatch(
        self, fleet_engines, fleet_queries
    ):
        serial = make_broker(fleet_engines)
        batch = make_broker(fleet_engines, workers=4)
        expected = [
            response_signature(serial.search(query, THRESHOLD))
            for query in fleet_queries[:15]
        ]
        got = [
            response_signature(response)
            for response in batch.search_batch(fleet_queries[:15], THRESHOLD)
        ]
        assert got == expected

    def test_search_batch_with_broken_engine(
        self, fleet_engines, fleet_queries, engine_doubles
    ):
        """A downed backend degrades identically on both paths: same hits
        from the healthy engines, same (engine, kind) failure records."""

        def broken_fleet():
            broker = MetasearchBroker()
            broken = engine_doubles.BrokenEngine(fleet_engines[0])
            broker.register(
                broken, representative=build_representative(fleet_engines[0])
            )
            for engine in fleet_engines[1:]:
                broker.register(engine)
            return broker

        serial = broken_fleet()
        batch = broken_fleet()
        queries = fleet_queries[:15]
        expected = [
            response_signature(serial.search(query, THRESHOLD))
            for query in queries
        ]
        got = [
            response_signature(response)
            for response in batch.search_batch(queries, THRESHOLD)
        ]
        assert got == expected
        assert any(sig[3] for sig in got), "fault injection never fired"


class TestMidBatchInvalidation:
    def test_reregistration_between_batches(self, fleet_model, fleet_queries):
        """Re-registering an engine with a different corpus must drop both
        caches' entries for it: the next batch answers from the new
        representative, identically to a fresh serial broker."""
        original = SearchEngine(fleet_model.generate_group(0))
        other = SearchEngine(fleet_model.generate_group(1))
        queries = fleet_queries[:20]

        batch = MetasearchBroker()
        batch.register(original)
        batch.estimate_batch(queries, THRESHOLD)  # warm both caches
        assert len(batch.polycache) > 0

        # Same engine object, replacement representative — the refresh path.
        replacement = build_representative(other)
        replacement = type(replacement)(
            original.name,
            n_documents=replacement.n_documents,
            term_stats=dict(replacement.items()),
        )
        batch.register(original, representative=replacement)

        fresh = MetasearchBroker()
        fresh.register(original, representative=replacement)
        expected = [fresh.estimate_all(query, THRESHOLD) for query in queries]
        assert batch.estimate_batch(queries, THRESHOLD) == expected

    def test_invalidation_drops_both_caches(self, fleet_model, fleet_queries):
        engine = SearchEngine(fleet_model.generate_group(0))
        broker = MetasearchBroker()
        broker.register(engine)
        broker.estimate_batch(fleet_queries[:10], THRESHOLD)
        assert len(broker.cache) > 0
        assert len(broker.polycache) > 0
        broker.register(engine)  # refresh rebuilds the representative
        assert len(broker.cache) == 0
        assert len(broker.polycache) == 0


class TestBudgetedPipeline:
    def test_budget_applies_on_both_paths(self, fleet_engines, fleet_queries):
        """With the adaptive budget *enabled*, serial and batch still agree
        exactly — both run the identical budgeted expansion."""
        estimator_a = SubrangeEstimator(max_terms=64)
        estimator_b = SubrangeEstimator(max_terms=64)
        serial = make_broker(fleet_engines, estimator=estimator_a)
        batch = make_broker(fleet_engines, estimator=estimator_b)
        queries = fleet_queries[:15]
        expected = [serial.estimate_all(query, THRESHOLD) for query in queries]
        assert batch.estimate_batch(queries, THRESHOLD) == expected
