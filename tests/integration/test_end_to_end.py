"""End-to-end integration: raw text -> engines -> representatives ->
estimates -> metasearch -> persistence round trips."""

import pytest

from repro import (
    Collection,
    MetasearchBroker,
    Query,
    SearchEngine,
    SubrangeEstimator,
    build_representative,
    true_usefulness,
)
from repro.corpus import load_collection, save_collection
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.evaluation import MethodSpec, run_usefulness_experiment
from repro.representatives import DatabaseRepresentative

TEXTS_A = [
    ("a1", "Planets orbit the sun; moons orbit planets."),
    ("a2", "The telescope resolves distant orbiting bodies."),
    ("a3", "Orbital mechanics governs every satellite launch."),
]
TEXTS_B = [
    ("b1", "Fresh basil and tomato make a simple sauce."),
    ("b2", "The sauce simmers while the pasta boils."),
]


class TestTextToEstimation:
    def test_full_stack_agreement(self):
        engine_a = SearchEngine(Collection.from_texts("astro", TEXTS_A))
        engine_b = SearchEngine(Collection.from_texts("cook", TEXTS_B))
        rep_a = build_representative(engine_a)
        rep_b = build_representative(engine_b)
        query = Query.from_text("orbit of planets")
        estimator = SubrangeEstimator()
        est_a = estimator.estimate(query, rep_a, 0.2)
        est_b = estimator.estimate(query, rep_b, 0.2)
        assert est_a.nodoc > est_b.nodoc
        assert true_usefulness(engine_a, query, 0.2).nodoc >= 1
        assert true_usefulness(engine_b, query, 0.2).nodoc == 0

    def test_stemming_connects_variants(self):
        # "orbiting"/"orbital"/"orbit" conflate through the pipeline, so a
        # query using one form finds documents using another.
        engine = SearchEngine(Collection.from_texts("astro", TEXTS_A))
        hits = engine.search(Query.from_text("orbiting"), threshold=0.0)
        assert len(hits) == 3


class TestPersistenceRoundTrips:
    def test_collection_then_representative(self, tmp_path):
        model = NewsgroupModel(
            vocab_size=1500, topic_size=50, topic_band=(20, 800),
            mean_length=50, seed=3, group_sizes=[15],
        )
        original = model.generate_group(0)
        path = tmp_path / "db.jsonl.gz"
        save_collection(original, path)
        loaded = load_collection(path)

        rep_original = build_representative(SearchEngine(original))
        rep_loaded = build_representative(SearchEngine(loaded))
        assert rep_loaded.n_terms == rep_original.n_terms
        for term, stats in rep_original.items():
            other = rep_loaded.get(term)
            assert other.probability == pytest.approx(stats.probability)
            assert other.mean == pytest.approx(stats.mean)
            assert other.std == pytest.approx(stats.std)
            assert other.max_weight == pytest.approx(stats.max_weight)

    def test_representative_file_round_trip_preserves_estimates(
        self, tmp_path, small_engine, small_representative, small_queries
    ):
        path = tmp_path / "rep.json"
        small_representative.save(path)
        loaded = DatabaseRepresentative.load(path)
        estimator = SubrangeEstimator()
        for query in small_queries[:10]:
            a = estimator.estimate(query, small_representative, 0.2)
            b = estimator.estimate(query, loaded, 0.2)
            assert a.nodoc == pytest.approx(b.nodoc)
            assert a.avgsim == pytest.approx(b.avgsim)


class TestMetasearchEndToEnd:
    def test_routing_recovers_relevant_documents(self, small_model):
        broker = MetasearchBroker()
        for group in range(4):
            broker.register(SearchEngine(small_model.generate_group(group)))
        queries = QueryLogModel(small_model, seed=5).generate(40)
        productive = 0
        preserved = 0
        for query in queries:
            response = broker.search(query, threshold=0.3)
            broadcast = broker.search_all(query, threshold=0.3)
            if not broadcast.hits:
                continue
            productive += 1
            if response.hits and response.hits[0].similarity == pytest.approx(
                broadcast.hits[0].similarity
            ):
                preserved += 1
            if query.is_single_term:
                # The single-term guarantee makes preservation exact.
                assert response.hits, query
        # Selection is estimation-based, so multi-term queries may rarely
        # miss; overall the top document must survive routing almost always.
        assert productive > 10
        assert preserved >= 0.8 * productive

    def test_merged_ordering_is_global(self, small_model):
        broker = MetasearchBroker()
        for group in range(3):
            broker.register(SearchEngine(small_model.generate_group(group)))
        query = QueryLogModel(small_model, seed=6).generate(1)[0]
        hits = broker.search_all(query, threshold=0.0).hits
        sims = [h.similarity for h in hits]
        assert sims == sorted(sims, reverse=True)


class TestExperimentOnMergedDatabases:
    def test_merged_database_experiment_runs(self, small_model, small_queries):
        merged = Collection.merged(
            "merged", [small_model.generate_group(g) for g in (3, 4, 5)]
        )
        engine = SearchEngine(merged)
        rep = build_representative(engine)
        result = run_usefulness_experiment(
            engine,
            small_queries[:50],
            [MethodSpec("subrange", SubrangeEstimator(), rep)],
            thresholds=(0.2, 0.4),
        )
        assert result.n_documents == len(merged)
        assert len(result.metrics["subrange"]) == 2
