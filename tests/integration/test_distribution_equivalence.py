"""Distributed vs monolithic equivalence.

The paper's architecture partitions the corpus across engines instead of
one monolithic index.  Under Cosine this partitioning is *lossless*: a
document's normalized weights depend only on that document, so searching
the union of engines (broadcast) must return exactly the hits a single
engine over the merged collection returns — same documents, same
similarities.  This is a whole-stack consistency check: collection merging,
vocabulary re-keying, indexing, query normalization and result merging all
have to agree for it to hold.
"""

import pytest

from repro.corpus import Collection
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker


@pytest.fixture(scope="module")
def setup(small_model):
    groups = [small_model.generate_group(g) for g in range(4)]
    broker = MetasearchBroker()
    for group in groups:
        broker.register(SearchEngine(group))
    monolithic = SearchEngine(Collection.merged("all", groups))
    return broker, monolithic


class TestEquivalence:
    def test_broadcast_equals_monolithic(self, setup, small_queries):
        broker, monolithic = setup
        for query in small_queries[:60]:
            for threshold in (0.1, 0.3):
                broadcast = broker.search_all(query, threshold).hits
                central = monolithic.search(query, threshold)
                assert {h.doc_id for h in broadcast} == {
                    h.doc_id for h in central
                }, (query, threshold)
                broadcast_sims = {h.doc_id: h.similarity for h in broadcast}
                for hit in central:
                    assert broadcast_sims[hit.doc_id] == pytest.approx(
                        hit.similarity
                    )

    def test_max_similarity_agrees(self, setup, small_queries):
        broker, monolithic = setup
        for query in small_queries[:40]:
            fleet_max = max(
                (
                    broker._engines[name].engine.max_similarity(query)
                    for name in broker.engine_names
                ),
                default=0.0,
            )
            assert fleet_max == pytest.approx(monolithic.max_similarity(query))

    def test_selected_search_is_subset_of_monolithic(self, setup, small_queries):
        broker, monolithic = setup
        for query in small_queries[:40]:
            selected = broker.search(query, 0.3).hits
            central_ids = {h.doc_id for h in monolithic.search(query, 0.3)}
            assert {h.doc_id for h in selected} <= central_ids

    def test_merged_representative_matches_monolithic_engine(
        self, setup, small_model
    ):
        from repro.representatives import (
            build_representative,
            merge_representatives,
        )

        broker, monolithic = setup
        merged_rep = merge_representatives(
            "all",
            [broker.representative_of(n) for n in broker.engine_names],
        )
        central_rep = build_representative(monolithic)
        assert merged_rep.n_documents == central_rep.n_documents
        assert merged_rep.n_terms == central_rep.n_terms
        sample = [t for t, __ in list(central_rep.items())[::200]]
        for term in sample:
            a, b = merged_rep.get(term), central_rep.get(term)
            assert a.probability == pytest.approx(b.probability)
            assert a.mean == pytest.approx(b.mean)
            assert a.std == pytest.approx(b.std, abs=1e-9)
            assert a.max_weight == pytest.approx(b.max_weight)
