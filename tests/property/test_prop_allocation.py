"""Property-based tests for document-count-driven allocation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import Query
from repro.metasearch import allocate_documents, threshold_for_k
from repro.representatives import DatabaseRepresentative, TermStats


@st.composite
def fleets(draw):
    """A few representatives sharing a small vocabulary."""
    terms = [f"t{i}" for i in range(draw(st.integers(1, 4)))]
    fleet = {}
    for e in range(draw(st.integers(1, 4))):
        n = draw(st.integers(1, 300))
        stats = {}
        for term in terms:
            if draw(st.booleans()):
                mean = draw(st.floats(min_value=0.05, max_value=0.8))
                stats[term] = TermStats(
                    probability=draw(st.floats(min_value=0.01, max_value=1.0)),
                    mean=mean,
                    std=draw(st.floats(min_value=0.0, max_value=0.2)),
                    max_weight=min(
                        mean + draw(st.floats(min_value=0.0, max_value=0.3)),
                        1.0,
                    ),
                )
        fleet[f"engine{e}"] = DatabaseRepresentative(
            f"engine{e}", n_documents=n, term_stats=stats
        )
    query_terms = draw(
        st.lists(st.sampled_from(terms), min_size=1, max_size=len(terms),
                 unique=True)
    )
    return fleet, Query.from_terms(query_terms)


class TestAllocationProperties:
    @given(fleets(), st.integers(min_value=1, max_value=50))
    @settings(max_examples=120, deadline=None)
    def test_quotas_nonnegative_and_bounded(self, case, k):
        fleet, query = case
        quotas = allocate_documents(query, fleet, k)
        assert set(quotas) == set(fleet)
        assert all(v >= 0 for v in quotas.values())
        assert sum(quotas.values()) <= k

    @given(fleets(), st.integers(min_value=1, max_value=50))
    @settings(max_examples=120, deadline=None)
    def test_threshold_bounded_by_max_expansion_exponent(self, case, k):
        # The estimator assumes term independence, so its exponents can
        # exceed any single document's true cosine similarity — the bound
        # is sum(u_i * mw_i), not 1.
        fleet, query = case
        u = query.normalized_weights()
        bound = 0.0
        for rep in fleet.values():
            total = sum(
                weight * (rep.get(term).max_weight if rep.get(term) else 0.0)
                for term, weight in zip(query.terms, u)
            )
            bound = max(bound, total)
        threshold = threshold_for_k(query, fleet, k)
        assert 0.0 <= threshold <= bound + 1e-6

    @given(fleets())
    @settings(max_examples=80, deadline=None)
    def test_threshold_antitone_in_k(self, case):
        fleet, query = case
        previous = float("inf")
        for k in (1, 5, 20):
            threshold = threshold_for_k(query, fleet, k)
            assert threshold <= previous + 1e-12
            previous = threshold

    @given(fleets(), st.integers(min_value=1, max_value=30))
    @settings(max_examples=80, deadline=None)
    def test_quota_zero_for_engines_without_terms(self, case, k):
        fleet, query = case
        quotas = allocate_documents(query, fleet, k)
        for name, rep in fleet.items():
            if not any(rep.get(t) for t in query.terms):
                assert quotas[name] == 0
