"""Property-based tests for the serving wire schema.

The wire contract is *exactness*: anything serialized, pushed through a
real ``json.dumps``/``json.loads`` cycle (what HTTP transports), and
deserialized must come back ``==`` — and estimates computed from a
decoded representative must be byte-identical to estimates from the
original.  The quantized wire form must decode to exactly what
:func:`~repro.representatives.quantized.quantize_representative` builds
locally, so a broker can hold either without changing any answer.
"""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.core import SubrangeEstimator
from repro.corpus import Query
from repro.engine import SearchHit
from repro.representatives import DatabaseRepresentative, TermStats
from repro.representatives.quantized import quantize_representative
from repro.serving import (
    decode_hits,
    encode_hits,
    query_from_wire,
    query_to_wire,
    representative_from_wire,
    representative_to_wire,
)

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
positive = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)
unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
nonneg = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)

terms_st = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1,
        max_size=8,
    ),
    min_size=1,
    max_size=6,
    unique=True,
)


@st.composite
def queries(draw):
    terms = draw(terms_st)
    weights = [draw(positive) for __ in terms]
    return Query(terms=tuple(terms), weights=tuple(weights))


@st.composite
def representatives(draw):
    terms = draw(st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=8,
        ),
        min_size=0,
        max_size=8,
        unique=True,
    ))
    with_max = draw(st.booleans())
    stats = {}
    for term in terms:
        stats[term] = TermStats(
            probability=draw(unit),
            mean=draw(nonneg),
            std=draw(nonneg),
            max_weight=draw(nonneg) if with_max else None,
        )
    return DatabaseRepresentative(
        name=draw(st.text(min_size=1, max_size=12)),
        n_documents=draw(st.integers(min_value=0, max_value=10**9)),
        term_stats=stats,
    )


@st.composite
def hit_lists(draw):
    n = draw(st.integers(min_value=0, max_value=10))
    return [
        SearchHit(
            similarity=draw(finite),
            doc_id=draw(st.text(min_size=1, max_size=10)),
            engine=draw(st.none() | st.text(min_size=1, max_size=10)),
        )
        for __ in range(n)
    ]


def through_json(payload):
    return json.loads(json.dumps(payload))


@given(queries())
def test_query_roundtrip_exact(query):
    assert query_from_wire(through_json(query_to_wire(query))) == query


@given(hit_lists())
def test_hits_roundtrip_exact(hits):
    assert list(decode_hits(through_json(encode_hits(hits)))) == hits


@given(representatives())
def test_plain_representative_roundtrip_exact(representative):
    wire = through_json(representative_to_wire(representative))
    assert representative_from_wire(wire) == representative


@given(representatives(), st.sampled_from([7, 256, 300]))
def test_quantized_wire_equals_local_quantization(representative, levels):
    wire = through_json(representative_to_wire(representative, quantize=levels))
    decoded = representative_from_wire(wire)
    assert decoded == quantize_representative(representative, levels=levels)


@given(representatives(), st.floats(min_value=0.0, max_value=2.0))
def test_estimates_survive_the_wire_byte_for_byte(representative, threshold):
    terms = [t for t, __ in representative.items()][:4]
    if not terms:
        return
    query = Query(
        terms=tuple(terms), weights=tuple(1.0 for __ in terms)
    )
    estimator = SubrangeEstimator()
    local = estimator.estimate(query, representative, threshold)
    wire = through_json(representative_to_wire(representative))
    remote = estimator.estimate(
        query, representative_from_wire(wire), threshold
    )
    assert remote == local
