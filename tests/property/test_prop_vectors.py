"""Property-based tests for sparse vectors and similarity."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vsm import SparseVector, cosine_similarity


@st.composite
def sparse_vectors(draw, max_dim=40):
    mapping = draw(
        st.dictionaries(
            st.integers(min_value=0, max_value=max_dim),
            st.floats(min_value=0.0, max_value=100.0),
            max_size=10,
        )
    )
    return SparseVector.from_mapping(mapping)


class TestVectorAlgebra:
    @given(sparse_vectors(), sparse_vectors())
    @settings(max_examples=200, deadline=None)
    def test_dot_symmetry(self, a, b):
        assert a.dot(b) == b.dot(a)

    @given(sparse_vectors(), sparse_vectors())
    @settings(max_examples=200, deadline=None)
    def test_cauchy_schwarz(self, a, b):
        assert abs(a.dot(b)) <= a.norm() * b.norm() * (1 + 1e-9) + 1e-12

    @given(sparse_vectors())
    @settings(max_examples=200, deadline=None)
    def test_dot_with_self_is_norm_squared(self, a):
        assert a.dot(a) == np.float64(a.norm() ** 2).item() or \
            math.isclose(a.dot(a), a.norm() ** 2, rel_tol=1e-9, abs_tol=1e-12)

    @given(sparse_vectors())
    @settings(max_examples=200, deadline=None)
    def test_normalized_has_unit_norm_or_is_zero(self, a):
        n = a.normalized().norm()
        assert n == 0.0 or math.isclose(n, 1.0, rel_tol=1e-9)

    @given(sparse_vectors(), st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=100, deadline=None)
    def test_scaling_scales_norm(self, a, factor):
        assert math.isclose(
            a.scaled(factor).norm(), a.norm() * factor, rel_tol=1e-9, abs_tol=1e-12
        )

    @given(sparse_vectors())
    @settings(max_examples=100, deadline=None)
    def test_mapping_roundtrip(self, a):
        assert SparseVector.from_mapping(a.to_mapping()) == a


class TestCosineProperties:
    @given(sparse_vectors(), sparse_vectors())
    @settings(max_examples=200, deadline=None)
    def test_cosine_in_unit_interval_for_nonnegative(self, a, b):
        sim = cosine_similarity(a, b)
        assert -1e-9 <= sim <= 1.0 + 1e-9

    @given(sparse_vectors(), st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_cosine_scale_invariant(self, a, factor):
        if a.norm() == 0.0:  # empty, or subnormal weights underflowing
            return
        b = a.scaled(factor)
        assert math.isclose(cosine_similarity(a, b), 1.0, rel_tol=1e-9)
