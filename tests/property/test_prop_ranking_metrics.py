"""Property-based tests for the harness ranking metrics.

The conventions pinned in :mod:`repro.evaluation.harness.ranking` —
bounds, permutation invariance, tie handling, perfect-ranking == 1 —
must hold for arbitrary name sets and score assignments, not just the
hand-picked cases in the unit tests.
"""

import math
import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.evaluation.harness import (
    kendall_tau_b,
    mrr,
    ndcg,
    reciprocal_rank,
    set_f1,
    set_precision,
    set_recall,
)

names = st.sets(
    st.text(alphabet="abcdefgh", min_size=1, max_size=3), min_size=1, max_size=8
)
scores = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def scored_names(draw, min_size=1):
    """A dict name -> score over a random small name set."""
    keys = draw(
        st.sets(
            st.text(alphabet="abcdefgh", min_size=1, max_size=3),
            min_size=min_size,
            max_size=8,
        )
    )
    return {k: draw(scores) for k in sorted(keys)}


@st.composite
def two_scorings(draw):
    """Two scorings over the same names."""
    a = draw(scored_names(min_size=2))
    b = {k: draw(scores) for k in a}
    return a, b


def shuffled(seq, seed):
    out = list(seq)
    random.Random(seed).shuffle(out)
    return out


class TestSetMetricProperties:
    @given(names, names)
    @settings(max_examples=200, deadline=None)
    def test_bounds(self, selected, truth):
        for metric in (set_precision, set_recall, set_f1):
            assert 0.0 <= metric(selected, truth) <= 1.0

    @given(names)
    @settings(max_examples=100, deadline=None)
    def test_perfect_selection_scores_one(self, truth):
        assert set_precision(truth, truth) == 1.0
        assert set_recall(truth, truth) == 1.0
        assert set_f1(truth, truth) == 1.0

    @given(names, names)
    @settings(max_examples=200, deadline=None)
    def test_precision_recall_duality(self, selected, truth):
        assert set_precision(selected, truth) == set_recall(truth, selected)

    @given(names, names)
    @settings(max_examples=200, deadline=None)
    def test_f1_between_min_and_max(self, selected, truth):
        p = set_precision(selected, truth)
        r = set_recall(selected, truth)
        f1 = set_f1(selected, truth)
        assert min(p, r) - 1e-12 <= f1 <= max(p, r) + 1e-12


class TestReciprocalRankProperties:
    @given(scored_names(min_size=1), st.integers(0, 2**16))
    @settings(max_examples=200, deadline=None)
    def test_bounds_and_membership(self, gains, seed):
        ranking = shuffled(gains, seed)
        relevant = {n for n in gains if gains[n] >= 50.0}
        rr = reciprocal_rank(ranking, relevant)
        if relevant:
            assert rr is not None and 0.0 < rr <= 1.0
        else:
            assert rr is None

    @given(scored_names(min_size=2), st.integers(0, 2**16))
    @settings(max_examples=200, deadline=None)
    def test_relevant_first_gives_one(self, gains, seed):
        ranking = shuffled(gains, seed)
        assert reciprocal_rank(ranking, {ranking[0]}) == 1.0

    @given(
        st.lists(scored_names(min_size=1), min_size=1, max_size=5),
        st.integers(0, 2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_mrr_bounds(self, gain_rows, seed):
        rankings = [shuffled(g, seed + i) for i, g in enumerate(gain_rows)]
        relevants = [{n for n in g if g[n] > 0.0} for g in gain_rows]
        value = mrr(rankings, relevants)
        if any(relevants):
            assert value is not None and 0.0 < value <= 1.0
        else:
            assert value is None


class TestNdcgProperties:
    @given(scored_names(min_size=1), st.integers(0, 2**16))
    @settings(max_examples=200, deadline=None)
    def test_bounds(self, gains, seed):
        ranking = shuffled(gains, seed)
        assert 0.0 <= ndcg(ranking, gains) <= 1.0 + 1e-12

    @given(scored_names(min_size=1))
    @settings(max_examples=200, deadline=None)
    def test_perfect_ranking_scores_one(self, gains):
        ideal = sorted(gains, key=lambda n: -gains[n])
        assert math.isclose(ndcg(ideal, gains), 1.0, rel_tol=1e-12)

    @given(scored_names(min_size=2), st.integers(0, 2**16))
    @settings(max_examples=200, deadline=None)
    def test_no_permutation_beats_ideal(self, gains, seed):
        ideal = sorted(gains, key=lambda n: -gains[n])
        assert ndcg(shuffled(gains, seed), gains) <= ndcg(ideal, gains) + 1e-12

    @given(scored_names(min_size=1), st.integers(0, 2**16))
    @settings(max_examples=100, deadline=None)
    def test_constant_gains_make_every_ranking_perfect(self, gains, seed):
        constant = {n: 2.5 for n in gains}
        assert math.isclose(
            ndcg(shuffled(constant, seed), constant), 1.0, rel_tol=1e-12
        )


class TestKendallTauProperties:
    @given(two_scorings())
    @settings(max_examples=200, deadline=None)
    def test_bounds(self, pair):
        a, b = pair
        assert -1.0 - 1e-12 <= kendall_tau_b(a, b) <= 1.0 + 1e-12

    @given(two_scorings())
    @settings(max_examples=200, deadline=None)
    def test_symmetry(self, pair):
        a, b = pair
        assert kendall_tau_b(a, b) == kendall_tau_b(b, a)

    @given(scored_names(min_size=2))
    @settings(max_examples=200, deadline=None)
    def test_self_correlation_is_one_unless_all_tied(self, a):
        values = set(a.values())
        tau = kendall_tau_b(a, dict(a))
        if len(values) == 1:
            assert tau == 0.0  # all tied: undefined, pinned to 0
        else:
            assert math.isclose(tau, 1.0, rel_tol=1e-12)

    @given(scored_names(min_size=2))
    @settings(max_examples=200, deadline=None)
    def test_negation_flips_sign(self, a):
        assume(len(set(a.values())) > 1)
        b = {k: -v for k, v in a.items()}
        assert math.isclose(
            kendall_tau_b(a, b), -kendall_tau_b(a, a), rel_tol=1e-12
        )

    @given(two_scorings(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=200, deadline=None)
    def test_invariant_under_positive_scaling(self, pair, scale):
        a, b = pair
        scaled = {k: v * scale for k, v in b.items()}
        # Scaling can merge distinct scores only through float rounding;
        # skip those.
        assume(
            len(set(scaled.values())) == len(set(b.values()))
            and all(
                (b[x] > b[y]) == (scaled[x] > scaled[y])
                for x in b
                for y in b
                if b[x] != b[y]
            )
        )
        assert math.isclose(
            kendall_tau_b(a, b), kendall_tau_b(a, scaled),
            rel_tol=1e-9, abs_tol=1e-9,
        )

    @given(scored_names(min_size=2), st.integers(0, 2**16))
    @settings(max_examples=100, deadline=None)
    def test_all_tied_side_pins_to_zero(self, a, seed):
        tied = {k: 1.0 for k in a}
        assert kendall_tau_b(a, tied) == 0.0
        assert kendall_tau_b(tied, a) == 0.0
