"""Property-based tests for the columnar fleet store and vectorized path.

Two invariants the columnar subsystem promises:

* **Lossless round-trip** — ``ColumnarRepresentative`` (and the fleet
  store, and the ``.npz`` binary form) reproduce the dict-of-dataclasses
  representative exactly, float for float, including triplet-mode
  ``max_weight=None``.
* **Bit-identity** — :func:`repro.core.fleet_usefulness_grid` returns the
  *same bits* as the scalar estimators for every engine, across all five
  vectorized estimator families, quadruplet and triplet representatives,
  disjoint vocabularies, and query terms unknown to every engine.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BasicEstimator,
    BinaryIndependenceEstimator,
    GlossDisjointEstimator,
    GlossHighCorrelationEstimator,
    SubrangeEstimator,
    fleet_usefulness_grid,
    supports_fleet,
)
from repro.corpus import Query
from repro.representatives import (
    ColumnarRepresentative,
    DatabaseRepresentative,
    FleetRepresentativeStore,
    SubrangeScheme,
    TermStats,
)

# A deliberately small pool: collisions between engines are common, but
# each engine samples its own subset so disjoint vocabularies also occur.
POOL = tuple(f"term{i}" for i in range(8))
UNKNOWN = ("ghost0", "ghost1")

_WEIGHTS = st.floats(min_value=0.01, max_value=1.0)


@st.composite
def representatives(draw):
    n = draw(st.integers(min_value=0, max_value=500))
    triplet = draw(st.booleans())
    stats = {}
    for term in draw(st.permutations(POOL)):
        if not draw(st.booleans()):
            continue
        mean = draw(_WEIGHTS)
        stats[term] = TermStats(
            probability=draw(st.floats(min_value=0.001, max_value=1.0)),
            mean=mean,
            std=draw(st.floats(min_value=0.0, max_value=0.4)),
            max_weight=None
            if triplet
            else mean + draw(st.floats(min_value=0.0, max_value=0.5)),
        )
    return DatabaseRepresentative(
        f"r{draw(st.integers(0, 10_000))}", n_documents=n, term_stats=stats
    )


@st.composite
def queries(draw):
    pool = POOL + UNKNOWN
    terms = tuple(
        sorted(draw(st.sets(st.sampled_from(pool), min_size=1, max_size=4)))
    )
    weights = tuple(draw(_WEIGHTS) for __ in terms)
    return Query(terms=terms, weights=weights)


@st.composite
def estimators(draw):
    family = draw(
        st.sampled_from(
            ("subrange", "basic", "binary", "gloss-hc", "gloss-dj")
        )
    )
    if family == "subrange":
        scheme = SubrangeScheme.equal(
            draw(st.integers(2, 6)), include_max=draw(st.booleans())
        )
        return SubrangeEstimator(
            scheme=scheme, use_stored_max=draw(st.booleans())
        )
    if family == "basic":
        return BasicEstimator()
    if family == "binary":
        return BinaryIndependenceEstimator(
            global_weight=draw(st.one_of(st.none(), _WEIGHTS))
        )
    if family == "gloss-hc":
        return GlossHighCorrelationEstimator()
    return GlossDisjointEstimator()


def _exact(a, b) -> bool:
    if a is None or b is None:
        return a is b
    return float(a).hex() == float(b).hex()


def _assert_same_rep(original, restored) -> None:
    assert restored.name == original.name
    assert restored.n_documents == original.n_documents
    assert sorted(t for t, __ in restored.items()) == sorted(
        t for t, __ in original.items()
    )
    for term, stats in original.items():
        back = restored.get(term)
        assert _exact(back.probability, stats.probability)
        assert _exact(back.mean, stats.mean)
        assert _exact(back.std, stats.std)
        assert _exact(back.max_weight, stats.max_weight)


class TestRoundTrip:
    @given(representatives())
    @settings(max_examples=150, deadline=None)
    def test_columnar_round_trip_lossless(self, rep):
        columnar = ColumnarRepresentative.from_representative(rep)
        assert len(columnar) == len(rep)
        _assert_same_rep(rep, columnar.to_representative())

    @given(representatives())
    @settings(max_examples=60, deadline=None)
    def test_npz_round_trip_lossless(self, rep):
        buffer = io.BytesIO()
        ColumnarRepresentative.from_representative(rep).save_npz(buffer)
        buffer.seek(0)
        restored = ColumnarRepresentative.load_npz(buffer)
        _assert_same_rep(rep, restored.to_representative())

    @given(st.lists(representatives(), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_fleet_store_materializes_exactly(self, reps):
        store = FleetRepresentativeStore()
        named = {}
        for i, rep in enumerate(reps):
            rep = DatabaseRepresentative(
                f"e{i}", rep.n_documents, dict(rep.items())
            )
            named[rep.name] = rep
            store.add(rep)
        assert store.engine_names == sorted(named, key=lambda n: int(n[1:]))
        for name, rep in named.items():
            _assert_same_rep(rep, store.materialize(name))


class TestBitIdentity:
    @given(
        st.lists(representatives(), min_size=1, max_size=4),
        queries(),
        estimators(),
        st.lists(
            st.floats(min_value=0.0, max_value=1.5), min_size=1, max_size=3
        ),
    )
    @settings(max_examples=250, deadline=None)
    def test_grid_matches_scalar_bitwise(self, reps, query, estimator, thresholds):
        assert supports_fleet(estimator)
        store = FleetRepresentativeStore()
        named = []
        for i, rep in enumerate(reps):
            rep = DatabaseRepresentative(
                f"e{i}", rep.n_documents, dict(rep.items())
            )
            named.append(rep)
            store.add(rep)
        grid = fleet_usefulness_grid(estimator, store, query, thresholds)
        assert grid is not None and len(grid) == len(thresholds)
        for row, threshold in zip(grid, thresholds):
            assert len(row) == len(named)
            for got, rep in zip(row, named):
                want = estimator.estimate(query, rep, threshold)
                assert _exact(got.nodoc, want.nodoc), (
                    f"nodoc bits diverged for {rep.name} at {threshold}: "
                    f"{got.nodoc!r} != {want.nodoc!r}"
                )
                assert _exact(got.avgsim, want.avgsim), (
                    f"avgsim bits diverged for {rep.name} at {threshold}: "
                    f"{got.avgsim!r} != {want.avgsim!r}"
                )
