"""Property-based bit-exactness wall for the batched polynomial product.

:class:`~repro.core.genfunc.BatchedGenFunc` promises *bit-identity per
row* with the scalar :class:`~repro.core.genfunc.GenFunc` pipeline — not
"close", the same IEEE-754 bits.  This suite drives the batched kernel
through randomly shaped products and checks every row against the scalar
``GenFunc.product`` run over exactly that row's factors:

* ragged factor counts — each term multiplies an arbitrary subset of
  rows, with per-row factor widths from singleton points up;
* degenerate shapes — zero rows, zero terms, rows a prune annihilated to
  the empty polynomial, factors of width 1;
* extreme coefficients near ``2**53``, where one misplaced addition in
  the merge order loses a unit in the last place;
* every expansion-control combination — ``decimals`` (negative,
  zero, default, high), ``prune_floor`` on/off, ``max_terms`` caps that
  trigger the budget loop and its stable keep-heaviest rescue;
* the tail read-out — ``tail_profile`` over thresholds including
  ``-inf``, ``+inf``, ``NaN``, and exact exponent hits.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.genfunc import BatchedGenFunc, GenFunc

# Exponents stay modest so no (exponent * 10**decimals) rounding overflow
# occurs — overflow demotion is covered by the explicit tests below.
_EXPONENTS = st.one_of(
    st.sampled_from(
        [0.0, -0.0, 0.1, 0.25, 1.0 / 3.0, 1e-9, 5.5, 123.456789, -7.125]
    ),
    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
)

# Coefficients include values at the 2**53 integer boundary: adding 1.0 to
# 2**53 is a no-op in float64, so any deviation from the scalar merge's
# addition sequence shows up as a last-place difference here.
_COEFFS = st.one_of(
    st.sampled_from(
        [
            0.0,
            1.0,
            0.5,
            1e-300,
            1e-12,
            12345.6789,
            float(2**53 - 1),
            float(2**53),
            float(2**53 + 2),
            1e16,
        ]
    ),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)

_THRESHOLDS = [float("-inf"), 0.0, 0.1, 0.30000000000000004, 5.5, float("inf"), float("nan")]


@st.composite
def product_cases(draw):
    n_rows = draw(st.integers(min_value=0, max_value=5))
    n_terms = draw(st.integers(min_value=0, max_value=4))
    decimals = draw(st.sampled_from([-2, 0, 3, 8, 15]))
    prune_floor = draw(st.sampled_from([0.0, 1e-12, 1e-3, 0.2]))
    max_terms = draw(st.sampled_from([None, 1, 2, 4]))
    terms = []
    for __ in range(n_terms):
        rows = [r for r in range(n_rows) if draw(st.booleans())]
        if not rows:
            continue
        flen = [draw(st.integers(min_value=1, max_value=5)) for __ in rows]
        width = max(flen)
        fexp = np.zeros((len(rows), width))
        fcoef = np.zeros((len(rows), width))
        for i, k in enumerate(flen):
            for j in range(k):
                fexp[i, j] = draw(_EXPONENTS)
                fcoef[i, j] = draw(_COEFFS)
            # Poison the padding: the kernel must never read past flen.
            fexp[i, k:] = draw(st.sampled_from([0.0, 99.0, -3.5]))
            fcoef[i, k:] = draw(st.sampled_from([0.0, 7.0]))
        terms.append(
            (
                np.asarray(rows, dtype=np.intp),
                fexp,
                fcoef,
                np.asarray(flen, dtype=np.int64),
            )
        )
    return n_rows, terms, decimals, prune_floor, max_terms


def scalar_reference(n_rows, terms, decimals, prune_floor, max_terms):
    """Row-by-row scalar ``GenFunc.product`` over the same factors."""
    out = []
    for r in range(n_rows):
        polys = []
        for rows, fexp, fcoef, flen in terms:
            hits = np.nonzero(rows == r)[0]
            for i in hits.tolist():
                k = int(flen[i])
                polys.append((fexp[i, :k].copy(), fcoef[i, :k].copy()))
        out.append(
            GenFunc.product(
                polys,
                decimals=decimals,
                prune_floor=prune_floor,
                max_terms=max_terms,
            )
        )
    return out


def assert_rows_bit_identical(batch, scalars):
    for r, want in enumerate(scalars):
        got = batch.row(r)
        assert got.exponents.tobytes() == want.exponents.tobytes(), (
            f"row {r} exponents diverged: {got.exponents!r} vs "
            f"{want.exponents!r}"
        )
        assert got.coeffs.tobytes() == want.coeffs.tobytes(), (
            f"row {r} coefficients diverged: {got.coeffs!r} vs "
            f"{want.coeffs!r}"
        )
        assert float(got.pruned_mass).hex() == float(want.pruned_mass).hex(), (
            f"row {r} pruned mass diverged: {got.pruned_mass!r} vs "
            f"{want.pruned_mass!r}"
        )


class TestBatchedProductBitIdentity:
    @settings(max_examples=150, deadline=None)
    @given(product_cases())
    def test_product_matches_scalar_bit_for_bit(self, case):
        n_rows, terms, decimals, prune_floor, max_terms = case
        batch = BatchedGenFunc.product(
            n_rows,
            terms,
            decimals=decimals,
            prune_floor=prune_floor,
            max_terms=max_terms,
        )
        assert_rows_bit_identical(
            batch,
            scalar_reference(n_rows, terms, decimals, prune_floor, max_terms),
        )

    @settings(max_examples=100, deadline=None)
    @given(product_cases())
    def test_tail_profile_matches_scalar_bit_for_bit(self, case):
        n_rows, terms, decimals, prune_floor, max_terms = case
        batch = BatchedGenFunc.product(
            n_rows,
            terms,
            decimals=decimals,
            prune_floor=prune_floor,
            max_terms=max_terms,
        )
        mass, moment = batch.tail_profile(_THRESHOLDS)
        assert mass.shape == moment.shape == (len(_THRESHOLDS), n_rows)
        scalars = scalar_reference(
            n_rows, terms, decimals, prune_floor, max_terms
        )
        for r, want in enumerate(scalars):
            want_mass, want_moment = want.tail_profile(_THRESHOLDS)
            assert mass[:, r].tobytes() == want_mass.tobytes()
            assert moment[:, r].tobytes() == want_moment.tobytes()

    @settings(max_examples=60, deadline=None)
    @given(product_cases(), st.integers(min_value=1, max_value=3))
    def test_budget_rows_matches_scalar_budgeted(self, case, budget):
        n_rows, terms, decimals, prune_floor, __ = case
        batch = BatchedGenFunc.product(
            n_rows, terms, decimals=decimals, prune_floor=prune_floor
        )
        scalars = scalar_reference(n_rows, terms, decimals, prune_floor, None)
        batch.budget_rows(budget, floor_start=prune_floor)
        shrunk = [g.budgeted(budget, floor_start=prune_floor) for g in scalars]
        assert_rows_bit_identical(batch, shrunk)


class TestBatchedProductEdgeCases:
    def test_zero_rows_zero_terms(self):
        batch = BatchedGenFunc.product(0, [])
        assert batch.n_rows == 0
        mass, moment = batch.tail_profile([0.5])
        assert mass.shape == (1, 0) and moment.shape == (1, 0)

    def test_identity_rows_stay_one(self):
        batch = BatchedGenFunc.product(3, [])
        for r in range(3):
            row = batch.row(r)
            assert row.exponents.tolist() == [0.0]
            assert row.coeffs.tolist() == [1.0]

    def test_annihilated_row_survives_later_multiplies(self):
        # A prune that drops every term leaves the empty polynomial; the
        # scalar path keeps multiplying it (products of nothing stay
        # nothing) and so must the batch.
        rows = np.array([0])
        terms = [
            (rows, np.array([[1.0]]), np.array([[1e-6]]), np.array([1])),
            (rows, np.array([[2.0, 0.0]]), np.array([[0.5, 0.5]]), np.array([2])),
        ]
        batch = BatchedGenFunc.product(1, terms, prune_floor=1e-3)
        [want] = scalar_reference(1, terms, 8, 1e-3, None)
        assert_rows_bit_identical(batch, [want])
        assert batch.row(0).n_terms == 0

    def test_tail_moment_preserves_negative_zero(self):
        # A zero-coefficient term with a negative exponent contributes
        # -0.0 to the moment; the scalar suffix cumsum *copies* it as
        # its first reversed element.  The batched kernel pads rows, and
        # a +0.0 pad would flip the sign (-0.0 + 0.0 == +0.0) — while
        # the empty-tail sentinel must still read +0.0, not the sum of
        # -0.0 pads.  Both rows exercise one side of that trade.
        terms = [(
            np.array([0, 1]),
            np.array([[0.0, 0.1], [-1.0, 0.0]]),
            np.array([[0.0, 0.0], [0.0, 0.0]]),
            np.array([2, 1]),
        )]
        thresholds = [float("-inf"), 0.0, float("inf"), float("nan")]
        batch = BatchedGenFunc.product(2, terms, decimals=3)
        mass, moment = batch.tail_profile(thresholds)
        for r, want in enumerate(scalar_reference(2, terms, 3, 0.0, None)):
            want_mass, want_moment = want.tail_profile(thresholds)
            assert mass[:, r].tobytes() == want_mass.tobytes()
            assert moment[:, r].tobytes() == want_moment.tobytes()

    def test_near_2_53_coefficient_accumulation_order(self):
        # Three product entries share one rounded exponent; their
        # coefficients only sum to the scalar value when added in the
        # same sequence (2**53 + 1.0 truncates, order matters).
        rows = np.array([0, 1])
        fexp = np.tile(np.array([0.1, 0.1 + 1e-12, 0.1 - 1e-13]), (2, 1))
        fcoef = np.tile(np.array([float(2**53 - 1), 1.0, 1.0]), (2, 1))
        terms = [(rows, fexp, fcoef, np.array([3, 3]))]
        batch = BatchedGenFunc.product(2, terms, decimals=8)
        assert_rows_bit_identical(
            batch, scalar_reference(2, terms, 8, 0.0, None)
        )

    def test_rounding_overflow_raises_in_both_pipelines(self):
        # decimals=8 scales by 1e8; 1e303 * 1e8 overflows to inf, which
        # the scalar np.round tolerates but the batched kernel must
        # reject (the caller demotes those rows to scalar GenFunc).
        wide = BatchedGenFunc.product(
            8,
            [
                (
                    np.arange(8, dtype=np.intp),
                    np.tile(np.linspace(0.0, 3.0, 24), (8, 1)),
                    np.full((8, 24), 1.0 / 24.0),
                    np.full(8, 24, dtype=np.int64),
                )
            ],
        )
        bad_exp = np.full((8, 2), 1e303)
        bad_coef = np.full((8, 2), 0.5)
        with np.errstate(over="ignore"):
            with pytest.raises(ValueError, match="overflowed"):
                wide.multiply_rows(
                    np.arange(8, dtype=np.intp), bad_exp, bad_coef, decimals=8
                )
            narrow = BatchedGenFunc.ones(1)
            with pytest.raises(ValueError, match="overflowed"):
                narrow.multiply_rows(
                    np.array([0]), bad_exp[:1], bad_coef[:1], decimals=8
                )

    def test_nonfinite_factor_exponent_rejected(self):
        batch = BatchedGenFunc.ones(2)
        with pytest.raises(ValueError, match="finite"):
            batch.multiply_rows(
                np.array([0, 1]),
                np.array([[np.inf], [0.0]]),
                np.array([[1.0], [1.0]]),
            )

    def test_empty_factor_rejected(self):
        batch = BatchedGenFunc.ones(1)
        with pytest.raises(ValueError, match="non-empty"):
            batch.multiply_rows(
                np.array([0]),
                np.array([[1.0]]),
                np.array([[1.0]]),
                np.array([0]),
            )
