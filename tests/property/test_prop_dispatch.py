"""Property tests: the concurrent dispatch path and the estimate cache are
semantically invisible.

For random fleets and queries, ``search(workers=N)`` must return exactly
the hits, invoked set, and estimates of the serial path, and a cached
``estimate_all`` must equal an uncached one — concurrency and caching are
performance features, never semantic ones.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker

TERMS = [f"t{i}" for i in range(8)]
THRESHOLDS = (0.0, 0.1, 0.3, 0.5)


@st.composite
def fleets(draw):
    """2-4 engines, each with 1-5 short documents over a tiny vocabulary."""
    n_engines = draw(st.integers(min_value=2, max_value=4))
    fleet = []
    for i in range(n_engines):
        n_docs = draw(st.integers(min_value=1, max_value=5))
        docs = [
            draw(st.lists(st.sampled_from(TERMS), min_size=1, max_size=4))
            for _ in range(n_docs)
        ]
        fleet.append((f"e{i}", docs))
    return fleet


@st.composite
def queries(draw):
    terms = draw(
        st.lists(st.sampled_from(TERMS), min_size=1, max_size=3, unique=True)
    )
    weights = tuple(
        float(draw(st.integers(min_value=1, max_value=3))) for _ in terms
    )
    return Query(terms=tuple(terms), weights=weights)


def build_broker(fleet, **kwargs):
    broker = MetasearchBroker(**kwargs)
    for name, docs in fleet:
        broker.register(
            SearchEngine(
                Collection.from_documents(
                    name,
                    [Document(f"{name}-{i}", terms=t) for i, t in enumerate(docs)],
                )
            )
        )
    return broker


@given(fleet=fleets(), query=queries(), threshold=st.sampled_from(THRESHOLDS))
@settings(max_examples=25, deadline=None)
def test_concurrent_search_equals_serial(fleet, query, threshold):
    serial = build_broker(fleet, workers=1, cache_size=0)
    concurrent = build_broker(fleet, workers=4, cache_size=32)
    expected = serial.search(query, threshold)
    for _ in range(2):  # second pass exercises the warmed cache
        got = concurrent.search(query, threshold)
        assert got.hits == expected.hits
        assert got.invoked == expected.invoked
        assert got.estimates == expected.estimates
        assert not got.failures


@given(fleet=fleets(), query=queries(), threshold=st.sampled_from(THRESHOLDS))
@settings(max_examples=25, deadline=None)
def test_concurrent_broadcast_equals_serial(fleet, query, threshold):
    serial = build_broker(fleet, workers=1, cache_size=0)
    concurrent = build_broker(fleet, workers=8, cache_size=0)
    assert (
        concurrent.search_all(query, threshold).hits
        == serial.search_all(query, threshold).hits
    )


@given(fleet=fleets(), query=queries(), threshold=st.sampled_from(THRESHOLDS))
@settings(max_examples=25, deadline=None)
def test_cached_estimates_equal_uncached(fleet, query, threshold):
    uncached = build_broker(fleet, cache_size=0)
    cached = build_broker(fleet, cache_size=4)  # tiny, to force evictions
    expected = uncached.estimate_all(query, threshold)
    assert cached.estimate_all(query, threshold) == expected
    assert cached.estimate_all(query, threshold) == expected
