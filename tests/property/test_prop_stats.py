"""Property-based tests for the statistics substrate."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.stats import (
    OneByteQuantizer,
    normal_cdf,
    normal_quantile,
    percentile_sorted,
    truncated_normal_mean_above,
    truncated_normal_tail_mass,
)


class TestNormalProperties:
    @given(st.floats(min_value=1e-9, max_value=1 - 1e-9))
    @settings(max_examples=300, deadline=None)
    def test_quantile_cdf_inverse(self, p):
        assert math.isclose(normal_cdf(normal_quantile(p)), p,
                            rel_tol=1e-9, abs_tol=1e-12)

    @given(st.floats(min_value=-8.0, max_value=8.0))
    @settings(max_examples=300, deadline=None)
    def test_cdf_in_unit_interval(self, x):
        assert 0.0 <= normal_cdf(x) <= 1.0

    @given(st.floats(min_value=1e-6, max_value=0.5))
    @settings(max_examples=100, deadline=None)
    def test_quantile_antisymmetry(self, p):
        assert math.isclose(
            normal_quantile(p), -normal_quantile(1 - p), rel_tol=1e-7, abs_tol=1e-9
        )

    @given(
        st.floats(min_value=-5.0, max_value=5.0),
        st.floats(min_value=-2.0, max_value=2.0),
        st.floats(min_value=0.01, max_value=3.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_truncated_mean_at_least_cutoff_and_mean(self, cutoff, mean, std):
        conditional = truncated_normal_mean_above(cutoff, mean, std)
        assert conditional >= mean - 1e-9
        assert conditional >= min(cutoff, conditional) - 1e-9

    @given(
        st.floats(min_value=-5.0, max_value=5.0),
        st.floats(min_value=-2.0, max_value=2.0),
        st.floats(min_value=0.01, max_value=3.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_tail_mass_is_probability(self, cutoff, mean, std):
        mass = truncated_normal_tail_mass(cutoff, mean, std)
        assert 0.0 <= mass <= 1.0


class TestQuantizerProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                 max_size=200),
        st.integers(min_value=1, max_value=256),
    )
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_error_within_interval_width(self, values, levels):
        grid = OneByteQuantizer(levels=levels, low=0.0, high=1.0).fit(values)
        approx = grid.roundtrip(values)
        width = 1.0 / levels
        assert np.max(np.abs(approx - np.asarray(values))) <= width + 1e-12

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                    max_size=100))
    @settings(max_examples=150, deadline=None)
    def test_inferred_bounds_cover_data(self, values):
        grid = OneByteQuantizer().fit(values)
        codes = grid.encode(values)
        assert codes.min() >= 0
        assert codes.max() < grid.levels

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2,
                    max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_quantization_idempotent(self, values):
        grid = OneByteQuantizer(low=0.0, high=1.0).fit(values)
        once = grid.roundtrip(values)
        twice = grid.roundtrip(once)
        assert np.allclose(once, twice)


class TestPercentileProperties:
    @given(
        st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1,
                 max_size=100),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_percentile_within_data_range(self, values, pct):
        values = sorted(values)
        result = percentile_sorted(values, pct)
        assert values[0] - 1e-9 <= result <= values[-1] + 1e-9

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2,
                    max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_percentile_monotone(self, values):
        values = sorted(values)
        results = [percentile_sorted(values, p) for p in (0, 25, 50, 75, 100)]
        for a, b in zip(results, results[1:]):
            assert a <= b + 1e-9
