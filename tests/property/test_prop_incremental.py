"""Property-based tests for incremental representative maintenance."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.representatives import RepresentativeAccumulator, TermAccumulator

weights_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50
)


class TestTermAccumulatorProperties:
    @given(weights_lists)
    @settings(max_examples=200, deadline=None)
    def test_matches_numpy_moments(self, weights):
        acc = TermAccumulator()
        for weight in weights:
            acc.add(weight)
        arr = np.asarray(weights)
        stats = acc.to_stats(len(weights))
        assert math.isclose(stats.mean, arr.mean(), rel_tol=1e-9, abs_tol=1e-12)
        assert math.isclose(stats.std, arr.std(), rel_tol=1e-7, abs_tol=1e-9)
        assert stats.max_weight == arr.max()

    @given(weights_lists, weights_lists)
    @settings(max_examples=200, deadline=None)
    def test_merge_equals_concatenation(self, left, right):
        a = TermAccumulator()
        for weight in left:
            a.add(weight)
        b = TermAccumulator()
        for weight in right:
            b.add(weight)
        a.merge(b)

        c = TermAccumulator()
        for weight in left + right:
            c.add(weight)

        assert a.df == c.df
        assert math.isclose(a.mean, c.mean, rel_tol=1e-9, abs_tol=1e-12)
        assert math.isclose(a.m2, c.m2, rel_tol=1e-6, abs_tol=1e-9)
        assert a.max_weight == c.max_weight

    @given(weights_lists, weights_lists)
    @settings(max_examples=100, deadline=None)
    def test_merge_commutative(self, left, right):
        def build(ws):
            acc = TermAccumulator()
            for w in ws:
                acc.add(w)
            return acc

        ab = build(left)
        ab.merge(build(right))
        ba = build(right)
        ba.merge(build(left))
        assert ab.df == ba.df
        assert math.isclose(ab.mean, ba.mean, rel_tol=1e-9, abs_tol=1e-12)
        assert math.isclose(ab.m2, ba.m2, rel_tol=1e-6, abs_tol=1e-9)

    @given(weights_lists)
    @settings(max_examples=100, deadline=None)
    def test_merge_with_empty_is_identity(self, weights):
        acc = TermAccumulator()
        for weight in weights:
            acc.add(weight)
        before = (acc.df, acc.mean, acc.m2, acc.max_weight)
        acc.merge(TermAccumulator())
        assert (acc.df, acc.mean, acc.m2, acc.max_weight) == before

    @given(weights_lists)
    @settings(max_examples=100, deadline=None)
    def test_variance_nonnegative(self, weights):
        acc = TermAccumulator()
        for weight in weights:
            acc.add(weight)
        assert acc.to_stats(len(weights)).std >= 0.0


@st.composite
def document_streams(draw):
    n_terms = draw(st.integers(min_value=1, max_value=6))
    terms = [f"t{i}" for i in range(n_terms)]
    n_docs = draw(st.integers(min_value=1, max_value=15))
    docs = []
    for __ in range(n_docs):
        doc = {}
        for term in terms:
            if draw(st.booleans()):
                doc[term] = draw(st.floats(min_value=0.01, max_value=1.0))
        docs.append(doc)
    return docs


class TestRepresentativeAccumulatorProperties:
    @given(document_streams(), st.integers(min_value=0, max_value=14))
    @settings(max_examples=100, deadline=None)
    def test_split_merge_equals_whole(self, docs, split_raw):
        split = min(split_raw, len(docs))
        whole = RepresentativeAccumulator("whole")
        for doc in docs:
            whole.add_document(doc)

        left = RepresentativeAccumulator("left")
        for doc in docs[:split]:
            left.add_document(doc)
        right = RepresentativeAccumulator("right")
        for doc in docs[split:]:
            right.add_document(doc)
        merged = RepresentativeAccumulator.merged("merged", [left, right])

        assert merged.n_documents == whole.n_documents
        assert merged.n_terms == whole.n_terms
        rep_whole = whole.to_representative()
        rep_merged = merged.to_representative()
        for term, stats in rep_whole.items():
            other = rep_merged.get(term)
            assert math.isclose(
                other.probability, stats.probability, rel_tol=1e-12
            )
            assert math.isclose(other.mean, stats.mean, rel_tol=1e-9)
            assert math.isclose(
                other.std, stats.std, rel_tol=1e-6, abs_tol=1e-9
            )
            assert other.max_weight == stats.max_weight
