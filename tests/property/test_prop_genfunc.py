"""Property-based tests for the generating-function engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GenFunc

# A per-term probability polynomial: (exponents, coeffs) with mass <= 1 plus
# the complementary zero-exponent term — exactly what estimators emit.
probabilities = st.lists(
    st.floats(min_value=1e-6, max_value=1.0),
    min_size=1,
    max_size=4,
)
weights = st.lists(
    st.floats(min_value=0.0, max_value=1.0),
    min_size=1,
    max_size=4,
)


@st.composite
def term_polynomials(draw):
    k = draw(st.integers(min_value=1, max_value=4))
    exps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=k, max_size=k,
        )
    )
    raw = draw(
        st.lists(
            st.floats(min_value=1e-6, max_value=1.0),
            min_size=k, max_size=k,
        )
    )
    total = sum(raw)
    p = draw(st.floats(min_value=0.0, max_value=1.0))
    coeffs = [p * r / total for r in raw] + [1.0 - p]
    return (np.array(exps + [0.0]), np.array(coeffs))


@st.composite
def polynomial_products(draw):
    n_terms = draw(st.integers(min_value=1, max_value=5))
    return [draw(term_polynomials()) for __ in range(n_terms)]


class TestMassConservation:
    @given(polynomial_products())
    @settings(max_examples=150, deadline=None)
    def test_total_mass_is_one(self, polys):
        g = GenFunc.product(polys)
        assert g.total_mass() + g.pruned_mass == np.float64(1.0).item() or \
            abs(g.total_mass() + g.pruned_mass - 1.0) < 1e-9

    @given(polynomial_products(), st.floats(min_value=0.0, max_value=1e-9))
    @settings(max_examples=60, deadline=None)
    def test_pruning_accounts_for_all_mass(self, polys, floor):
        g = GenFunc.product(polys, prune_floor=floor)
        assert abs(g.total_mass() + g.pruned_mass - 1.0) < 1e-9


class TestReadoutInvariants:
    @given(polynomial_products(), st.floats(min_value=-0.1, max_value=6.1))
    @settings(max_examples=150, deadline=None)
    def test_nodoc_within_bounds(self, polys, threshold):
        g = GenFunc.product(polys)
        nodoc = g.est_nodoc(threshold, 100)
        assert -1e-9 <= nodoc <= 100 + 1e-6

    @given(polynomial_products())
    @settings(max_examples=100, deadline=None)
    def test_nodoc_monotone_nonincreasing_in_threshold(self, polys):
        g = GenFunc.product(polys)
        thresholds = np.linspace(0.0, 6.0, 13)
        values = [g.est_nodoc(t, 50) for t in thresholds]
        for a, b in zip(values, values[1:]):
            assert a >= b - 1e-9

    @given(polynomial_products(), st.floats(min_value=0.0, max_value=6.0))
    @settings(max_examples=100, deadline=None)
    def test_avgsim_exceeds_threshold_when_positive(self, polys, threshold):
        g = GenFunc.product(polys)
        avgsim = g.est_avgsim(threshold)
        if g.tail_mass(threshold) > 0:
            assert avgsim > threshold
        else:
            assert avgsim == 0.0

    @given(polynomial_products())
    @settings(max_examples=100, deadline=None)
    def test_exponents_sorted_unique(self, polys):
        g = GenFunc.product(polys)
        assert np.all(np.diff(g.exponents) > 0)

    @given(polynomial_products())
    @settings(max_examples=100, deadline=None)
    def test_coeffs_nonnegative(self, polys):
        g = GenFunc.product(polys)
        assert np.all(g.coeffs >= 0)


class TestAlgebraicProperties:
    @given(polynomial_products())
    @settings(max_examples=60, deadline=None)
    def test_product_order_invariance(self, polys):
        forward = GenFunc.product(polys)
        backward = GenFunc.product(list(reversed(polys)))
        assert forward.tail_mass(0.25) == np.float64(
            backward.tail_mass(0.25)
        ).item() or abs(forward.tail_mass(0.25) - backward.tail_mass(0.25)) < 1e-9

    @given(term_polynomials())
    @settings(max_examples=100, deadline=None)
    def test_identity_multiplication(self, poly):
        exps, coeffs = poly
        direct = GenFunc.from_terms(np.round(exps, 8), coeffs)
        via_product = GenFunc.one().multiplied(exps, coeffs)
        assert direct.n_terms == via_product.n_terms
        assert np.allclose(direct.coeffs, via_product.coeffs)
