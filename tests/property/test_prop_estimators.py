"""Property-based tests for the usefulness estimators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BasicEstimator,
    GlossDisjointEstimator,
    GlossHighCorrelationEstimator,
    PreviousMethodEstimator,
    SubrangeEstimator,
)
from repro.corpus import Query
from repro.representatives import DatabaseRepresentative, TermStats

ALL_ESTIMATORS = [
    BasicEstimator(),
    SubrangeEstimator(),
    SubrangeEstimator(use_stored_max=False),
    PreviousMethodEstimator(),
    GlossHighCorrelationEstimator(),
    GlossDisjointEstimator(),
]


@st.composite
def representatives(draw):
    n = draw(st.integers(min_value=1, max_value=500))
    n_terms = draw(st.integers(min_value=1, max_value=5))
    stats = {}
    for i in range(n_terms):
        mean = draw(st.floats(min_value=0.01, max_value=0.9))
        std = draw(st.floats(min_value=0.0, max_value=0.3))
        mw = draw(st.floats(min_value=0.0, max_value=0.5))
        stats[f"t{i}"] = TermStats(
            probability=draw(st.floats(min_value=1e-4, max_value=1.0)),
            mean=mean,
            std=std,
            max_weight=min(mean + mw, 1.0),
        )
    return DatabaseRepresentative("hyp", n_documents=n, term_stats=stats)


@st.composite
def queries_for(draw, representative):
    terms = [t for t, __ in representative.items()]
    k = draw(st.integers(min_value=1, max_value=len(terms)))
    chosen = terms[:k]
    weights = [
        draw(st.floats(min_value=0.5, max_value=3.0)) for __ in chosen
    ]
    return Query(terms=tuple(chosen), weights=tuple(weights))


@st.composite
def estimation_cases(draw):
    rep = draw(representatives())
    query = draw(queries_for(rep))
    threshold = draw(st.floats(min_value=0.0, max_value=1.0))
    return rep, query, threshold


class TestUniversalInvariants:
    @given(estimation_cases())
    @settings(max_examples=120, deadline=None)
    def test_nodoc_bounded(self, case):
        rep, query, threshold = case
        # The disjoint assumption double-counts co-occurring documents, so
        # its bound is the sum of the dfs, not n — inherent to the (wrong)
        # assumption, faithfully reproduced.
        df_sum = sum(rep.document_frequency(t) for t in query.terms)
        for estimator in ALL_ESTIMATORS:
            estimate = estimator.estimate(query, rep, threshold)
            bound = (
                df_sum
                if isinstance(estimator, GlossDisjointEstimator)
                else rep.n_documents
            )
            assert -1e-9 <= estimate.nodoc <= bound + 1e-6, estimator

    @given(estimation_cases())
    @settings(max_examples=120, deadline=None)
    def test_avgsim_nonnegative(self, case):
        rep, query, threshold = case
        for estimator in ALL_ESTIMATORS:
            estimate = estimator.estimate(query, rep, threshold)
            assert estimate.avgsim >= 0.0, estimator

    @given(estimation_cases())
    @settings(max_examples=80, deadline=None)
    def test_nodoc_monotone_in_threshold(self, case):
        rep, query, __ = case
        for estimator in ALL_ESTIMATORS:
            values = [
                estimator.estimate(query, rep, t).nodoc
                for t in np.linspace(0.0, 1.0, 6)
            ]
            for a, b in zip(values, values[1:]):
                assert a >= b - 1e-9, estimator

    @given(estimation_cases())
    @settings(max_examples=80, deadline=None)
    def test_zero_above_everything(self, case):
        # No document similarity can exceed sum(u_i * mw_i) <= sum(u_i); at
        # a threshold far above that, estimators with *bounded* weight
        # models must report zero.  The previous method and the triplet
        # subrange mode extrapolate an unbounded normal, so they may leak
        # (vanishing) mass above any threshold — excluded by design.
        rep, query, __ = case
        impossible = float(np.sum(query.normalized_weights())) + 0.5
        bounded = [
            BasicEstimator(),
            SubrangeEstimator(),
            GlossHighCorrelationEstimator(),
            GlossDisjointEstimator(),
        ]
        for estimator in bounded:
            estimate = estimator.estimate(query, rep, impossible)
            assert estimate.nodoc == 0.0, estimator

    @given(estimation_cases())
    @settings(max_examples=60, deadline=None)
    def test_estimate_many_matches_estimate(self, case):
        rep, query, __ = case
        thresholds = (0.1, 0.4, 0.7)
        for estimator in ALL_ESTIMATORS:
            many = estimator.estimate_many(query, rep, thresholds)
            for t, estimate in zip(thresholds, many):
                single = estimator.estimate(query, rep, t)
                assert abs(estimate.nodoc - single.nodoc) < 1e-9, estimator
                assert abs(estimate.avgsim - single.avgsim) < 1e-9, estimator


class TestSubrangeSpecific:
    @given(estimation_cases())
    @settings(max_examples=80, deadline=None)
    def test_expansion_mass_is_one(self, case):
        rep, query, __ = case
        expansion = SubrangeEstimator().expand(query, rep)
        assert abs(expansion.total_mass() - 1.0) < 1e-9

    @given(estimation_cases())
    @settings(max_examples=80, deadline=None)
    def test_single_term_never_exceeds_stored_max(self, case):
        rep, query, __ = case
        single = Query.from_terms([query.terms[0]])
        stats = rep.get(single.terms[0])
        expansion = SubrangeEstimator().expand(single, rep)
        # Tolerance covers the 8-decimal exponent rounding in expansion.
        assert expansion.max_exponent() <= stats.max_weight + 1e-7
