"""Property-based tests for representative merging algebra."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.representatives import (
    DatabaseRepresentative,
    TermStats,
    merge_representatives,
)

TERMS = ("t0", "t1", "t2")


@st.composite
def representatives(draw):
    n = draw(st.integers(min_value=1, max_value=100))
    stats = {}
    for term in TERMS:
        if draw(st.booleans()):
            # probability quantized to df/n so merging stays exact.
            df = draw(st.integers(min_value=1, max_value=n))
            mean = draw(st.floats(min_value=0.01, max_value=1.0))
            stats[term] = TermStats(
                probability=df / n,
                mean=mean,
                std=draw(st.floats(min_value=0.0, max_value=0.4)),
                max_weight=mean + draw(st.floats(min_value=0.0, max_value=0.5)),
            )
    return DatabaseRepresentative(
        f"r{draw(st.integers(0, 1000))}", n_documents=n, term_stats=stats
    )


def _stats_close(a, b, tol=1e-9):
    return (
        math.isclose(a.probability, b.probability, rel_tol=1e-9, abs_tol=tol)
        and math.isclose(a.mean, b.mean, rel_tol=1e-7, abs_tol=tol)
        and math.isclose(a.std, b.std, rel_tol=1e-6, abs_tol=1e-7)
        and (
            (a.max_weight is None and b.max_weight is None)
            or math.isclose(a.max_weight, b.max_weight, rel_tol=1e-9, abs_tol=tol)
        )
    )


class TestMergeAlgebra:
    @given(representatives(), representatives(), representatives())
    @settings(max_examples=120, deadline=None)
    def test_associative(self, a, b, c):
        left = merge_representatives("m", [merge_representatives("ab", [a, b]), c])
        right = merge_representatives("m", [a, merge_representatives("bc", [b, c])])
        flat = merge_representatives("m", [a, b, c])
        assert left.n_documents == right.n_documents == flat.n_documents
        for term, stats in flat.items():
            assert _stats_close(left.get(term), stats)
            assert _stats_close(right.get(term), stats)

    @given(representatives(), representatives())
    @settings(max_examples=120, deadline=None)
    def test_commutative(self, a, b):
        ab = merge_representatives("m", [a, b])
        ba = merge_representatives("m", [b, a])
        assert ab.n_documents == ba.n_documents
        for term, stats in ab.items():
            assert _stats_close(ba.get(term), stats)

    @given(representatives())
    @settings(max_examples=100, deadline=None)
    def test_merge_with_empty_database_rescales_probability_only(self, a):
        empty = DatabaseRepresentative("empty", 50, {})
        merged = merge_representatives("m", [a, empty])
        assert merged.n_documents == a.n_documents + 50
        for term, stats in a.items():
            other = merged.get(term)
            expected_p = stats.probability * a.n_documents / merged.n_documents
            assert math.isclose(other.probability, expected_p, rel_tol=1e-9)
            assert math.isclose(other.mean, stats.mean, rel_tol=1e-9)
            assert math.isclose(other.std, stats.std, rel_tol=1e-7, abs_tol=1e-9)

    @given(representatives(), representatives())
    @settings(max_examples=120, deadline=None)
    def test_df_conserved(self, a, b):
        merged = merge_representatives("m", [a, b])
        for term in TERMS:
            expected = a.document_frequency(term) + b.document_frequency(term)
            assert math.isclose(
                merged.document_frequency(term), expected,
                rel_tol=1e-9, abs_tol=1e-9,
            )

    @given(representatives(), representatives())
    @settings(max_examples=120, deadline=None)
    def test_max_weight_is_max(self, a, b):
        merged = merge_representatives("m", [a, b])
        for term in TERMS:
            sa, sb = a.get(term), b.get(term)
            sm = merged.get(term)
            if sa is None and sb is None:
                assert sm is None
            elif sa is not None and sb is not None:
                assert sm.max_weight == max(sa.max_weight, sb.max_weight)

    @given(representatives(), representatives())
    @settings(max_examples=100, deadline=None)
    def test_mean_between_part_means(self, a, b):
        merged = merge_representatives("m", [a, b])
        for term in TERMS:
            sa, sb = a.get(term), b.get(term)
            if sa is not None and sb is not None:
                lo = min(sa.mean, sb.mean) - 1e-9
                hi = max(sa.mean, sb.mean) + 1e-9
                assert lo <= merged.get(term).mean <= hi
