"""Property-based tests for the live-fleet delta subsystem.

The wire path's contract is *bit-exactness*: applying a
:class:`~repro.fleet.delta.RepresentativeDelta` to the representative it
was diffed from must reproduce the freshly rebuilt representative of the
mutated corpus exactly — same values, same canonical iteration order — on
both the dict and the columnar fleet backend.  The accumulator removal
path is streaming (signed sufficient-statistics subtraction), so it gets
the same `isclose` tolerances the incremental suite uses.
"""

import itertools
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import Collection, Document
from repro.engine import SearchEngine
from repro.fleet import LiveEngineServer
from repro.fleet.delta import (
    RepresentativeDelta,
    TermDeltaRecord,
    apply_delta,
    canonicalize,
    diff_representatives,
)
from repro.representatives import (
    RepresentativeAccumulator,
    build_representative,
)
from repro.representatives.columnar import FleetRepresentativeStore

VOCAB = [f"w{i}" for i in range(10)]
FRESH = [f"x{i}" for i in range(6)]


def _terms(draw, alphabet=VOCAB):
    return draw(
        st.lists(st.sampled_from(alphabet), min_size=1, max_size=8)
    )


@st.composite
def live_scenarios(draw):
    """An initial corpus plus a mutation script.

    Each mutation is ``("add", [term_lists])`` (fresh doc ids, possibly
    fresh vocabulary — the "unknown terms" case) or ``("remove", k)``
    (drop the k oldest surviving documents, clamped to keep one).
    """
    n_initial = draw(st.integers(min_value=1, max_value=6))
    initial = [_terms(draw) for __ in range(n_initial)]
    n_mutations = draw(st.integers(min_value=1, max_value=4))
    mutations = []
    for __ in range(n_mutations):
        if draw(st.booleans()):
            n_added = draw(st.integers(min_value=1, max_value=3))
            mutations.append(
                ("add", [_terms(draw, VOCAB + FRESH) for __ in range(n_added)])
            )
        else:
            mutations.append(("remove", draw(st.integers(min_value=1, max_value=3))))
    return initial, mutations


def _run_script(server, mutations, counter):
    """Apply the mutation script; returns the per-mutation deltas."""
    deltas = []
    for kind, spec in mutations:
        if kind == "add":
            documents = [
                Document(f"a{next(counter)}", terms) for terms in spec
            ]
            deltas.append(server.add_documents(documents))
        else:
            doomed = server.doc_ids[: min(spec, server.n_documents - 1)]
            if not doomed:
                continue
            deltas.append(server.remove_documents(doomed))
    return deltas


def _assert_identical(applied, fresh):
    """Bit-exact: same canonical order, same float values, same n."""
    assert applied.n_documents == fresh.n_documents
    assert list(applied.items()) == list(fresh.items())


class TestDictDeltaExactness:
    @given(live_scenarios())
    @settings(max_examples=80, deadline=None)
    def test_stepwise_apply_equals_rebuild(self, scenario):
        initial, mutations = scenario
        counter = itertools.count()
        server = LiveEngineServer(
            "db", [Document(f"d{next(counter)}", t) for t in initial]
        )
        held = server.snapshot().representative
        for kind, spec in mutations:
            if kind == "add":
                delta = server.add_documents(
                    [Document(f"a{next(counter)}", t) for t in spec]
                )
            else:
                doomed = server.doc_ids[: min(spec, server.n_documents - 1)]
                if not doomed:
                    continue
                delta = server.remove_documents(doomed)
            held = apply_delta(held, delta)
            _assert_identical(held, server.snapshot().representative)

    @given(live_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_composed_catchup_equals_rebuild(self, scenario):
        initial, mutations = scenario
        counter = itertools.count()
        server = LiveEngineServer(
            "db", [Document(f"d{next(counter)}", t) for t in initial]
        )
        base = server.snapshot()
        _run_script(server, mutations, counter)
        composed = server.delta_since(base.version)
        applied = apply_delta(base.representative, composed)
        _assert_identical(applied, server.snapshot().representative)

    @given(live_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_wire_roundtrip_preserves_exactness(self, scenario):
        initial, mutations = scenario
        counter = itertools.count()
        server = LiveEngineServer(
            "db", [Document(f"d{next(counter)}", t) for t in initial]
        )
        base = server.snapshot()
        _run_script(server, mutations, counter)
        composed = server.delta_since(base.version)
        decoded = RepresentativeDelta.decode(composed.encode())
        assert decoded == composed
        applied = apply_delta(base.representative, decoded)
        _assert_identical(applied, server.snapshot().representative)

    def test_del_of_absent_term_is_noop(self):
        server = LiveEngineServer("db", [Document("d1", ["w0", "w1"])])
        representative = server.snapshot().representative
        delta = RepresentativeDelta(
            name="db",
            from_version=0,
            to_version=1,
            from_n_documents=1,
            n_documents=1,
            records=(TermDeltaRecord(op="del", term="ghost"),),
        )
        applied = apply_delta(representative, delta)
        _assert_identical(applied, representative)

    def test_empty_delta_is_identity(self):
        server = LiveEngineServer("db", [Document("d1", ["w0", "w1"])])
        representative = server.snapshot().representative
        delta = server.delta_since(server.version)
        assert delta.is_empty
        _assert_identical(apply_delta(representative, delta), representative)


class TestColumnarDeltaExactness:
    @given(live_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_fleet_store_apply_equals_rebuild(self, scenario):
        initial, mutations = scenario
        counter = itertools.count()
        server = LiveEngineServer(
            "db", [Document(f"d{next(counter)}", t) for t in initial]
        )
        store = FleetRepresentativeStore()
        store.add(server.snapshot().representative)
        for delta in _run_script(server, mutations, counter):
            store.apply_delta(delta)
        fresh = server.snapshot().representative
        materialized = store.materialize("db")
        assert materialized.n_documents == fresh.n_documents
        assert set(dict(materialized.items())) == set(dict(fresh.items()))
        for term, stats in fresh.items():
            assert materialized.get(term) == stats

    @given(live_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_fleet_store_composed_apply(self, scenario):
        initial, mutations = scenario
        counter = itertools.count()
        server = LiveEngineServer(
            "db", [Document(f"d{next(counter)}", t) for t in initial]
        )
        base = server.snapshot()
        store = FleetRepresentativeStore()
        store.add(base.representative)
        _run_script(server, mutations, counter)
        store.apply_delta(server.delta_since(base.version))
        fresh = server.snapshot().representative
        materialized = store.materialize("db")
        for term, stats in fresh.items():
            assert materialized.get(term) == stats
        assert len(dict(materialized.items())) == len(dict(fresh.items()))


@st.composite
def corpus_pairs(draw):
    """Old and new corpora sharing a name — the rep-diff use case."""
    n_old = draw(st.integers(min_value=1, max_value=6))
    old_docs = [_terms(draw) for __ in range(n_old)]
    keep = draw(st.integers(min_value=1, max_value=n_old))
    n_new = draw(st.integers(min_value=0, max_value=3))
    new_docs = old_docs[:keep] + [
        _terms(draw, VOCAB + FRESH) for __ in range(n_new)
    ]
    return old_docs, new_docs


class TestTripletModeDeltas:
    """Deltas over max-weight-free (triplet) representatives."""

    @given(corpus_pairs())
    @settings(max_examples=60, deadline=None)
    def test_diff_apply_roundtrip_without_max(self, pair):
        old_docs, new_docs = pair
        old = canonicalize(
            build_representative(
                SearchEngine(
                    Collection.from_documents(
                        "db",
                        [Document(f"d{i}", t) for i, t in enumerate(old_docs)],
                    )
                ),
                include_max_weight=False,
            )
        )
        new = canonicalize(
            build_representative(
                SearchEngine(
                    Collection.from_documents(
                        "db",
                        [Document(f"e{i}", t) for i, t in enumerate(new_docs)],
                    )
                ),
                include_max_weight=False,
            )
        )
        delta = diff_representatives(old, new, from_version=0, to_version=1)
        for record in delta.records:
            if record.op == "set":
                assert record.stats.max_weight is None
        decoded = RepresentativeDelta.decode(delta.encode())
        _assert_identical(apply_delta(old, decoded), new)


class TestAccumulatorRemoval:
    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from(VOCAB),
                st.floats(min_value=0.01, max_value=1.0),
                min_size=1,
                max_size=5,
            ),
            min_size=1,
            max_size=12,
        ),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_remove_matches_rebuild(self, docs, data):
        mask = [
            data.draw(st.booleans(), label=f"remove[{i}]")
            for i in range(len(docs))
        ]
        acc = RepresentativeAccumulator("db")
        for doc in docs:
            acc.add_document(doc)
        removed = [doc for doc, flag in zip(docs, mask) if flag]
        kept = [doc for doc, flag in zip(docs, mask) if not flag]
        for doc in removed:
            acc.remove_document(doc)

        rebuilt = RepresentativeAccumulator("db")
        for doc in kept:
            rebuilt.add_document(doc)
        assert acc.n_documents == rebuilt.n_documents
        assert acc.n_terms == rebuilt.n_terms
        for term in acc.stale_max_terms:
            acc.refresh_term_max(
                term, [doc[term] for doc in kept if term in doc]
            )
        if not kept:
            return
        got = acc.to_representative()
        want = rebuilt.to_representative()
        for term, stats in want.items():
            other = got.get(term)
            assert other is not None
            assert math.isclose(
                other.probability, stats.probability, rel_tol=1e-12
            )
            assert math.isclose(
                other.mean, stats.mean, rel_tol=1e-9, abs_tol=1e-12
            )
            assert math.isclose(
                other.std**2, stats.std**2, rel_tol=1e-6, abs_tol=1e-9
            )
            assert other.max_weight == stats.max_weight

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=30
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_remove_then_readd_max_weight_document(self, weights):
        """Retracting the document holding a term's max weight and adding
        it back restores the original statistics — the case a lazy max
        (no top-k) would get wrong."""
        term = "w0"
        acc = RepresentativeAccumulator("db")
        for weight in weights:
            acc.add_document({term: weight})
        top = max(weights)
        baseline = acc.to_representative().get(term)

        acc.remove_document({term: top})
        acc.add_document({term: top})
        if term in acc.stale_max_terms:
            acc.refresh_term_max(term, weights)
        after = acc.to_representative().get(term)
        assert after.max_weight == baseline.max_weight == top
        assert acc.n_documents == len(weights)
        assert math.isclose(
            after.mean, baseline.mean, rel_tol=1e-9, abs_tol=1e-12
        )
        assert math.isclose(
            after.std**2, baseline.std**2, rel_tol=1e-6, abs_tol=1e-9
        )
