"""Unit tests for markdown report rendering."""

import pytest

from repro.core import SubrangeEstimator
from repro.evaluation import (
    MethodSpec,
    markdown_comparison,
    markdown_error_table,
    markdown_match_table,
    run_usefulness_experiment,
)
from repro.evaluation.paper_reference import PAPER_TABLES_1_TO_6


@pytest.fixture(scope="module")
def result(small_engine, small_representative, small_queries):
    return run_usefulness_experiment(
        small_engine,
        small_queries[:30],
        [MethodSpec("subrange", SubrangeEstimator(), small_representative)],
    )


def assert_valid_markdown_table(text):
    lines = text.splitlines()
    assert len(lines) >= 3
    columns = lines[0].count("|")
    for line in lines:
        assert line.startswith("|") and line.endswith("|")
        assert line.count("|") == columns
    assert set(lines[1].replace("|", "").replace("-", "").strip()) == set()


class TestMarkdownTables:
    def test_match_table_structure(self, result):
        text = markdown_match_table(result)
        assert_valid_markdown_table(text)
        assert "subrange method" in text
        # One data row per threshold.
        assert len(text.splitlines()) == 2 + len(result.thresholds)

    def test_error_table_structure(self, result):
        text = markdown_error_table(result)
        assert_valid_markdown_table(text)
        assert "d-N" in text
        assert "d-S" in text

    def test_method_subset(self, result):
        text = markdown_match_table(result, methods=["subrange"])
        assert "subrange method" in text


class TestMarkdownComparison:
    def test_pairs_with_published_rows(self, result):
        text = markdown_comparison(
            result, PAPER_TABLES_1_TO_6["D1"], method="subrange"
        )
        assert_valid_markdown_table(text)
        assert "ours m/mis" in text
        assert "paper m/mis" in text
        # Paper's D1 subrange numbers appear verbatim.
        assert "1423/13" in text

    def test_missing_paper_rows_render_empty(self, result):
        text = markdown_comparison(result, (), method="subrange")
        assert_valid_markdown_table(text)
        # Paper columns exist but are empty.
        first_row = text.splitlines()[2]
        assert first_row.rstrip().endswith("|  |  |  |".replace(" ", " ")) or \
            first_row.count("|") == 8

    def test_single_method_paper_rows(self, result):
        from repro.evaluation.paper_reference import PAPER_TABLES_7_TO_9

        text = markdown_comparison(
            result, PAPER_TABLES_7_TO_9["D1"], method="subrange"
        )
        assert "6.79" in text  # published table 7 d-N at T=0.1
