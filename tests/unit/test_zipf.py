"""Unit tests for the Zipf-Mandelbrot sampler."""

import numpy as np
import pytest

from repro.corpus.synth import ZipfDistribution


class TestConstruction:
    def test_probabilities_sum_to_one(self):
        dist = ZipfDistribution(1000)
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_probabilities_decreasing(self):
        probs = ZipfDistribution(100).probabilities
        assert np.all(np.diff(probs) < 0)

    def test_zipf_ratio(self):
        # With shift 0 and exponent 1, rank 0 is twice as likely as rank 1.
        dist = ZipfDistribution(10, exponent=1.0, shift=0.0)
        assert dist.probability(0) / dist.probability(1) == pytest.approx(2.0)

    @pytest.mark.parametrize("size,exponent,shift", [(0, 1.0, 0.0), (10, 0.0, 0.0), (10, 1.0, -1.0)])
    def test_invalid_params(self, size, exponent, shift):
        with pytest.raises(ValueError):
            ZipfDistribution(size, exponent=exponent, shift=shift)

    def test_size_one(self):
        dist = ZipfDistribution(1)
        assert dist.probability(0) == pytest.approx(1.0)


class TestSampling:
    def test_sample_range(self):
        dist = ZipfDistribution(50)
        samples = dist.sample(np.random.default_rng(0), 10000)
        assert samples.min() >= 0
        assert samples.max() < 50

    def test_sample_matches_distribution(self):
        dist = ZipfDistribution(20, exponent=1.0, shift=0.0)
        samples = dist.sample(np.random.default_rng(1), 200000)
        counts = np.bincount(samples, minlength=20) / samples.size
        # Head ranks should match their true probability within MC noise.
        for rank in range(5):
            assert counts[rank] == pytest.approx(dist.probability(rank), rel=0.05)

    def test_sample_deterministic_per_seed(self):
        dist = ZipfDistribution(100)
        a = dist.sample(np.random.default_rng(7), 50)
        b = dist.sample(np.random.default_rng(7), 50)
        assert np.array_equal(a, b)

    def test_sample_zero(self):
        assert ZipfDistribution(10).sample(np.random.default_rng(0), 0).size == 0

    def test_repr(self):
        assert "size=10" in repr(ZipfDistribution(10))
