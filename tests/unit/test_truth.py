"""Unit tests for exact usefulness computation."""

import math

import pytest

from repro.core import true_usefulness, true_usefulness_many
from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine


@pytest.fixture
def engine():
    return SearchEngine(
        Collection.from_documents(
            "db",
            [
                Document("d1", terms=["x"]),            # sim(x) = 1.0
                Document("d2", terms=["x", "y"]),       # sim(x) = 1/sqrt(2)
                Document("d3", terms=["y"]),            # sim(x) = 0
            ],
        )
    )


class TestTrueUsefulness:
    def test_nodoc_counts_strictly_above(self, engine):
        query = Query.from_terms(["x"])
        result = true_usefulness(engine, query, threshold=0.5)
        assert result.nodoc == 2

    def test_boundary_is_strict(self, engine):
        query = Query.from_terms(["x"])
        sim2 = 1 / math.sqrt(2)
        assert true_usefulness(engine, query, sim2).nodoc == 1
        assert true_usefulness(engine, query, sim2 - 1e-9).nodoc == 2

    def test_avgsim(self, engine):
        query = Query.from_terms(["x"])
        result = true_usefulness(engine, query, threshold=0.5)
        assert result.avgsim == pytest.approx((1.0 + 1 / math.sqrt(2)) / 2)

    def test_zero_when_no_docs(self, engine):
        result = true_usefulness(engine, Query.from_terms(["zz"]), 0.1)
        assert result.nodoc == 0
        assert result.avgsim == 0.0

    def test_many_matches_singles(self, engine):
        query = Query.from_terms(["x", "y"])
        thresholds = (0.1, 0.5, 0.9)
        many = true_usefulness_many(engine, query, thresholds)
        for threshold, result in zip(thresholds, many):
            single = true_usefulness(engine, query, threshold)
            assert result == single

    def test_paper_definition_consistency(self, engine):
        """NoDoc(T) equals |search(T)| for every threshold."""
        query = Query.from_terms(["x", "y"])
        for threshold in (0.0, 0.3, 0.6, 0.9):
            hits = engine.search(query, threshold)
            result = true_usefulness(engine, query, threshold)
            assert result.nodoc == len(hits)
            if hits:
                expected = sum(h.similarity for h in hits) / len(hits)
                assert result.avgsim == pytest.approx(expected)
