"""Unit tests for building representatives from engines."""

import math

import pytest

from repro.corpus import Collection, Document
from repro.engine import SearchEngine
from repro.index import InvertedIndex
from repro.representatives import build_representative


@pytest.fixture
def engine():
    return SearchEngine(
        Collection.from_documents(
            "db",
            [
                Document("d1", terms=["a", "a", "a", "b"]),  # norm sqrt(10)
                Document("d2", terms=["a"]),                 # norm 1
                Document("d3", terms=["b", "b"]),            # norm 2
            ],
        )
    )


class TestBuildRepresentative:
    def test_probability_is_df_over_n(self, engine):
        rep = build_representative(engine)
        assert rep.get("a").probability == pytest.approx(2 / 3)
        assert rep.get("b").probability == pytest.approx(2 / 3)

    def test_mean_of_normalized_weights(self, engine):
        rep = build_representative(engine)
        # a: weights 3/sqrt(10) and 1.0.
        expected = (3 / math.sqrt(10) + 1.0) / 2
        assert rep.get("a").mean == pytest.approx(expected)

    def test_std_population(self, engine):
        rep = build_representative(engine)
        w1, w2 = 3 / math.sqrt(10), 1.0
        mean = (w1 + w2) / 2
        expected = math.sqrt(((w1 - mean) ** 2 + (w2 - mean) ** 2) / 2)
        assert rep.get("a").std == pytest.approx(expected)

    def test_max_weight_stored(self, engine):
        rep = build_representative(engine)
        assert rep.get("a").max_weight == pytest.approx(1.0)
        assert rep.get("b").max_weight == pytest.approx(1.0)  # d3: 2/2

    def test_max_weight_omittable(self, engine):
        rep = build_representative(engine, include_max_weight=False)
        assert not rep.has_max_weights

    def test_n_documents(self, engine):
        assert build_representative(engine).n_documents == 3

    def test_covers_all_terms(self, engine):
        rep = build_representative(engine)
        assert rep.n_terms == 2

    def test_accepts_raw_index(self, engine):
        rep = build_representative(InvertedIndex(engine.collection))
        assert rep.get("a") == build_representative(engine).get("a")

    def test_single_occurrence_term_zero_std(self):
        engine = SearchEngine(
            Collection.from_documents("db", [Document("d1", terms=["solo"])])
        )
        stats = build_representative(engine).get("solo")
        assert stats.std == 0.0
        assert stats.mean == pytest.approx(1.0)
        assert stats.max_weight == pytest.approx(1.0)

    def test_name_copied_from_collection(self, engine):
        assert build_representative(engine).name == "db"

    def test_max_weight_at_least_mean(self, engine):
        rep = build_representative(engine)
        for __, stats in rep.items():
            assert stats.max_weight >= stats.mean - 1e-12
