"""Unit tests for the term-polynomial memoization cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metasearch.cache import TermPolynomialCache
from repro.obs import MetricsRegistry


def poly(*exponents):
    exp = np.asarray(exponents, dtype=float)
    coef = np.full(exp.size, 1.0 / exp.size)
    return (exp, coef)


CONFIG = ("SubrangeEstimator", "paper_six", True, 99.9)


class TestLookupStore:
    def test_miss_then_hit(self):
        cache = TermPolynomialCache()
        hit, value = cache.lookup(CONFIG, "d1", "apple", 0.5)
        assert not hit and value is None
        stored = poly(0.3, 0.0)
        cache.store(CONFIG, "d1", "apple", 0.5, stored)
        hit, value = cache.lookup(CONFIG, "d1", "apple", 0.5)
        assert hit
        assert value is stored

    def test_negative_caching(self):
        """An unmatched term's None is a first-class cached value: the
        second lookup is a hit carrying None."""
        cache = TermPolynomialCache()
        cache.store(CONFIG, "d1", "unknownterm", 1.0, None)
        hit, value = cache.lookup(CONFIG, "d1", "unknownterm", 1.0)
        assert hit
        assert value is None

    def test_key_dimensions_kept_apart(self):
        cache = TermPolynomialCache()
        cache.store(CONFIG, "d1", "apple", 0.5, poly(0.3, 0.0))
        assert not cache.lookup(CONFIG, "d2", "apple", 0.5)[0]
        assert not cache.lookup(CONFIG, "d1", "pear", 0.5)[0]
        assert not cache.lookup(CONFIG, "d1", "apple", 0.7)[0]
        assert not cache.lookup(("other",), "d1", "apple", 0.5)[0]

    def test_weight_rounding_merges_float_noise(self):
        cache = TermPolynomialCache()
        u = 1.0 / np.sqrt(2.0)
        cache.store(CONFIG, "d1", "apple", u, poly(0.3, 0.0))
        hit, __ = cache.lookup(CONFIG, "d1", "apple", u + 1e-15)
        assert hit


class TestEvictionInvalidation:
    def test_lru_eviction(self):
        cache = TermPolynomialCache(maxsize=2)
        cache.store(CONFIG, "d1", "a", 1.0, poly(0.1, 0.0))
        cache.store(CONFIG, "d1", "b", 1.0, poly(0.2, 0.0))
        cache.lookup(CONFIG, "d1", "a", 1.0)  # refresh a
        cache.store(CONFIG, "d1", "c", 1.0, poly(0.3, 0.0))
        assert cache.lookup(CONFIG, "d1", "a", 1.0)[0]
        assert not cache.lookup(CONFIG, "d1", "b", 1.0)[0]
        assert cache.evictions == 1

    def test_invalidate_engine_is_scoped(self):
        cache = TermPolynomialCache()
        cache.store(CONFIG, "d1", "a", 1.0, poly(0.1, 0.0))
        cache.store(CONFIG, "d1", "b", 1.0, None)
        cache.store(CONFIG, "d2", "a", 1.0, poly(0.2, 0.0))
        removed = cache.invalidate_engine("d1")
        assert removed == 2
        assert len(cache) == 1
        assert not cache.lookup(CONFIG, "d1", "a", 1.0)[0]
        assert cache.lookup(CONFIG, "d2", "a", 1.0)[0]

    def test_clear_keeps_counters(self):
        cache = TermPolynomialCache()
        cache.store(CONFIG, "d1", "a", 1.0, poly(0.1, 0.0))
        cache.lookup(CONFIG, "d1", "a", 1.0)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_maxsize_validated(self):
        with pytest.raises(ValueError, match="maxsize"):
            TermPolynomialCache(maxsize=0)


class TestVocabularyKeys:
    def test_interned_keys_hit_across_string_instances(self):
        from repro.representatives import BrokerVocabulary

        vocab = BrokerVocabulary()
        cache = TermPolynomialCache(vocab=vocab)
        cache.store(CONFIG, "d1", "apple", 0.5, poly(0.3, 0.0))
        # A distinct string object with equal text reaches the same entry
        # through the shared interned id.
        hit, __ = cache.lookup(CONFIG, "d1", "".join(["app", "le"]), 0.5)
        assert hit
        assert vocab.id_of("apple") == 0
        key = next(iter(cache._data))
        assert key[2] == 0  # term slot carries the interned id, not text

    def test_invalidate_engine_with_vocab_keys(self):
        from repro.representatives import BrokerVocabulary

        cache = TermPolynomialCache(vocab=BrokerVocabulary())
        cache.store(CONFIG, "d1", "apple", 0.5, poly(0.3, 0.0))
        cache.store(CONFIG, "d2", "apple", 0.5, poly(0.4, 0.0))
        assert cache.invalidate_engine("d1") == 1
        assert not cache.lookup(CONFIG, "d1", "apple", 0.5)[0]
        assert cache.lookup(CONFIG, "d2", "apple", 0.5)[0]


class TestMetrics:
    def test_registry_series(self):
        registry = MetricsRegistry()
        cache = TermPolynomialCache(maxsize=1, registry=registry)
        cache.lookup(CONFIG, "d1", "a", 1.0)
        cache.store(CONFIG, "d1", "a", 1.0, poly(0.1, 0.0))
        cache.lookup(CONFIG, "d1", "a", 1.0)
        cache.store(CONFIG, "d1", "b", 1.0, None)
        cache.invalidate_engine("d1")
        assert registry.counter("estimator.polycache.hits").value == 1
        assert registry.counter("estimator.polycache.misses").value == 1
        assert registry.counter("estimator.polycache.evictions").value == 1
        assert registry.counter("estimator.polycache.invalidations").value == 1
        assert registry.gauge("estimator.polycache.size").value == 0

    def test_hit_rate(self):
        cache = TermPolynomialCache()
        assert cache.hit_rate == 0.0
        cache.lookup(CONFIG, "d1", "a", 1.0)
        cache.store(CONFIG, "d1", "a", 1.0, None)
        cache.lookup(CONFIG, "d1", "a", 1.0)
        assert cache.hit_rate == 0.5
