"""Unit tests for the TREC SGML loader."""

import gzip

import pytest

from repro.corpus import iter_trec_documents, load_trec_collection
from repro.text import TextPipeline

SAMPLE = """
<DOC>
<DOCNO> WSJ870324-0001 </DOCNO>
<HL> Rocket Launch Succeeds </HL>
<TEXT>
The rocket engine ignited on schedule and the
spacecraft reached orbit.
</TEXT>
</DOC>
<DOC>
<DOCNO>FR880101-0002</DOCNO>
<TEXT>
Federal regulations concerning kitchen appliances.
</TEXT>
</DOC>
"""


@pytest.fixture
def trec_file(tmp_path):
    path = tmp_path / "sample.sgml"
    path.write_text(SAMPLE)
    return path


class TestIterTrecDocuments:
    def test_yields_all_documents(self, trec_file):
        docs = list(iter_trec_documents(trec_file))
        assert len(docs) == 2

    def test_docnos_extracted_and_stripped(self, trec_file):
        docnos = [d[0] for d in iter_trec_documents(trec_file)]
        assert docnos == ["WSJ870324-0001", "FR880101-0002"]

    def test_tags_removed_from_text(self, trec_file):
        __, text = next(iter_trec_documents(trec_file))
        assert "<TEXT>" not in text
        assert "rocket engine" in text
        assert "Rocket Launch Succeeds" in text  # headline kept as content

    def test_docno_not_in_text(self, trec_file):
        __, text = next(iter_trec_documents(trec_file))
        assert "WSJ870324-0001" not in text

    def test_missing_docno_synthesized(self, tmp_path):
        path = tmp_path / "anon.sgml"
        path.write_text("<DOC>\n<TEXT>orphan body</TEXT>\n</DOC>\n")
        ((docno, text),) = iter_trec_documents(path)
        assert docno == "anon-1"
        assert "orphan" in text

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "bad.sgml"
        path.write_text("<DOC>\n<TEXT>never closed\n")
        with pytest.raises(ValueError, match="unterminated"):
            list(iter_trec_documents(path))

    def test_gzip_supported(self, tmp_path):
        path = tmp_path / "sample.sgml.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(SAMPLE)
        assert len(list(iter_trec_documents(path))) == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.sgml"
        path.write_text("")
        assert list(iter_trec_documents(path)) == []


class TestLoadTrecCollection:
    def test_builds_collection(self, trec_file):
        collection = load_trec_collection(trec_file, name="wsj")
        assert collection.name == "wsj"
        assert collection.n_documents == 2
        assert collection.index_of("WSJ870324-0001") == 0

    def test_pipeline_applied(self, trec_file):
        collection = load_trec_collection(
            trec_file, name="wsj", pipeline=TextPipeline(stem=False)
        )
        assert "rocket" in collection.vocabulary
        assert "the" not in collection.vocabulary

    def test_limit(self, trec_file):
        collection = load_trec_collection(trec_file, name="wsj", limit=1)
        assert collection.n_documents == 1

    def test_multiple_files(self, trec_file, tmp_path):
        other = tmp_path / "more.sgml"
        other.write_text(
            "<DOC>\n<DOCNO>X-1</DOCNO>\n<TEXT>extra content here</TEXT>\n</DOC>\n"
        )
        collection = load_trec_collection([trec_file, other], name="all")
        assert collection.n_documents == 3

    def test_end_to_end_estimation(self, trec_file):
        from repro.core import SubrangeEstimator, true_usefulness
        from repro.corpus import Query
        from repro.engine import SearchEngine
        from repro.representatives import build_representative

        engine = SearchEngine(load_trec_collection(trec_file, name="wsj"))
        rep = build_representative(engine)
        query = Query.from_text("rocket orbit")
        estimate = SubrangeEstimator().estimate(query, rep, 0.2)
        truth = true_usefulness(engine, query, 0.2)
        assert estimate.nodoc >= 1
        assert truth.nodoc == 1
