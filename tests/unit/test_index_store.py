"""Unit tests for index persistence."""

import numpy as np
import pytest

from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.index import InvertedIndex, load_index, save_index
from repro.representatives import build_representative
from repro.vsm import PivotedNormalizer


@pytest.fixture
def index():
    collection = Collection.from_documents(
        "db",
        [
            Document("d1", terms=["a", "a", "b"]),
            Document("d2", terms=["b", "c"]),
            Document("d3", terms=["c", "c", "c"]),
        ],
    )
    return InvertedIndex(collection)


class TestRoundtrip:
    def test_postings_identical(self, index, tmp_path):
        path = tmp_path / "idx.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.n_documents == index.n_documents
        assert loaded.n_terms == index.n_terms
        for tid in index.iter_term_ids():
            original = index.postings(tid)
            restored = loaded.postings(tid)
            assert np.array_equal(original.doc_indices, restored.doc_indices)
            assert np.array_equal(original.weights, restored.weights)

    def test_norms_and_ids_preserved(self, index, tmp_path):
        path = tmp_path / "idx.npz"
        save_index(index, path)
        loaded = load_index(path)
        for i in range(index.n_documents):
            assert loaded.document_norm(i) == index.document_norm(i)
            assert loaded.collection.doc_id(i) == index.collection.doc_id(i)

    def test_vocabulary_preserved(self, index, tmp_path):
        path = tmp_path / "idx.npz"
        save_index(index, path)
        loaded = load_index(path)
        for term in ("a", "b", "c"):
            assert loaded.collection.vocabulary.id_of(
                term
            ) == index.collection.vocabulary.id_of(term)

    def test_configuration_preserved(self, tmp_path):
        collection = Collection.from_documents(
            "db", [Document("d1", terms=["x", "y"])]
        )
        index = InvertedIndex(
            collection, normalizer=PivotedNormalizer(), idf="smooth"
        )
        path = tmp_path / "idx.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.normalizer.name == "pivoted"
        assert loaded.idf_variant == "smooth"
        assert loaded.weighting.name == "tf"

    def test_representative_from_loaded_index(self, index, tmp_path):
        path = tmp_path / "idx.npz"
        save_index(index, path)
        loaded = load_index(path)
        original_rep = build_representative(index)
        restored_rep = build_representative(loaded)
        for term, stats in original_rep.items():
            assert restored_rep.get(term) == stats

    def test_search_from_loaded_index(self, index, tmp_path):
        # A SearchEngine can be reconstituted around a loaded index.
        path = tmp_path / "idx.npz"
        save_index(index, path)
        loaded = load_index(path)
        engine = SearchEngine.__new__(SearchEngine)
        engine.collection = loaded.collection
        engine.index = loaded
        query = Query.from_terms(["c"])
        # d3 is pure "c" (normalized weight 1.0); d2's is 1/sqrt(2).
        hits = engine.search(query, threshold=0.8)
        assert [h.doc_id for h in hits] == ["d3"]
        hits = engine.search(query, threshold=0.5)
        assert [h.doc_id for h in hits] == ["d3", "d2"]

    def test_empty_index(self, tmp_path):
        index = InvertedIndex(Collection("empty"))
        path = tmp_path / "idx.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.n_terms == 0
        assert loaded.n_documents == 0

    def test_version_check(self, index, tmp_path):
        path = tmp_path / "idx.npz"
        save_index(index, path)
        # Corrupt the version field.
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["format_version"] = np.int64(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="format"):
            load_index(path)
