"""Unit tests for result merging."""

import pytest

from repro.engine import SearchHit
from repro.metasearch import merge_hits


def hit(sim, doc, engine="e"):
    return SearchHit(similarity=sim, doc_id=doc, engine=engine)


class TestMergeHits:
    def test_global_descending_order(self):
        merged = merge_hits(
            [
                [hit(0.9, "a1"), hit(0.2, "a2")],
                [hit(0.5, "b1"), hit(0.4, "b2")],
            ]
        )
        assert [h.doc_id for h in merged] == ["a1", "b1", "b2", "a2"]

    def test_limit(self):
        merged = merge_hits([[hit(0.9, "a"), hit(0.8, "b"), hit(0.7, "c")]], limit=2)
        assert len(merged) == 2

    def test_limit_zero(self):
        assert merge_hits([[hit(0.9, "a")]], limit=0) == []

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            merge_hits([[hit(0.9, "a")]], limit=-1)

    def test_deterministic_tie_break(self):
        merged = merge_hits(
            [[hit(0.5, "z", "e2")], [hit(0.5, "a", "e1")]]
        )
        assert [h.doc_id for h in merged] == ["a", "z"]

    def test_empty_inputs(self):
        assert merge_hits([]) == []
        assert merge_hits([[], []]) == []

    def test_engine_attribution_preserved(self):
        merged = merge_hits([[hit(0.5, "a", "news")], [hit(0.4, "b", "web")]])
        assert merged[0].engine == "news"
        assert merged[1].engine == "web"


class TestIterableInputs:
    def test_generator_result_lists(self):
        def lazy(prefix, n):
            for i in range(n):
                yield hit(0.5 - 0.1 * i, f"{prefix}{i}")

        merged = merge_hits(iter([lazy("a", 2), lazy("b", 1)]))
        assert [h.doc_id for h in merged] == ["a0", "b0", "a1"]

    def test_mixed_iterable_kinds(self):
        merged = merge_hits(
            [
                (hit(0.9, "t"),),  # tuple
                [hit(0.8, "l")],  # list
                (hit(s, d) for s, d in [(0.7, "g")]),  # generator
            ]
        )
        assert [h.doc_id for h in merged] == ["t", "l", "g"]
