"""Unit tests for result merging."""

import pytest

from repro.engine import SearchHit
from repro.metasearch import merge_hits


def hit(sim, doc, engine="e"):
    return SearchHit(similarity=sim, doc_id=doc, engine=engine)


class TestMergeHits:
    def test_global_descending_order(self):
        merged = merge_hits(
            [
                [hit(0.9, "a1"), hit(0.2, "a2")],
                [hit(0.5, "b1"), hit(0.4, "b2")],
            ]
        )
        assert [h.doc_id for h in merged] == ["a1", "b1", "b2", "a2"]

    def test_limit(self):
        merged = merge_hits([[hit(0.9, "a"), hit(0.8, "b"), hit(0.7, "c")]], limit=2)
        assert len(merged) == 2

    def test_limit_zero(self):
        assert merge_hits([[hit(0.9, "a")]], limit=0) == []

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            merge_hits([[hit(0.9, "a")]], limit=-1)

    def test_deterministic_tie_break(self):
        merged = merge_hits(
            [[hit(0.5, "z", "e2")], [hit(0.5, "a", "e1")]]
        )
        assert [h.doc_id for h in merged] == ["a", "z"]

    def test_empty_inputs(self):
        assert merge_hits([]) == []
        assert merge_hits([[], []]) == []

    def test_engine_attribution_preserved(self):
        merged = merge_hits([[hit(0.5, "a", "news")], [hit(0.4, "b", "web")]])
        assert merged[0].engine == "news"
        assert merged[1].engine == "web"
