"""Unit tests for the analyze / allocate / import-trec / stats CLI commands."""

import json

import pytest

from repro.cli import main
from repro.corpus import Collection, Document, save_collection
from repro.engine import SearchEngine
from repro.representatives import build_representative


@pytest.fixture
def collection_file(tmp_path):
    collection = Collection.from_documents(
        "db",
        [
            Document("d1", terms=["rocket", "orbit", "rocket", "engine"]),
            Document("d2", terms=["sauce", "basil", "engine"]),
            Document("d3", terms=["rocket"]),
        ],
    )
    path = tmp_path / "db.jsonl"
    save_collection(collection, path)
    return path


class TestAnalyze:
    def test_prints_statistics(self, collection_file, capsys):
        assert main(["analyze", "--collection", str(collection_file)]) == 0
        out = capsys.readouterr().out
        assert "documents            : 3" in out
        assert "Zipf exponent" in out
        assert "representative" in out


class TestAllocate:
    def test_prints_quotas(self, tmp_path, capsys):
        rep_paths = []
        for name, docs in (
            ("rich", [["x", "y"], ["x"], ["x", "z"]]),
            ("poor", [["x", "a", "b", "c", "d"]]),
        ):
            engine = SearchEngine(
                Collection.from_documents(
                    name,
                    [Document(f"{name}-{i}", terms=t) for i, t in enumerate(docs)],
                )
            )
            path = tmp_path / f"{name}.rep.json"
            build_representative(engine).save(path)
            rep_paths.append(str(path))
        assert main(
            ["allocate", "--representatives", *rep_paths, "--query", "x",
             "-k", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "desired  : 3 documents" in out
        assert "rich:" in out
        assert "poor:" in out


class TestImportTrec:
    def test_converts_and_saves(self, tmp_path, capsys):
        sgml = tmp_path / "wsj.sgml"
        sgml.write_text(
            "<DOC>\n<DOCNO>W-1</DOCNO>\n<TEXT>rocket engines roar</TEXT>\n</DOC>\n"
            "<DOC>\n<DOCNO>W-2</DOCNO>\n<TEXT>basil sauce simmers</TEXT>\n</DOC>\n"
        )
        out_path = tmp_path / "wsj.jsonl.gz"
        assert main(
            ["import-trec", str(sgml), "--name", "wsj", "--out", str(out_path)]
        ) == 0
        assert out_path.exists()
        assert "2 docs" in capsys.readouterr().out

    def test_limit_flag(self, tmp_path, capsys):
        sgml = tmp_path / "wsj.sgml"
        sgml.write_text(
            "<DOC>\n<DOCNO>W-1</DOCNO>\n<TEXT>one</TEXT>\n</DOC>\n"
            "<DOC>\n<DOCNO>W-2</DOCNO>\n<TEXT>two</TEXT>\n</DOC>\n"
        )
        out_path = tmp_path / "wsj.jsonl"
        assert main(
            ["import-trec", str(sgml), "--name", "wsj",
             "--out", str(out_path), "--limit", "1"]
        ) == 0
        assert "1 docs" in capsys.readouterr().out


class TestFleet:
    def test_runs_concurrent_fleet(self, capsys):
        assert main(
            ["fleet", "--groups", "4", "--queries", "6", "--workers", "4",
             "--cache-size", "64", "--scale", "small"]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet    : 4 engines, 6 queries" in out
        assert "workers=4" in out
        assert "failures : none" in out
        assert "cache    :" in out

    def test_serial_path_and_disabled_cache(self, capsys):
        assert main(
            ["fleet", "--groups", "3", "--queries", "4", "--workers", "1",
             "--cache-size", "0", "--scale", "small"]
        ) == 0
        out = capsys.readouterr().out
        assert "workers=1" in out
        assert "cache    :" not in out

    def test_hung_engine_degrades_gracefully(self, capsys):
        assert main(
            ["fleet", "--groups", "4", "--queries", "4", "--workers", "4",
             "--timeout", "0.3", "--hang-engines", "1",
             "--hang-seconds", "0.8", "--threshold", "0.1",
             "--scale", "small"]
        ) == 0
        out = capsys.readouterr().out
        assert "failures : 1 timeout" in out
        assert "hits" in out


STATS_FAST = ["stats", "--groups", "3", "--queries", "4"]


class TestStats:
    def test_json_output_parses(self, capsys):
        assert main(STATS_FAST + ["--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = {m["name"] for m in doc["metrics"]}
        assert "broker.searches" in names
        assert "dispatch.fanouts" in names
        assert "estimator.expansions" in names
        by_name = {m["name"]: m for m in doc["metrics"] if not m.get("labels")}
        assert by_name["broker.searches"]["value"] == 4.0

    def test_prometheus_output_format(self, capsys):
        assert main(STATS_FAST + ["--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_broker_searches_total counter" in out
        assert "repro_broker_searches_total 4.0" in out
        assert 'repro_dispatch_engine_seconds_bucket{engine="group00",le="+Inf"}' in out
        assert "repro_estimator_expansions_total" in out

    def test_out_flag_writes_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(STATS_FAST + ["--format", "json", "--out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["metrics"]
        assert f"wrote {path}" in capsys.readouterr().out

    def test_show_trace_keeps_stdout_parseable(self, capsys):
        assert main(STATS_FAST + ["--format", "json", "--show-trace"]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # trace must not pollute stdout
        assert "estimate" in captured.err
        assert "merge" in captured.err

    def test_deterministic_given_seed(self, capsys):
        assert main(STATS_FAST + ["--format", "json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(STATS_FAST + ["--format", "json"]) == 0
        second = json.loads(capsys.readouterr().out)

        def counters(doc):
            return {
                (m["name"], tuple(sorted(m.get("labels", {}).items()))): m["value"]
                for m in doc["metrics"]
                if m["kind"] == "counter" and "seconds" not in m["name"]
            }

        assert counters(first) == counters(second)


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro.version import package_version

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert package_version() in out
        assert "repro-usefulness" in out

    def test_version_matches_serving_header(self):
        """The CLI flag and the serving layer report the same version."""
        from repro.version import package_version
        from repro.serving import EngineApp, ServingServer
        import urllib.request

        engine = SearchEngine(
            Collection.from_documents("v", [Document("d", terms=["x"])])
        )
        server = ServingServer(EngineApp(engine))
        server.start_background()
        try:
            response = urllib.request.urlopen(
                server.url + "/healthz", timeout=5
            )
            assert response.headers["X-Repro-Version"] == package_version()
            assert response.headers["Server"] == (
                f"repro-serving/{package_version()}"
            )
        finally:
            server.drain(timeout=5)


class TestConvertRep:
    @pytest.fixture
    def rep_json(self, tmp_path):
        engine = SearchEngine(
            Collection.from_documents(
                "db",
                [
                    Document("d1", terms=["rocket", "orbit", "rocket"]),
                    Document("d2", terms=["sauce", "basil", "orbit"]),
                ],
            )
        )
        path = tmp_path / "rep.json"
        build_representative(engine).save(path)
        return path

    def test_round_trip_is_lossless(self, rep_json, tmp_path, capsys):
        from repro.representatives import DatabaseRepresentative

        npz = tmp_path / "rep.npz"
        back = tmp_path / "back.json"
        assert main(["convert-rep", str(rep_json), str(npz)]) == 0
        assert main(["convert-rep", str(npz), str(back)]) == 0
        original = DatabaseRepresentative.load(rep_json)
        restored = DatabaseRepresentative.load(back)
        assert restored.name == original.name
        assert restored.n_documents == original.n_documents
        assert dict(restored.items()) == dict(original.items())
        out = capsys.readouterr().out
        assert "rep.npz" in out

    def test_requires_exactly_one_npz_side(self, rep_json, tmp_path, capsys):
        assert (
            main(["convert-rep", str(rep_json), str(tmp_path / "o.json")]) == 2
        )
        assert "exactly one" in capsys.readouterr().out
