"""Unit tests for the concurrent dispatch layer (fault injection)."""

import time

import pytest

from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.metasearch import ConcurrentDispatcher, MetasearchBroker
from repro.representatives import build_representative


def make_engine(name, docs):
    return SearchEngine(
        Collection.from_documents(
            name, [Document(f"{name}-{i}", terms=t) for i, t in enumerate(docs)]
        )
    )


def register_double(broker, double):
    """Register a fault-injection wrapper with its inner engine's
    representative (the wrapper has no index of its own)."""
    broker.register(double, representative=build_representative(double.inner))


class TestDispatcherValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            ConcurrentDispatcher(workers=0)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout"):
            ConcurrentDispatcher(timeout=0.0)

    def test_retries_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="retries"):
            ConcurrentDispatcher(retries=-1)

    def test_backoff_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="backoff"):
            ConcurrentDispatcher(backoff=-0.1)

    def test_serial_timeout_rejected(self):
        """Regression: workers=1 routed to the serial path, which silently
        never enforced a configured timeout — now an explicit error."""
        with pytest.raises(ValueError, match="workers > 1"):
            ConcurrentDispatcher(workers=1, timeout=0.5)

    def test_serial_timeout_rejected_at_broker(self):
        with pytest.raises(ValueError, match="workers > 1"):
            MetasearchBroker(workers=1, timeout=0.5)

    def test_serial_without_timeout_still_allowed(self):
        assert ConcurrentDispatcher(workers=1, timeout=None).timeout is None

    def test_concurrent_timeout_still_allowed(self):
        assert ConcurrentDispatcher(workers=2, timeout=0.5).timeout == 0.5


class TestSerialDispatch:
    def test_results_preserve_order_and_content(self):
        dispatcher = ConcurrentDispatcher(workers=1)
        report = dispatcher.dispatch({"a": lambda: [1], "b": lambda: [2, 3]})
        assert list(report.results) == ["a", "b"]
        assert report.results == {"a": [1], "b": [2, 3]}
        assert report.ok
        assert set(report.latencies) == {"a", "b"}

    def test_error_is_degraded_not_fatal(self):
        def boom():
            raise RuntimeError("down")

        dispatcher = ConcurrentDispatcher(workers=1)
        report = dispatcher.dispatch({"bad": boom, "good": lambda: [7]})
        assert report.results == {"good": [7]}
        [failure] = report.failures
        assert failure.engine == "bad"
        assert failure.kind == "error"
        assert "RuntimeError: down" in failure.message

    def test_empty_dispatch(self):
        report = ConcurrentDispatcher(workers=4).dispatch({})
        assert report.ok and report.results == {}


class TestConcurrentDispatch:
    def test_matches_serial_results(self):
        calls = {name: (lambda n=name: [n, n]) for name in "abcdef"}
        serial = ConcurrentDispatcher(workers=1).dispatch(calls)
        concurrent = ConcurrentDispatcher(workers=4).dispatch(calls)
        assert concurrent.results == serial.results
        assert list(concurrent.results) == list(serial.results)

    def test_timeout_abandons_slow_engine(self):
        def slow():
            time.sleep(1.0)
            return ["late"]

        dispatcher = ConcurrentDispatcher(workers=2, timeout=0.15)
        start = time.perf_counter()
        report = dispatcher.dispatch({"slow": slow, "fast": lambda: ["hit"]})
        elapsed = time.perf_counter() - start
        assert elapsed < 0.8  # did not wait out the 1s sleep
        assert report.results == {"fast": ["hit"]}
        [failure] = report.failures
        assert failure.engine == "slow"
        assert failure.kind == "timeout"

    def test_retry_then_succeed(self):
        state = {"calls": 0}

        def flaky():
            state["calls"] += 1
            if state["calls"] == 1:
                raise ConnectionError("transient")
            return ["ok"]

        dispatcher = ConcurrentDispatcher(workers=2, retries=1, backoff=0.0)
        report = dispatcher.dispatch({"flaky": flaky})
        assert report.ok
        assert report.results == {"flaky": ["ok"]}
        assert state["calls"] == 2

    def test_retry_exhausted(self):
        state = {"calls": 0}

        def broken():
            state["calls"] += 1
            raise ConnectionError("still down")

        dispatcher = ConcurrentDispatcher(workers=2, retries=2, backoff=0.0)
        report = dispatcher.dispatch({"broken": broken, "good": lambda: [1]})
        assert report.results == {"good": [1]}
        [failure] = report.failures
        assert failure.kind == "error"
        assert failure.attempts == 3  # initial call + 2 retries
        assert state["calls"] == 3

    def test_timeout_is_not_retried(self):
        state = {"calls": 0}

        def hang():
            state["calls"] += 1
            time.sleep(0.6)
            return []

        dispatcher = ConcurrentDispatcher(workers=2, timeout=0.1, retries=3)
        report = dispatcher.dispatch({"hang": hang})
        [failure] = report.failures
        assert failure.kind == "timeout"
        assert state["calls"] == 1

    def test_all_engines_down(self):
        def boom():
            raise OSError("no route")

        report = ConcurrentDispatcher(workers=4).dispatch(
            {name: boom for name in "abc"}
        )
        assert report.results == {}
        assert {f.engine for f in report.failures} == {"a", "b", "c"}
        assert not report.ok


def assert_report_invariants(report, calls):
    """Every dispatched engine lands in exactly one of results/failures,
    and latencies cover every engine exactly once."""
    failed = {f.engine for f in report.failures}
    answered = set(report.results)
    assert not (failed & answered), "engine in both results and failures"
    assert failed | answered == set(calls), "engine missing from the report"
    assert len(report.failures) == len(failed), "duplicate failure records"
    assert set(report.latencies) == set(calls)
    assert all(lat >= 0.0 for lat in report.latencies.values())


class TestDeadlineRaceWindow:
    """The window between the deadline check and the outcome snapshot."""

    def test_finish_near_deadline_lands_in_exactly_one_bucket(self):
        """An engine finishing right at the deadline may be seen as either
        answered or timed out — but never both, and never neither."""
        timeout = 0.08

        def near_deadline():
            time.sleep(timeout)  # finishes inside the race window
            return ["close"]

        calls = {"edge": near_deadline, "fast": lambda: ["hit"]}
        for _ in range(5):
            report = ConcurrentDispatcher(workers=2, timeout=timeout).dispatch(calls)
            assert_report_invariants(report, calls)
            assert report.results.get("fast") == ["hit"]
            if "edge" in report.results:
                assert report.results["edge"] == ["close"]
            else:
                [failure] = report.failures
                assert failure.engine == "edge"
                assert failure.kind == "timeout"

    def test_cancelled_before_start_reported_as_timeout(self):
        """With both workers pinned past the deadline, a queued engine's
        future is cancelled before it ever starts — it must surface as a
        timeout with zero attempts, not vanish from the report."""
        state = {"third_ran": False}

        def hang():
            time.sleep(0.5)
            return []

        def third():
            state["third_ran"] = True
            return ["never"]

        calls = {"hang-a": hang, "hang-b": hang, "queued": third}
        report = ConcurrentDispatcher(workers=2, timeout=0.1).dispatch(calls)
        assert_report_invariants(report, calls)
        assert not state["third_ran"]
        by_engine = {f.engine: f for f in report.failures}
        assert set(by_engine) == set(calls)
        queued = by_engine["queued"]
        assert queued.kind == "timeout"
        assert queued.attempts == 0

    def test_late_finish_after_deadline_keeps_invariants(self):
        """An engine that outlives the deadline by a wide margin is a clean
        timeout; the worker thread finishing later must not corrupt the
        already-assembled report."""

        def slow():
            time.sleep(0.4)
            return ["late"]

        calls = {"slow": slow, "fast": lambda: ["hit"]}
        report = ConcurrentDispatcher(workers=2, timeout=0.05).dispatch(calls)
        assert_report_invariants(report, calls)
        assert report.results == {"fast": ["hit"]}
        [failure] = report.failures
        assert failure.engine == "slow" and failure.kind == "timeout"
        time.sleep(0.5)  # let the abandoned worker finish
        assert report.results == {"fast": ["hit"]}  # report unchanged

    def test_mixed_outcomes_keep_invariants(self):
        def boom():
            raise OSError("down")

        def slow():
            time.sleep(0.5)
            return []

        calls = {
            "ok": lambda: [1],
            "err": boom,
            "slow": slow,
            "ok2": lambda: [2],
        }
        report = ConcurrentDispatcher(workers=4, timeout=0.1).dispatch(calls)
        assert_report_invariants(report, calls)
        kinds = {f.engine: f.kind for f in report.failures}
        assert kinds == {"err": "error", "slow": "timeout"}
        assert set(report.results) == {"ok", "ok2"}


class TestBrokerFaultInjection:
    """End-to-end: broker search survives slow/flaky/dead engines."""

    @pytest.fixture
    def fleet_docs(self):
        return {
            "space": [["rocket", "orbit"], ["rocket"]],
            "food": [["rocket", "sauce"], ["sauce"]],
        }

    def test_slow_engine_times_out_healthy_results_survive(
        self, engine_doubles, fleet_docs
    ):
        broker = MetasearchBroker(workers=4, timeout=0.15)
        slow = engine_doubles.SlowEngine(
            make_engine("space", fleet_docs["space"]), delay=1.0
        )
        register_double(broker, slow)
        broker.register(make_engine("food", fleet_docs["food"]))
        start = time.perf_counter()
        response = broker.search(Query.from_terms(["rocket"]), 0.1)
        assert time.perf_counter() - start < 0.8
        assert set(response.invoked) == {"space", "food"}
        assert response.degraded
        assert [f.engine for f in response.failures] == ["space"]
        assert response.failures[0].kind == "timeout"
        assert response.answered == ["food"]
        assert response.hits and all(h.engine == "food" for h in response.hits)

    def test_flaky_engine_retries_then_succeeds(self, engine_doubles, fleet_docs):
        broker = MetasearchBroker(workers=2, retries=2, backoff=0.0)
        flaky = engine_doubles.FlakyEngine(
            make_engine("space", fleet_docs["space"]), failures=2
        )
        register_double(broker, flaky)
        response = broker.search(Query.from_terms(["rocket"]), 0.1)
        assert not response.degraded
        assert flaky.calls == 3
        assert {h.engine for h in response.hits} == {"space"}

    def test_flaky_engine_retry_exhausted(self, engine_doubles, fleet_docs):
        broker = MetasearchBroker(workers=2, retries=1, backoff=0.0)
        flaky = engine_doubles.FlakyEngine(
            make_engine("space", fleet_docs["space"]), failures=5
        )
        register_double(broker, flaky)
        broker.register(make_engine("food", fleet_docs["food"]))
        response = broker.search(Query.from_terms(["rocket"]), 0.1)
        [failure] = response.failures
        assert failure.engine == "space"
        assert failure.kind == "error"
        assert failure.attempts == 2
        assert response.answered == ["food"]

    def test_all_engines_down_yields_empty_degraded_response(
        self, engine_doubles, fleet_docs
    ):
        broker = MetasearchBroker(workers=2)
        for name, docs in fleet_docs.items():
            register_double(
                broker, engine_doubles.BrokenEngine(make_engine(name, docs))
            )
        response = broker.search(Query.from_terms(["rocket"]), 0.1)
        assert response.hits == []
        assert len(response.failures) == 2
        assert response.answered == []
        assert len(response.estimates) == 2  # estimation still worked

    def test_serial_broker_also_degrades(self, engine_doubles, fleet_docs):
        broker = MetasearchBroker(workers=1)
        register_double(
            broker,
            engine_doubles.BrokenEngine(make_engine("space", fleet_docs["space"])),
        )
        broker.register(make_engine("food", fleet_docs["food"]))
        response = broker.search(Query.from_terms(["rocket"]), 0.1)
        assert [f.engine for f in response.failures] == ["space"]
        assert response.answered == ["food"]

    def test_latencies_cover_invoked_engines(self, fleet_docs):
        broker = MetasearchBroker(workers=4)
        for name, docs in fleet_docs.items():
            broker.register(make_engine(name, docs))
        response = broker.search(Query.from_terms(["rocket"]), 0.1)
        assert set(response.latencies) == set(response.invoked)
        assert all(lat >= 0.0 for lat in response.latencies.values())


class TestRetryBackoffBudget:
    """The retry sleep is jittered, clamped to the remaining deadline, and
    skipped outright once the budget is spent."""

    @staticmethod
    def failing_call(exc_factory=lambda: RuntimeError("boom")):
        def call():
            raise exc_factory()

        return call

    @pytest.fixture
    def sleeps(self, monkeypatch):
        """Record backoff sleeps without actually sleeping."""
        recorded = []
        monkeypatch.setattr(
            "repro.metasearch.dispatch.time.sleep",
            lambda seconds: recorded.append(seconds),
        )
        return recorded

    def test_jitter_stays_in_half_to_full_base(self, sleeps):
        dispatcher = ConcurrentDispatcher(retries=3, backoff=0.1)
        with pytest.raises(RuntimeError):
            dispatcher._call_with_retry("e", self.failing_call())
        assert len(sleeps) == 3
        for attempt, slept in enumerate(sleeps, start=1):
            base = 0.1 * 2 ** (attempt - 1)
            assert base / 2 <= slept <= base, (
                f"retry {attempt} slept {slept}, outside [{base / 2}, {base}]"
            )

    def test_sleep_clamped_to_fanout_deadline(self, sleeps):
        dispatcher = ConcurrentDispatcher(workers=2, retries=1, backoff=10.0)
        expires_at = time.perf_counter() + 0.05
        with pytest.raises(RuntimeError):
            dispatcher._call_with_retry("e", self.failing_call(), expires_at)
        assert len(sleeps) == 1
        # Un-clamped jitter would sleep >= 5s; the budget was 50ms.
        assert sleeps[0] <= 0.05

    def test_sleep_clamped_to_ambient_deadline(self, sleeps):
        from repro.serving import Deadline, deadline_scope

        dispatcher = ConcurrentDispatcher(retries=1, backoff=10.0)
        with deadline_scope(Deadline(0.05)):
            with pytest.raises(RuntimeError):
                dispatcher._call_with_retry("e", self.failing_call())
        assert len(sleeps) == 1
        assert sleeps[0] <= 0.05

    def test_retry_skipped_when_budget_already_spent(self, sleeps):
        """An exhausted deadline surfaces the failure immediately instead
        of sleeping into a retry that can never answer in time."""
        from repro.serving import Deadline, deadline_scope

        dispatcher = ConcurrentDispatcher(retries=5, backoff=0.05)
        calls = []
        with deadline_scope(Deadline(0.0)):
            with pytest.raises(RuntimeError) as excinfo:
                dispatcher._call_with_retry(
                    "e", lambda: calls.append(1) or (_ for _ in ()).throw(
                        RuntimeError("boom")
                    )
                )
        assert len(calls) == 1  # no second attempt
        assert sleeps == []  # and no sleep at all
        assert excinfo.value._dispatch_attempts == 1

    def test_retry_skipped_when_fanout_deadline_spent(self, sleeps):
        dispatcher = ConcurrentDispatcher(workers=2, retries=5, backoff=0.05)
        expires_at = time.perf_counter() - 1.0  # already past
        with pytest.raises(RuntimeError) as excinfo:
            dispatcher._call_with_retry("e", self.failing_call(), expires_at)
        assert sleeps == []
        assert excinfo.value._dispatch_attempts == 1

    def test_non_retryable_exception_fails_fast(self, sleeps):
        class FatalError(RuntimeError):
            retryable = False

        dispatcher = ConcurrentDispatcher(retries=5, backoff=0.05)
        attempts = []
        with pytest.raises(FatalError):
            dispatcher._call_with_retry(
                "e",
                lambda: attempts.append(1) or (_ for _ in ()).throw(
                    FatalError("gone")
                ),
            )
        assert len(attempts) == 1
        assert sleeps == []

    def test_failure_kind_attribute_overrides_error_kind(self):
        class BudgetGone(RuntimeError):
            retryable = False
            failure_kind = "timeout"

        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        dispatcher = ConcurrentDispatcher(retries=2, registry=registry)
        report = dispatcher.dispatch(
            {"e": self.failing_call(lambda: BudgetGone("spent"))}
        )
        assert report.failures[0].kind == "timeout"
        assert report.failures[0].attempts == 1
        assert registry.value("dispatch.timeouts") == 1
        assert registry.value("dispatch.retries") in (None, 0)

    def test_zero_backoff_never_sleeps(self, sleeps):
        dispatcher = ConcurrentDispatcher(retries=3, backoff=0.0)
        with pytest.raises(RuntimeError):
            dispatcher._call_with_retry("e", self.failing_call())
        assert sleeps == []
