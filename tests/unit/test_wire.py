"""Unit tests for the serving wire schema."""

import json

import pytest

from repro.core import SubrangeEstimator
from repro.core.types import Usefulness
from repro.corpus import Query
from repro.engine import SearchHit
from repro.metasearch import MetasearchResponse
from repro.metasearch.dispatch import EngineFailure
from repro.metasearch.selection import EstimatedUsefulness
from repro.representatives import DatabaseRepresentative, TermStats
from repro.representatives.quantized import quantize_representative
from repro.serving import (
    WireFormatError,
    decode_hits,
    encode_hits,
    estimate_from_wire,
    estimate_to_wire,
    failure_from_wire,
    failure_to_wire,
    query_from_wire,
    query_to_wire,
    representative_from_wire,
    representative_to_wire,
    response_from_wire,
    response_to_wire,
    usefulness_from_wire,
    usefulness_to_wire,
)


def roundtrip_json(payload):
    """Push a payload through an actual JSON encode/decode, as HTTP would."""
    return json.loads(json.dumps(payload))


@pytest.fixture
def representative():
    return DatabaseRepresentative(
        "db1",
        n_documents=42,
        term_stats={
            "rocket": TermStats(0.5, 0.25, 0.1, max_weight=0.75),
            "orbit": TermStats(1 / 3, 0.125, 0.0625, max_weight=0.5),
        },
    )


class TestQueryWire:
    def test_roundtrip(self):
        query = Query(terms=("a", "b"), weights=(2.0, 0.1))
        assert query_from_wire(roundtrip_json(query_to_wire(query))) == query

    def test_wrong_kind_rejected(self):
        with pytest.raises(WireFormatError):
            query_from_wire({"kind": "hits", "terms": [], "weights": []})

    def test_missing_field_rejected(self):
        with pytest.raises(WireFormatError):
            query_from_wire({"kind": "query", "terms": ["a"]})

    def test_invalid_query_rejected(self):
        # Query itself rejects non-positive weights; the decoder wraps that.
        with pytest.raises(WireFormatError):
            query_from_wire(
                {"kind": "query", "terms": ["a"], "weights": [-1.0]}
            )


class TestHitsWire:
    def test_roundtrip(self):
        hits = [
            SearchHit(0.9, "d1", engine="e1"),
            SearchHit(0.1 + 0.2, "d2", engine=None),
        ]
        decoded = list(decode_hits(roundtrip_json(encode_hits(hits))))
        assert decoded == hits

    def test_decoder_is_lazy(self):
        rows = iter([[0.5, "d", "e"], ["bogus"]])
        gen = decode_hits(rows)
        assert next(gen).doc_id == "d"
        with pytest.raises(WireFormatError):
            next(gen)


class TestScalarWire:
    def test_usefulness_roundtrip(self):
        u = Usefulness(nodoc=3.7, avgsim=0.123456789012345)
        assert usefulness_from_wire(roundtrip_json(usefulness_to_wire(u))) == u

    def test_estimate_roundtrip(self):
        e = EstimatedUsefulness("db", Usefulness(1.5, 0.25))
        assert estimate_from_wire(roundtrip_json(estimate_to_wire(e))) == e

    def test_failure_roundtrip(self):
        f = EngineFailure("db", "timeout", attempts=2, elapsed=1.5, message="m")
        assert failure_from_wire(roundtrip_json(failure_to_wire(f))) == f


class TestResponseWire:
    def test_roundtrip(self):
        response = MetasearchResponse(
            hits=[SearchHit(0.5, "d", engine="e")],
            invoked=["e", "f"],
            estimates=[EstimatedUsefulness("e", Usefulness(2.0, 0.5))],
            failures=[EngineFailure("f", "error", 1, 0.1, "boom")],
            latencies={"e": 0.01, "f": 0.1},
        )
        decoded = response_from_wire(roundtrip_json(response_to_wire(response)))
        assert decoded == response

    def test_trace_not_shipped(self):
        response = MetasearchResponse(hits=[], invoked=[], estimates=[])
        assert "trace" not in response_to_wire(response)


class TestRepresentativeWire:
    def test_plain_roundtrip_is_exact(self, representative):
        wire = roundtrip_json(representative_to_wire(representative))
        assert representative_from_wire(wire) == representative

    def test_quantized_equals_local_quantization(self, representative):
        wire = roundtrip_json(
            representative_to_wire(representative, quantize=256)
        )
        decoded = representative_from_wire(wire)
        assert decoded == quantize_representative(representative, levels=256)

    def test_quantized_codes_pack_one_byte_per_term_per_field(
        self, representative
    ):
        import base64

        wire = representative_to_wire(representative, quantize=256)
        for spec in wire["fields"].values():
            raw = base64.b64decode(spec["codes"])
            assert len(raw) == len(wire["terms"])  # 1 byte/term/field

    def test_quantized_estimates_match(self, representative):
        query = Query(terms=("rocket", "orbit"), weights=(1.0, 1.0))
        estimator = SubrangeEstimator()
        local = estimator.estimate(
            query, quantize_representative(representative, levels=256), 0.2
        )
        wire = roundtrip_json(
            representative_to_wire(representative, quantize=256)
        )
        remote = estimator.estimate(query, representative_from_wire(wire), 0.2)
        assert remote == local

    def test_many_levels_fall_back_to_int_lists(self, representative):
        wire = roundtrip_json(
            representative_to_wire(representative, quantize=300)
        )
        for spec in wire["fields"].values():
            assert isinstance(spec["codes"], list)
        decoded = representative_from_wire(wire)
        assert decoded == quantize_representative(representative, levels=300)

    def test_empty_representative(self):
        empty = DatabaseRepresentative("empty", n_documents=0, term_stats={})
        for quantize in (None, 256):
            wire = roundtrip_json(
                representative_to_wire(empty, quantize=quantize)
            )
            assert representative_from_wire(wire) == empty

    def test_bad_levels_rejected(self, representative):
        with pytest.raises(ValueError):
            representative_to_wire(representative, quantize=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireFormatError):
            representative_from_wire({"kind": "nope"})

    def test_code_out_of_range_rejected(self, representative):
        wire = representative_to_wire(representative, quantize=300)
        wire["fields"]["mean"]["codes"][0] = 999
        with pytest.raises(WireFormatError):
            representative_from_wire(wire)

    def test_wrong_code_count_rejected(self, representative):
        wire = representative_to_wire(representative, quantize=300)
        wire["fields"]["mean"]["codes"].append(0)
        with pytest.raises(WireFormatError):
            representative_from_wire(wire)

    def test_missing_required_field_rejected(self, representative):
        wire = representative_to_wire(representative, quantize=300)
        del wire["fields"]["std"]
        with pytest.raises(WireFormatError):
            representative_from_wire(wire)


class TestShardWirePayloads:
    """The shard RPC payloads are compositions of the existing codecs;
    what matters is that a full JSON round trip preserves the exact
    values the coordinator's bit-exact merge depends on."""

    def test_estimate_row_roundtrip_preserves_sort_key(self):
        row = [
            EstimatedUsefulness(
                engine=f"engine{i}",
                usefulness=Usefulness(nodoc=7 - i, avgsim=0.1 * i + 1e-17),
            )
            for i in range(3)
        ]
        back = [
            estimate_from_wire(e)
            for e in roundtrip_json([estimate_to_wire(e) for e in row])
        ]
        assert back == row
        assert [e.sort_key for e in back] == [e.sort_key for e in row]

    def test_failure_roundtrip_preserves_shard_prefixed_message(self):
        failure = EngineFailure(
            engine="engine2",
            kind="timeout",
            attempts=1,
            elapsed=0.125,
            message="shard 1 at http://127.0.0.1:9: no answer within 5s",
        )
        assert failure_from_wire(roundtrip_json(failure_to_wire(failure))) == (
            failure
        )

    def test_retry_after_is_integral_on_the_wire(self):
        """The shed response's Retry-After is RFC 9110 delta-seconds:
        an integer string, rounded up from the configured float hint."""
        from repro.serving import HTTPError

        for hint, expected in ((1.2, "2"), (1.0, "1"), (0.2, "1")):
            header = HTTPError(
                503, "shed", retry_after=hint
            ).to_response().headers["Retry-After"]
            assert header == expected
            assert header == str(int(header))  # integral, never "1.2"
