"""Unit tests for the observability layer: registry, traces, exporters,
and their wiring through the broker's query path."""

import json
import threading

import pytest

from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker
from repro.obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    QueryTrace,
    registry_to_json,
    registry_to_prometheus,
)


def make_engine(name, docs):
    return SearchEngine(
        Collection.from_documents(
            name, [Document(f"{name}-{i}", terms=t) for i, t in enumerate(docs)]
        )
    )


def make_broker(**kwargs):
    broker = MetasearchBroker(**kwargs)
    broker.register(make_engine("space", [["rocket", "orbit"], ["rocket"]]))
    broker.register(make_engine("food", [["recipe", "sauce"], ["sauce"]]))
    return broker


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            MetricsRegistry().counter("c").inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.counter("c", labels={"a": "1"}) is not registry.counter("c")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ValueError, match="already a counter"):
            registry.gauge("metric")

    def test_thread_safety_under_contention(self):
        counter = MetricsRegistry().counter("c")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000.0


class TestHistogram:
    def test_observations_bucketed_cumulatively(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 7.0, 100.0):
            hist.observe(value)
        buckets = dict(hist.cumulative_buckets())
        assert buckets[1.0] == 2  # 0.5 and the boundary value 1.0
        assert buckets[5.0] == 3
        assert buckets[10.0] == 4
        assert buckets[float("inf")] == 5
        assert hist.count == 5
        assert hist.sum == pytest.approx(111.5)

    def test_bounds_validated(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="ascending"):
            registry.histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            registry.histogram("h2", buckets=())

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        [metric] = registry.snapshot()
        assert metric["kind"] == "histogram"
        assert metric["buckets"][-1]["le"] == "+Inf"
        assert metric["buckets"][-1]["count"] == 1


class TestNullRegistry:
    def test_every_hook_is_a_noop(self):
        registry = NullRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert registry.snapshot() == []
        assert len(registry) == 0
        assert registry.value("c") is None

    def test_shared_instruments(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")
        assert registry.counter("a") is NULL_REGISTRY.counter("a")

    def test_exports_are_empty_but_valid(self):
        assert json.loads(registry_to_json(NULL_REGISTRY)) == {"metrics": []}
        assert registry_to_prometheus(NULL_REGISTRY) == ""


class TestQueryTrace:
    def test_span_context_manager_records_duration(self):
        trace = QueryTrace()
        with trace.span("stage", detail=1) as span:
            span.metadata["extra"] = 2
        [recorded] = trace.spans
        assert recorded.name == "stage"
        assert recorded.duration >= 0.0
        assert recorded.metadata == {"detail": 1, "extra": 2}

    def test_span_recorded_even_when_body_raises(self):
        trace = QueryTrace()
        with pytest.raises(RuntimeError):
            with trace.span("boom"):
                raise RuntimeError("x")
        assert trace.stage_names() == ["boom"]

    def test_add_external_duration(self):
        trace = QueryTrace()
        span = trace.add("dispatch:space", 0.25, ok=True)
        assert span.duration == 0.25
        assert span.start >= 0.0
        assert trace.duration_of("dispatch:space") == 0.25
        assert trace.duration_of("missing") is None

    def test_as_dict_and_format(self):
        trace = QueryTrace()
        with trace.span("estimate"):
            pass
        data = trace.as_dict()
        assert data["spans"][0]["name"] == "estimate"
        assert "estimate" in trace.format()
        assert len(trace) == 1


class TestExporters:
    @pytest.fixture
    def registry(self):
        registry = MetricsRegistry()
        registry.counter("broker.searches").inc(3)
        registry.gauge("cache.size").set(7)
        hist = registry.histogram(
            "dispatch.engine.seconds", buckets=(0.1, 1.0), labels={"engine": "space"}
        )
        hist.observe(0.05)
        hist.observe(0.5)
        return registry

    def test_json_round_trip(self, registry):
        doc = json.loads(registry_to_json(registry))
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["broker.searches"]["value"] == 3.0
        assert by_name["cache.size"]["value"] == 7.0
        hist = by_name["dispatch.engine.seconds"]
        assert hist["labels"] == {"engine": "space"}
        assert hist["count"] == 2

    def test_prometheus_text_format(self, registry):
        text = registry_to_prometheus(registry)
        assert "# TYPE repro_broker_searches_total counter" in text
        assert "repro_broker_searches_total 3.0" in text
        assert "repro_cache_size 7.0" in text
        assert (
            'repro_dispatch_engine_seconds_bucket{engine="space",le="0.1"} 1'
            in text
        )
        assert (
            'repro_dispatch_engine_seconds_bucket{engine="space",le="+Inf"} 2'
            in text
        )
        assert 'repro_dispatch_engine_seconds_count{engine="space"} 2' in text
        assert text.endswith("\n")

    def test_prometheus_prefix_override(self, registry):
        text = registry_to_prometheus(registry, prefix="")
        assert "broker_searches_total 3.0" in text
        assert "repro_" not in text


class TestBrokerTraceIntegration:
    def test_search_yields_all_pipeline_spans(self):
        broker = make_broker(cache_size=16)
        response = broker.search(Query.from_terms(["rocket"]), 0.1)
        names = response.trace.stage_names()
        for stage in ("estimate", "select", "dispatch", "merge"):
            assert stage in names
        for engine in response.invoked:
            assert f"dispatch:{engine}" in names
        assert response.trace.total_seconds > 0.0

    def test_search_all_traces_dispatch_and_merge(self):
        broker = make_broker()
        response = broker.search_all(Query.from_terms(["rocket"]), 0.1)
        names = response.trace.stage_names()
        assert "dispatch" in names and "merge" in names
        assert {f"dispatch:{e}" for e in broker.engine_names} <= set(names)

    def test_failed_engine_span_flagged_not_ok(self, engine_doubles):
        broker = MetasearchBroker(workers=2)
        from repro.representatives import build_representative

        inner = make_engine("space", [["rocket"]])
        broker.register(
            engine_doubles.BrokenEngine(inner),
            representative=build_representative(inner),
        )
        response = broker.search(Query.from_terms(["rocket"]), 0.0)
        [span] = [s for s in response.trace.spans if s.name == "dispatch:space"]
        assert span.metadata["ok"] is False

    def test_trace_excluded_from_response_equality(self):
        from repro.metasearch.broker import MetasearchResponse

        trace = QueryTrace()
        with trace.span("estimate"):
            pass
        a = MetasearchResponse(
            hits=[], invoked=["space"], estimates=[], failures=[],
            latencies={"space": 0.1}, trace=trace,
        )
        b = MetasearchResponse(
            hits=[], invoked=["space"], estimates=[], failures=[],
            latencies={"space": 0.1}, trace=QueryTrace(),
        )
        assert a.trace is not b.trace
        assert a == b  # identical answers, different timing


class TestBrokerMetricsIntegration:
    def test_search_records_counters_and_stages(self):
        registry = MetricsRegistry()
        broker = make_broker(cache_size=16, registry=registry)
        query = Query.from_terms(["rocket"])
        broker.search(query, 0.1)
        broker.search(query, 0.1)
        assert registry.value("broker.searches") == 2.0
        assert registry.value("broker.engines.invoked") >= 2.0
        assert registry.value("dispatch.fanouts") == 2.0
        assert registry.value("dispatch.attempts") >= 2.0
        # Second search served its estimates from cache.
        assert registry.value("cache.hits") == 2.0
        assert registry.value("cache.misses") == 2.0
        stage = registry.histogram("broker.stage.seconds", labels={"stage": "estimate"})
        assert stage.count == 2

    def test_estimator_expansion_metrics(self):
        registry = MetricsRegistry()
        broker = make_broker(cache_size=0, registry=registry)
        broker.search(Query.from_terms(["rocket", "sauce"]), 0.1)
        assert registry.value("estimator.expansions") == 2.0
        assert registry.histogram("estimator.genfunc.terms").count == 2
        assert registry.histogram("estimator.pruned.mass").count == 2

    def test_degraded_search_counted(self, engine_doubles):
        from repro.representatives import build_representative

        registry = MetricsRegistry()
        broker = MetasearchBroker(workers=2, registry=registry)
        inner = make_engine("space", [["rocket"]])
        broker.register(
            engine_doubles.BrokenEngine(inner),
            representative=build_representative(inner),
        )
        broker.search(Query.from_terms(["rocket"]), 0.0)
        assert registry.value("broker.searches.degraded") == 1.0
        assert registry.value("dispatch.errors") == 1.0

    def test_retries_counted(self, engine_doubles):
        from repro.representatives import build_representative

        registry = MetricsRegistry()
        broker = MetasearchBroker(workers=2, retries=2, backoff=0.0, registry=registry)
        inner = make_engine("space", [["rocket"]])
        flaky = engine_doubles.FlakyEngine(inner, failures=2)
        broker.register(flaky, representative=build_representative(inner))
        response = broker.search(Query.from_terms(["rocket"]), 0.0)
        assert not response.degraded
        assert registry.value("dispatch.retries") == 2.0
        assert registry.value("dispatch.attempts") == 3.0

    def test_timeout_counted(self, engine_doubles):
        from repro.representatives import build_representative

        registry = MetricsRegistry()
        broker = MetasearchBroker(workers=2, timeout=0.1, registry=registry)
        inner = make_engine("space", [["rocket"]])
        slow = engine_doubles.SlowEngine(inner, delay=0.6)
        broker.register(slow, representative=build_representative(inner))
        broker.search(Query.from_terms(["rocket"]), 0.0)
        assert registry.value("dispatch.timeouts") == 1.0

    def test_default_broker_keeps_null_registry(self):
        broker = make_broker()
        assert isinstance(broker.registry, NullRegistry)
        broker.search(Query.from_terms(["rocket"]), 0.1)
        assert broker.registry.snapshot() == []
