"""Unit tests for document-length normalization strategies."""

import numpy as np
import pytest

from repro.vsm import (
    CosineNormalizer,
    NullNormalizer,
    PivotedNormalizer,
    get_normalizer,
)


class TestCosineNormalizer:
    def test_divisor_is_norm(self):
        out = CosineNormalizer().divisors(np.array([2.0, 5.0]))
        assert out.tolist() == [2.0, 5.0]

    def test_zero_norm_safe(self):
        out = CosineNormalizer().divisors(np.array([0.0, 3.0]))
        assert out[0] == 1.0


class TestNullNormalizer:
    def test_all_ones(self):
        out = NullNormalizer().divisors(np.array([0.0, 2.0, 9.0]))
        assert out.tolist() == [1.0, 1.0, 1.0]


class TestPivotedNormalizer:
    def test_average_norm_unchanged(self):
        # At the pivot (the mean norm) the divisor equals the norm itself.
        norms = np.array([2.0, 4.0, 6.0])
        out = PivotedNormalizer(slope=0.3).divisors(norms)
        assert out[1] == pytest.approx(4.0)

    def test_short_docs_divided_more_than_cosine(self):
        # Below the pivot the pivoted divisor exceeds the norm, deflating
        # the short-document advantage Cosine gives.
        norms = np.array([2.0, 4.0, 6.0])
        out = PivotedNormalizer(slope=0.3).divisors(norms)
        assert out[0] > norms[0]
        assert out[2] < norms[2]

    def test_slope_one_is_cosine(self):
        norms = np.array([2.0, 4.0, 6.0])
        out = PivotedNormalizer(slope=1.0).divisors(norms)
        assert out.tolist() == pytest.approx(norms.tolist())

    def test_slope_zero_is_constant(self):
        norms = np.array([2.0, 4.0, 6.0])
        out = PivotedNormalizer(slope=0.0).divisors(norms)
        assert out.tolist() == pytest.approx([4.0, 4.0, 4.0])

    def test_slope_validated(self):
        with pytest.raises(ValueError):
            PivotedNormalizer(slope=1.5)

    def test_all_zero_norms_safe(self):
        out = PivotedNormalizer().divisors(np.array([0.0, 0.0]))
        assert np.all(out > 0)

    def test_divisors_positive(self):
        rng = np.random.default_rng(0)
        norms = rng.random(100) * 10
        out = PivotedNormalizer(slope=0.25).divisors(norms)
        assert np.all(out > 0)


class TestRegistry:
    @pytest.mark.parametrize("name", ["cosine", "none", "pivoted"])
    def test_lookup(self, name):
        assert get_normalizer(name).name == name

    def test_unknown(self):
        with pytest.raises(ValueError, match="cosine"):
            get_normalizer("bm25")
