"""Unit tests for hierarchical metasearch."""

import pytest

from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.metasearch import BrokerNode


def make_engine(name, docs):
    return SearchEngine(
        Collection.from_documents(
            name, [Document(f"{name}-{i}", terms=t) for i, t in enumerate(docs)]
        )
    )


@pytest.fixture
def tree():
    """Two inner nodes over four leaves:

    root
      news:  space(rocket docs), politics(election docs)
      life:  food(sauce docs),  sports(match docs)
    """
    space = BrokerNode.leaf(make_engine("space", [["rocket", "orbit"], ["rocket"]]))
    politics = BrokerNode.leaf(make_engine("politics", [["election", "vote"]]))
    food = BrokerNode.leaf(make_engine("food", [["sauce", "basil"]]))
    sports = BrokerNode.leaf(make_engine("sports", [["match", "goal"], ["goal"]]))
    news = BrokerNode.inner("news", [space, politics])
    life = BrokerNode.inner("life", [food, sports])
    return BrokerNode.inner("root", [news, life])


class TestStructure:
    def test_depth(self, tree):
        assert tree.depth() == 3

    def test_leaves_in_order(self, tree):
        assert [leaf.name for leaf in tree.leaves()] == [
            "space", "politics", "food", "sports",
        ]

    def test_document_counts_aggregate(self, tree):
        assert tree.n_documents == 6

    def test_inner_representative_covers_all_terms(self, tree):
        for term in ("rocket", "election", "sauce", "goal"):
            assert term in tree.representative

    def test_leaf_vs_inner_validation(self, tree):
        with pytest.raises(ValueError, match="leaf"):
            BrokerNode("bad")
        with pytest.raises(ValueError, match="at least one child"):
            BrokerNode.inner("empty", [])

    def test_repr(self, tree):
        assert "inner" in repr(tree)
        assert "leaf" in repr(tree.leaves()[0])


class TestSearch:
    def test_descends_only_into_relevant_subtree(self, tree):
        report = tree.search(Query.from_terms(["rocket"]), threshold=0.3)
        assert report.invoked_engines == ["space"]
        assert "life" in report.pruned_subtrees
        # The life subtree's leaves were never visited.
        assert "food" not in report.visited_nodes
        assert "sports" not in report.visited_nodes

    def test_returns_correct_hits(self, tree):
        report = tree.search(Query.from_terms(["goal"]), threshold=0.3)
        assert {h.engine for h in report.hits} == {"sports"}
        assert len(report.hits) == 2

    def test_no_match_prunes_everything(self, tree):
        report = tree.search(Query.from_terms(["zzz"]), threshold=0.1)
        assert report.hits == []
        assert report.invoked_engines == []
        assert report.visited_nodes == ["root"]

    def test_limit(self, tree):
        report = tree.search(Query.from_terms(["goal"]), threshold=0.0, limit=1)
        assert len(report.hits) == 1

    def test_single_term_guarantee_through_hierarchy(self, tree):
        """Single-term queries reach exactly the truly useful engines at
        any threshold — the guarantee composes across levels because inner
        representatives are exact merges."""
        for term in ("rocket", "election", "sauce", "goal", "orbit"):
            query = Query.from_terms([term])
            for threshold in (0.1, 0.3, 0.5, 0.7, 0.9):
                report = tree.search(query, threshold)
                assert sorted(report.invoked_engines) == sorted(
                    tree.true_engines(query, threshold)
                ), (term, threshold)

    def test_flat_equivalence(self, tree):
        """The hierarchy returns the same hit set as searching every leaf
        directly (selection only prunes engines that contribute nothing)."""
        query = Query.from_terms(["rocket", "goal"])
        threshold = 0.2
        report = tree.search(query, threshold)
        flat_hits = []
        for leaf in tree.leaves():
            flat_hits.extend(leaf.engine.search(query, threshold))
        assert {h.doc_id for h in report.hits} == {h.doc_id for h in flat_hits}


class TestLargerHierarchy:
    def test_three_level_synthetic(self, small_model):
        leaves = [
            BrokerNode.leaf(SearchEngine(small_model.generate_group(g)))
            for g in range(6)
        ]
        left = BrokerNode.inner("left", leaves[:3])
        right = BrokerNode.inner("right", leaves[3:])
        root = BrokerNode.inner("root", [left, right])
        assert root.n_documents == sum(leaf.n_documents for leaf in leaves)
        # Merged representative equals a flat merge over all leaves.
        from repro.representatives import merge_representatives

        flat = merge_representatives(
            "flat", [leaf.representative for leaf in leaves]
        )
        assert root.representative.n_terms == flat.n_terms
        sample_terms = [t for t, __ in list(flat.items())[:20]]
        for term in sample_terms:
            a = root.representative.get(term)
            b = flat.get(term)
            assert a.probability == pytest.approx(b.probability)
            assert a.mean == pytest.approx(b.mean)
            assert a.std == pytest.approx(b.std, abs=1e-9)
