"""Unit tests for the golden-query evaluation harness.

Covers the pure ranking metrics, the structural tripwires, the canonical
golden-set serialization round-trip, and the floor gate — everything the
``repro eval`` CLI composes, without building a fleet.
"""

import json
import math

import pytest

from repro.corpus import Query
from repro.evaluation.harness import (
    EstimatorTripwires,
    GoldenStratum,
    agreement_matrix,
    canonical_json_bytes,
    check_floors,
    kendall_tau_b,
    mrr,
    ndcg,
    reciprocal_rank,
    run_tripwires,
    set_f1,
    set_precision,
    set_recall,
    stratum_from_payload,
    stratum_payload,
)
from repro.evaluation.harness.ranking import mean


class TestSetMetrics:
    def test_perfect_selection(self):
        assert set_precision({"a", "b"}, {"a", "b"}) == 1.0
        assert set_recall({"a", "b"}, {"a", "b"}) == 1.0
        assert set_f1({"a", "b"}, {"a", "b"}) == 1.0

    def test_partial_overlap(self):
        selected, truth = {"a", "b"}, {"b", "c", "d"}
        assert set_precision(selected, truth) == pytest.approx(0.5)
        assert set_recall(selected, truth) == pytest.approx(1 / 3)
        p, r = 0.5, 1 / 3
        assert set_f1(selected, truth) == pytest.approx(2 * p * r / (p + r))

    def test_empty_sets_are_vacuously_perfect(self):
        assert set_precision(set(), {"a"}) == 1.0
        assert set_recall({"a"}, set()) == 1.0
        assert set_f1(set(), set()) == 1.0

    def test_disjoint_sets(self):
        assert set_precision({"a"}, {"b"}) == 0.0
        assert set_recall({"a"}, {"b"}) == 0.0
        assert set_f1({"a"}, {"b"}) == 0.0


class TestReciprocalRank:
    def test_first_position(self):
        assert reciprocal_rank(["a", "b"], {"a"}) == 1.0

    def test_later_position(self):
        assert reciprocal_rank(["a", "b", "c"], {"c"}) == pytest.approx(1 / 3)

    def test_no_relevant_is_none_not_zero(self):
        assert reciprocal_rank(["a", "b"], set()) is None
        assert reciprocal_rank(["a", "b"], {"z"}) is None

    def test_mrr_excludes_none_queries(self):
        value = mrr([["a", "b"], ["a", "b"]], [{"b"}, set()])
        assert value == pytest.approx(0.5)

    def test_mrr_all_none_is_none(self):
        assert mrr([["a"]], [set()]) is None

    def test_mrr_length_mismatch(self):
        with pytest.raises(ValueError, match="parallel"):
            mrr([["a"]], [{"a"}, {"a"}])


class TestNdcg:
    def test_perfect_ranking(self):
        assert ndcg(["a", "b", "c"], {"a": 3.0, "b": 2.0, "c": 1.0}) == 1.0

    def test_worst_ranking_is_positive_but_below_one(self):
        value = ndcg(["c", "b", "a"], {"a": 3.0, "b": 2.0, "c": 0.0})
        assert 0.0 < value < 1.0

    def test_all_zero_gains(self):
        assert ndcg(["a", "b"], {"a": 0.0, "b": 0.0}) == 1.0

    def test_missing_names_gain_zero(self):
        assert ndcg(["x", "a"], {"a": 1.0}) == pytest.approx(
            (1.0 / math.log2(3)) / 1.0
        )

    def test_negative_gain_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ndcg(["a"], {"a": -1.0})


class TestKendallTauB:
    def test_identical_orderings(self):
        a = {"x": 3.0, "y": 2.0, "z": 1.0}
        assert kendall_tau_b(a, dict(a)) == 1.0

    def test_reversed_orderings(self):
        a = {"x": 3.0, "y": 2.0, "z": 1.0}
        b = {"x": 1.0, "y": 2.0, "z": 3.0}
        assert kendall_tau_b(a, b) == -1.0

    def test_all_tied_side_returns_zero(self):
        a = {"x": 1.0, "y": 1.0}
        b = {"x": 2.0, "y": 1.0}
        assert kendall_tau_b(a, b) == 0.0

    def test_single_name_returns_zero(self):
        assert kendall_tau_b({"x": 1.0}, {"x": 5.0}) == 0.0

    def test_tie_correction(self):
        # One pair tied in a only, two clean concordant pairs:
        # tau = 2 / sqrt(3 * 2).
        a = {"x": 2.0, "y": 2.0, "z": 1.0}
        b = {"x": 3.0, "y": 2.0, "z": 1.0}
        assert kendall_tau_b(a, b) == pytest.approx(2 / math.sqrt(6))

    def test_name_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same names"):
            kendall_tau_b({"x": 1.0}, {"y": 1.0})

    def test_mean_empty_is_zero(self):
        assert mean([]) == 0.0


class TestTripwires:
    def test_clean_run(self):
        wires = run_tripwires(
            low_rows=[{"e0": 2.0, "e1": 0.0}],
            high_rows=[{"e0": 1.0, "e1": 0.0}],
            rounded_rows=[{"e0": 2, "e1": 0}],
            oracle_rows=[{"e0": 2.0, "e1": 0.0}],
        )
        assert wires.ok
        assert wires.as_dict()["ok"] is True

    def test_monotonicity_violation_counted(self):
        wires = run_tripwires(
            low_rows=[{"e0": 1.0}],
            high_rows=[{"e0": 2.0}],  # more docs above a higher threshold
            rounded_rows=[{"e0": 1}],
            oracle_rows=[{"e0": 1.0}],
        )
        assert wires.monotonicity_violations == 1
        assert not wires.ok

    def test_monotonicity_tolerates_float_noise(self):
        wires = run_tripwires(
            low_rows=[{"e0": 1.0}],
            high_rows=[{"e0": 1.0 + 1e-12}],
            rounded_rows=[{"e0": 1}],
            oracle_rows=[{"e0": 1.0}],
        )
        assert wires.monotonicity_violations == 0

    def test_degenerate_ranking_detected(self):
        wires = run_tripwires(
            low_rows=[{"e0": 0.5, "e1": 0.5}],  # constant estimates
            high_rows=[{"e0": 0.5, "e1": 0.5}],
            rounded_rows=[{"e0": 1, "e1": 1}],
            oracle_rows=[{"e0": 3.0, "e1": 0.0}],  # oracle distinguishes
        )
        assert wires.degenerate_rankings == 1

    def test_constant_oracle_is_not_degenerate(self):
        wires = run_tripwires(
            low_rows=[{"e0": 0.5, "e1": 0.5}],
            high_rows=[{"e0": 0.5, "e1": 0.5}],
            rounded_rows=[{"e0": 1, "e1": 1}],
            oracle_rows=[{"e0": 1.0, "e1": 1.0}],
        )
        assert wires.degenerate_rankings == 0

    def test_missed_all_detected(self):
        wires = run_tripwires(
            low_rows=[{"e0": 0.2, "e1": 0.1}],
            high_rows=[{"e0": 0.1, "e1": 0.0}],
            rounded_rows=[{"e0": 0, "e1": 0}],
            oracle_rows=[{"e0": 2.0, "e1": 0.0}],
        )
        assert wires.missed_all == 1

    def test_parallel_inputs_enforced(self):
        with pytest.raises(ValueError, match="parallel"):
            run_tripwires([{"e0": 1.0}], [], [{"e0": 1}], [{"e0": 1.0}])

    def test_ok_requires_all_clean(self):
        assert not EstimatorTripwires(1, 0, 0).ok
        assert not EstimatorTripwires(0, 1, 0).ok
        assert not EstimatorTripwires(0, 0, 1).ok
        assert EstimatorTripwires(0, 0, 0).ok


class TestAgreementMatrix:
    def test_identical_estimators_fully_agree(self):
        rows = [{"e0": 2.0, "e1": 1.0}, {"e0": 0.0, "e1": 3.0}]
        result = agreement_matrix({"a": rows, "b": [dict(r) for r in rows]})
        assert result["pairs"] == {"a|b": pytest.approx(1.0)}
        assert result["mean_pairwise_tau"] == pytest.approx(1.0)
        assert result["below_floor"] == []

    def test_opposed_estimators_flagged(self):
        a = [{"e0": 2.0, "e1": 1.0}]
        b = [{"e0": 1.0, "e1": 2.0}]
        result = agreement_matrix({"a": a, "b": b})
        assert result["pairs"]["a|b"] == pytest.approx(-1.0)
        assert result["below_floor"] == ["a|b"]

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="different queries"):
            agreement_matrix({"a": [{"e0": 1.0}], "b": []})


class TestGoldenSerialization:
    def _stratum(self):
        return GoldenStratum(
            name="toy",
            description="round-trip fixture",
            seed=7,
            threshold=0.2,
            diagnostic_threshold=0.4,
            queries=(
                Query.from_terms(["alpha", "beta"]),
                Query.from_terms(["gamma"]),
            ),
        )

    def test_round_trip(self):
        stratum = self._stratum()
        assert stratum_from_payload(stratum_payload(stratum)) == stratum

    def test_canonical_bytes_are_stable_and_ascii(self):
        payload = stratum_payload(self._stratum())
        raw = canonical_json_bytes(payload)
        assert raw == canonical_json_bytes(json.loads(raw.decode("ascii")))
        assert raw.endswith(b"\n")

    def test_unknown_format_rejected(self):
        payload = stratum_payload(self._stratum())
        payload["format"] = 999
        with pytest.raises(ValueError, match="format"):
            stratum_from_payload(payload)

    def test_diagnostic_threshold_must_exceed_threshold(self):
        with pytest.raises(ValueError, match="diagnostic"):
            GoldenStratum(
                name="bad",
                description="",
                seed=1,
                threshold=0.5,
                diagnostic_threshold=0.5,
                queries=(),
            )


class TestCheckFloors:
    def _payload(self, precision=0.9, tripwires_ok=True):
        return {
            "strata": {
                "s": {
                    "estimators": {
                        "basic": {
                            "precision": precision,
                            "mrr": None,
                            "tripwires": {
                                "ok": tripwires_ok,
                                "monotonicity_violations": 0,
                                "degenerate_rankings": 0,
                                "missed_all": 0 if tripwires_ok else 3,
                            },
                        }
                    }
                }
            }
        }

    def test_passing_floors(self):
        floors = {"strata": {"s": {"basic": {"precision": 0.8}}}}
        assert check_floors(self._payload(), floors) == []

    def test_metric_below_floor(self):
        floors = {"strata": {"s": {"basic": {"precision": 0.95}}}}
        violations = check_floors(self._payload(), floors)
        assert len(violations) == 1
        assert "precision" in violations[0]

    def test_null_metric_is_a_violation(self):
        floors = {"strata": {"s": {"basic": {"mrr": 0.5}}}}
        assert len(check_floors(self._payload(), floors)) == 1

    def test_tripwires_ok_pseudo_metric(self):
        floors = {"strata": {"s": {"basic": {"tripwires_ok": True}}}}
        assert check_floors(self._payload(tripwires_ok=True), floors) == []
        assert len(check_floors(self._payload(tripwires_ok=False), floors)) == 1

    def test_unknown_stratum_and_estimator_are_violations(self):
        floors = {
            "strata": {
                "missing": {"basic": {"precision": 0.1}},
                "s": {"ghost": {"precision": 0.1}},
            }
        }
        violations = check_floors(self._payload(), floors)
        assert len(violations) == 2
