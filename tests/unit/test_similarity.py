"""Unit tests for repro.vsm.similarity."""

import pytest

from repro.vsm import SparseVector, cosine_similarity, dot_similarity


class TestDotSimilarity:
    def test_matches_vector_dot(self):
        q = SparseVector([0, 1], [1.0, 2.0])
        d = SparseVector([1, 2], [3.0, 4.0])
        assert dot_similarity(q, d) == pytest.approx(6.0)


class TestCosineSimilarity:
    def test_identical_vectors_give_one(self):
        v = SparseVector([0, 3], [1.0, 2.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors_give_zero(self):
        a = SparseVector([0], [1.0])
        b = SparseVector([1], [1.0])
        assert cosine_similarity(a, b) == 0.0

    def test_scale_invariance(self):
        q = SparseVector([0, 1], [1.0, 1.0])
        d = SparseVector([0, 1], [2.0, 3.0])
        assert cosine_similarity(q, d) == pytest.approx(
            cosine_similarity(q.scaled(7.0), d.scaled(0.5))
        )

    def test_bounded_by_one_for_nonnegative(self):
        q = SparseVector([0, 1, 2], [1.0, 2.0, 0.5])
        d = SparseVector([1, 2, 3], [4.0, 0.1, 9.0])
        assert 0.0 <= cosine_similarity(q, d) <= 1.0

    def test_empty_vector_gives_zero(self):
        v = SparseVector([0], [1.0])
        assert cosine_similarity(v, SparseVector.empty()) == 0.0
        assert cosine_similarity(SparseVector.empty(), v) == 0.0

    def test_paper_single_term_case(self):
        # For a single-term query, cosine similarity equals the document's
        # normalized weight of that term (Section 3.1 discussion).
        q = SparseVector([5], [3.0])  # any positive weight; normalizes to 1
        d = SparseVector([5, 6], [3.0, 4.0])  # |d| = 5, normalized w' = 0.6
        assert cosine_similarity(q, d) == pytest.approx(0.6)
