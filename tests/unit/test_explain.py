"""Unit tests for the estimate explanation API."""

import pytest

from repro.core import BasicEstimator, SubrangeEstimator
from repro.corpus import Query
from repro.representatives import DatabaseRepresentative, TermStats


@pytest.fixture
def rep():
    return DatabaseRepresentative(
        "db",
        n_documents=100,
        term_stats={
            "known": TermStats(0.3, 0.25, 0.08, 0.6),
            "other": TermStats(0.1, 0.40, 0.05, 0.5),
        },
    )


class TestExplain:
    def test_estimate_matches_plain_call(self, rep):
        estimator = SubrangeEstimator()
        query = Query.from_terms(["known", "other"])
        explanation = estimator.explain(query, rep, 0.2)
        plain = estimator.estimate(query, rep, 0.2)
        assert explanation.estimate.nodoc == pytest.approx(plain.nodoc)
        assert explanation.estimate.avgsim == pytest.approx(plain.avgsim)
        assert explanation.threshold == 0.2

    def test_terms_in_query_order(self, rep):
        explanation = SubrangeEstimator().explain(
            Query.from_terms(["other", "known"]), rep, 0.2
        )
        assert [t.term for t in explanation.terms] == ["other", "known"]

    def test_unmatched_term_flagged(self, rep):
        explanation = SubrangeEstimator().explain(
            Query.from_terms(["known", "zzz"]), rep, 0.2
        )
        by_term = {t.term: t for t in explanation.terms}
        assert by_term["known"].matched
        assert not by_term["zzz"].matched
        assert by_term["zzz"].polynomial_size == 0
        assert by_term["zzz"].occurrence_probability == 0.0

    def test_max_exponent_is_u_times_mw(self, rep):
        query = Query.from_terms(["known"])
        explanation = SubrangeEstimator().explain(query, rep, 0.2)
        (contribution,) = explanation.terms
        assert contribution.max_exponent == pytest.approx(0.6)  # u = 1

    def test_subrange_polynomial_size(self, rep):
        explanation = SubrangeEstimator().explain(
            Query.from_terms(["known"]), rep, 0.2
        )
        # max singleton + 5 subranges + zero term.
        assert explanation.terms[0].polynomial_size == 7

    def test_basic_polynomial_size(self, rep):
        explanation = BasicEstimator().explain(
            Query.from_terms(["known"]), rep, 0.2
        )
        assert explanation.terms[0].polynomial_size == 2

    def test_tail_mass_consistent_with_nodoc(self, rep):
        explanation = SubrangeEstimator().explain(
            Query.from_terms(["known", "other"]), rep, 0.3
        )
        assert explanation.estimate.nodoc == pytest.approx(
            explanation.tail_mass * rep.n_documents
        )

    def test_expansion_terms_positive(self, rep):
        explanation = SubrangeEstimator().explain(
            Query.from_terms(["known", "other"]), rep, 0.3
        )
        assert explanation.expansion_terms > 1

    def test_pruned_mass_zero_by_default(self, rep):
        explanation = SubrangeEstimator().explain(
            Query.from_terms(["known"]), rep, 0.3
        )
        assert explanation.pruned_mass == 0.0

    def test_all_unmatched_query(self, rep):
        explanation = SubrangeEstimator().explain(
            Query.from_terms(["aa", "bb"]), rep, 0.2
        )
        assert explanation.estimate.nodoc == 0.0
        assert all(not t.matched for t in explanation.terms)
