"""Unit tests for repro.stats.descriptive."""

import numpy as np
import pytest

from repro.stats import mean_and_std, percentile_sorted, population_std


class TestPopulationStd:
    def test_population_divisor(self):
        # Population std of [1, 3] is 1.0 (not the sample value sqrt(2)).
        assert population_std([1.0, 3.0]) == pytest.approx(1.0)

    def test_single_value_is_zero(self):
        assert population_std([4.2]) == 0.0

    def test_constant_sequence(self):
        assert population_std([2.0] * 10) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            population_std([])

    def test_matches_numpy(self):
        values = [0.2, 1.7, 3.3, 0.9, 2.2]
        assert population_std(values) == pytest.approx(np.std(values))


class TestMeanAndStd:
    def test_pair(self):
        mean, std = mean_and_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_and_std([])


class TestPercentileSorted:
    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile_sorted(values, 0) == 1.0
        assert percentile_sorted(values, 100) == 4.0

    def test_median_interpolation(self):
        assert percentile_sorted([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_exact_rank(self):
        assert percentile_sorted([10.0, 20.0, 30.0], 50) == 20.0

    def test_single_value(self):
        assert percentile_sorted([7.0], 37.5) == 7.0

    def test_matches_numpy_linear(self):
        values = sorted([0.3, 1.1, 2.9, 5.5, 9.0, 9.1])
        for pct in (12.5, 37.5, 70.0, 93.1, 98.0):
            assert percentile_sorted(values, pct) == pytest.approx(
                np.percentile(values, pct)
            )

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile_sorted([1.0], 101)
        with pytest.raises(ValueError):
            percentile_sorted([1.0], -1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_sorted([], 50)
