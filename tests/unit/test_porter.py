"""Unit tests for the from-scratch Porter stemmer.

Expected stems are taken from Porter's 1980 paper (including its two
worked examples, GENERALIZATIONS -> GENER and OSCILLATORS -> OSCIL) and the
published sample vocabulary behaviour.
"""

import pytest

from repro.text.porter import PorterStemmer

stemmer = PorterStemmer()


class TestStep1:
    @pytest.mark.parametrize(
        "word,stem",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("cats", "cat"),
            ("caress", "caress"),
        ],
    )
    def test_plural_removal(self, word, stem):
        assert stemmer.stem(word) == stem

    @pytest.mark.parametrize(
        "word,stem",
        [
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
        ],
    )
    def test_ed_ing_removal(self, word, stem):
        assert stemmer.stem(word) == stem

    @pytest.mark.parametrize(
        "word,stem",
        [
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("failing", "fail"),
            ("filing", "file"),
        ],
    )
    def test_ed_ing_cleanup_rules(self, word, stem):
        assert stemmer.stem(word) == stem

    def test_y_to_i(self):
        assert stemmer.stem("happy") == "happi"

    def test_y_kept_without_vowel(self):
        assert stemmer.stem("sky") == "sky"


class TestLaterSteps:
    @pytest.mark.parametrize(
        "word,stem",
        [
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("hopefulness", "hope"),
            ("goodness", "good"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("adjustable", "adjust"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("effective", "effect"),
        ],
    )
    def test_suffix_chains(self, word, stem):
        assert stemmer.stem(word) == stem

    def test_porter_paper_example_generalizations(self):
        assert stemmer.stem("generalizations") == "gener"

    def test_porter_paper_example_oscillators(self):
        assert stemmer.stem("oscillators") == "oscil"

    def test_final_e_removal(self):
        assert stemmer.stem("probate") == "probat"
        assert stemmer.stem("rate") == "rate"
        assert stemmer.stem("cease") == "ceas"

    def test_double_l_removal(self):
        assert stemmer.stem("controll") == "control"
        assert stemmer.stem("roll") == "roll"


class TestConventions:
    def test_short_words_unchanged(self):
        for word in ("a", "is", "be", "we"):
            assert stemmer.stem(word) == word

    def test_conflates_morphological_family(self):
        family = ("connect", "connected", "connecting", "connection", "connections")
        stems = {stemmer.stem(w) for w in family}
        assert stems == {"connect"}

    def test_retrieval_family(self):
        assert stemmer.stem("retrieval") == stemmer.stem("retrieve") == "retriev"

    def test_output_nonempty(self):
        # Stems never vanish entirely.
        for word in ("the", "ees", "sses", "ing", "ed"):
            assert stemmer.stem(word)

    def test_stateless_repeatable(self):
        assert stemmer.stem("databases") == stemmer.stem("databases") == "databas"
