"""Unit tests for the engine-axis vectorized estimation path."""

from __future__ import annotations

import numpy as np

from repro.core import (
    BasicEstimator,
    BinaryIndependenceEstimator,
    GlossDisjointEstimator,
    GlossHighCorrelationEstimator,
    SubrangeEstimator,
    fallback_count,
    fleet_usefulness_grid,
    reset_fallback_count,
    supports_fleet,
)
from repro.corpus import Query
from repro.metasearch.cache import TermPolynomialCache
from repro.representatives import (
    DatabaseRepresentative,
    FleetRepresentativeStore,
    SubrangeScheme,
    TermStats,
)

THRESHOLDS = [0.0, 0.2, 0.5, 1.0]


def make_rep(name, n=50, stats=None):
    if stats is None:
        stats = {
            "apple": TermStats(0.4, 0.3, 0.1, 0.7),
            "pear": TermStats(0.2, 0.5, 0.0, 0.5),
        }
    return DatabaseRepresentative(name, n_documents=n, term_stats=stats)


def make_store(*reps):
    store = FleetRepresentativeStore()
    for rep in reps:
        store.add(rep)
    return store


def bits(value):
    return float(value).hex()


def assert_grid_matches_scalar(estimator, store, reps, query, thresholds=THRESHOLDS):
    grid = fleet_usefulness_grid(estimator, store, query, thresholds)
    assert grid is not None
    for row, threshold in zip(grid, thresholds):
        for got, rep in zip(row, reps):
            want = estimator.estimate(query, rep, threshold)
            assert bits(got.nodoc) == bits(want.nodoc)
            assert bits(got.avgsim) == bits(want.avgsim)
    return grid


class TestSupportsFleet:
    def test_exact_types_only(self):
        for estimator in (
            SubrangeEstimator(),
            BasicEstimator(),
            BinaryIndependenceEstimator(),
            GlossHighCorrelationEstimator(),
            GlossDisjointEstimator(),
        ):
            assert supports_fleet(estimator)

    def test_subclasses_fall_back_to_scalar(self):
        class Tweaked(BasicEstimator):
            pass

        store = make_store(make_rep("d1"))
        assert not supports_fleet(Tweaked())
        assert (
            fleet_usefulness_grid(
                Tweaked(), store, Query.from_terms(["apple"]), [0.2]
            )
            is None
        )


class TestEdgeCases:
    def test_empty_store(self):
        grid = fleet_usefulness_grid(
            BasicEstimator(),
            FleetRepresentativeStore(),
            Query.from_terms(["apple"]),
            THRESHOLDS,
        )
        assert grid == [[] for __ in THRESHOLDS]

    def test_zero_document_engine(self):
        reps = [make_rep("d0", n=0), make_rep("d1", n=50)]
        for estimator in (
            SubrangeEstimator(),
            BasicEstimator(),
            GlossHighCorrelationEstimator(),
        ):
            assert_grid_matches_scalar(
                estimator, make_store(*reps), reps,
                Query.from_terms(["apple", "pear"]),
            )

    def test_no_term_matches_any_engine(self):
        reps = [make_rep("d1"), make_rep("d2", n=9)]
        query = Query.from_terms(["ghost", "phantom"])
        for estimator in (
            SubrangeEstimator(),
            BasicEstimator(),
            BinaryIndependenceEstimator(),
            GlossHighCorrelationEstimator(),
            GlossDisjointEstimator(),
        ):
            grid = assert_grid_matches_scalar(
                estimator, make_store(*reps), reps, query
            )
            assert all(u.nodoc == 0 for row in grid for u in row)

    def test_certain_term_probability_one(self):
        stats = {"apple": TermStats(1.0, 0.6, 0.0, 0.6)}
        reps = [make_rep("d1", stats=stats)]
        assert_grid_matches_scalar(
            BasicEstimator(), make_store(*reps), reps,
            Query.from_terms(["apple"]),
        )

    def test_subrange_modes(self):
        reps = [make_rep("d1"), make_rep("d2", n=7)]
        query = Query(terms=("apple", "pear"), weights=(2.0, 1.0))
        for scheme in (
            SubrangeScheme.equal(3, include_max=False),
            SubrangeScheme.equal(4, include_max=True),
        ):
            for use_stored_max in (True, False):
                assert_grid_matches_scalar(
                    SubrangeEstimator(
                        scheme=scheme, use_stored_max=use_stored_max
                    ),
                    make_store(*reps), reps, query,
                )


class TestExpansionControlConfigs:
    def test_pruned_and_capped_expansions_stay_batched(self):
        """prune_floor/max_terms used to skip the parallel merge; the
        batched kernel now implements their exact semantics, so these
        configurations run fully vectorized and must still be
        bit-identical to the scalar estimator."""
        reps = [make_rep("d1"), make_rep("d2", n=200)]
        query = Query.from_terms(["apple", "pear"])
        reset_fallback_count()
        for estimator in (
            BasicEstimator(prune_floor=1e-6),
            BasicEstimator(max_terms=3),
            BinaryIndependenceEstimator(prune_floor=1e-6),
        ):
            assert_grid_matches_scalar(
                estimator, make_store(*reps), reps, query
            )
        assert fallback_count() == 0


class TestPolycacheIntegration:
    def test_warm_cache_returns_same_bits(self):
        reps = [make_rep("d1"), make_rep("d2", n=11)]
        store = make_store(*reps)
        query = Query.from_terms(["apple", "pear", "ghost"])
        estimator = SubrangeEstimator()
        cache = TermPolynomialCache(vocab=store.vocab)
        cold = fleet_usefulness_grid(
            estimator, store, query, THRESHOLDS, polycache=cache
        )
        assert cache.misses > 0 and cache.hits == 0
        warm = fleet_usefulness_grid(
            estimator, store, query, THRESHOLDS, polycache=cache
        )
        assert cache.hits > 0
        for cold_row, warm_row in zip(cold, warm):
            for a, b in zip(cold_row, warm_row):
                assert bits(a.nodoc) == bits(b.nodoc)
                assert bits(a.avgsim) == bits(b.avgsim)
        assert_grid_matches_scalar(estimator, store, reps, query)

    def test_unmatched_terms_negatively_cached(self):
        reps = [make_rep("d1")]
        store = make_store(*reps)
        cache = TermPolynomialCache(vocab=store.vocab)
        query = Query.from_terms(["ghost", "apple"])
        fleet_usefulness_grid(
            SubrangeEstimator(), store, query, [0.2], polycache=cache
        )
        hit, value = cache.lookup(
            SubrangeEstimator().polynomial_config(),
            "d1",
            "ghost",
            Query.from_terms(["ghost", "apple"]).normalized_weights()[0],
        )
        assert hit and value is None


class TestGridShape:
    def test_rows_follow_engine_registration_order(self):
        reps = [make_rep("b"), make_rep("a", n=3)]
        store = make_store(*reps)
        grid = fleet_usefulness_grid(
            BasicEstimator(), store, Query.from_terms(["apple"]), [0.1]
        )
        assert store.engine_names == ["b", "a"]
        assert [u.nodoc for u in grid[0]] == [
            BasicEstimator().estimate(
                Query.from_terms(["apple"]), rep, 0.1
            ).nodoc
            for rep in reps
        ]
