"""Unit tests for repro.text.pipeline.TextPipeline."""

from repro.text import TextPipeline


class TestTextPipeline:
    def test_default_removes_stopwords(self):
        terms = TextPipeline().terms("the search of engines")
        assert "the" not in terms
        assert "of" not in terms

    def test_default_stems(self):
        assert TextPipeline().terms("searching engines") == ["search", "engin"]

    def test_stemming_can_be_disabled(self):
        assert TextPipeline(stem=False).terms("searching engines") == [
            "searching",
            "engines",
        ]

    def test_custom_stopword_set(self):
        pipeline = TextPipeline(stopwords=frozenset({"apple"}), stem=False)
        assert pipeline.terms("apple banana the") == ["banana", "the"]

    def test_empty_stopword_set_keeps_everything(self):
        pipeline = TextPipeline(stopwords=frozenset(), stem=False)
        assert pipeline.terms("the of and") == ["the", "of", "and"]

    def test_min_length_filters_single_chars(self):
        # Default pipeline: "x" survives tokenization but not min_length.
        assert TextPipeline(stem=False).terms("x marks spot") == ["marks", "spot"]

    def test_repeats_preserved_for_tf(self):
        terms = TextPipeline(stem=False).terms("apple apple banana apple")
        assert terms.count("apple") == 3

    def test_terms_joined_concatenates_fields(self):
        pipeline = TextPipeline(stem=False)
        assert pipeline.terms_joined(["apple pie", "banana split"]) == [
            "apple",
            "pie",
            "banana",
            "split",
        ]

    def test_stems_property(self):
        assert TextPipeline().stems
        assert not TextPipeline(stem=False).stems

    def test_empty_text(self):
        assert TextPipeline().terms("") == []

    def test_all_stopword_text(self):
        assert TextPipeline().terms("the of and is") == []

    def test_stem_shrinking_below_min_length_dropped(self):
        # A pipeline demanding long terms drops post-stem shorties.
        pipeline = TextPipeline(stem=True, min_length=6)
        assert pipeline.terms("connection dogs") == ["connect"]

    def test_repr_mentions_config(self):
        text = repr(TextPipeline(stem=False))
        assert "stem=False" in text
