"""Unit tests for empirical-percentile subrange representatives/estimation."""

import numpy as np
import pytest

from repro.core import EmpiricalSubrangeEstimator, SubrangeEstimator, true_usefulness
from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.representatives import (
    SubrangeScheme,
    build_empirical_representative,
    build_representative,
)


@pytest.fixture(scope="module")
def engine(small_group0):
    return SearchEngine(small_group0)


@pytest.fixture(scope="module")
def empirical_rep(engine):
    return build_empirical_representative(engine)


class TestBuildEmpiricalRepresentative:
    def test_covers_all_terms(self, engine, empirical_rep):
        assert empirical_rep.n_terms == engine.index.n_terms

    def test_max_weight_exact(self, engine, empirical_rep):
        vocabulary = engine.collection.vocabulary
        for term_id, plist in list(engine.index.items())[:50]:
            stats = empirical_rep.get(vocabulary.term_of(term_id))
            assert stats.max_weight == pytest.approx(plist.max_weight())

    def test_medians_descending(self, empirical_rep, engine):
        vocabulary = engine.collection.vocabulary
        for term_id, __ in list(engine.index.items())[:50]:
            stats = empirical_rep.get(vocabulary.term_of(term_id))
            medians = list(stats.medians)
            assert medians == sorted(medians, reverse=True)

    def test_medians_within_weight_range(self, empirical_rep, engine):
        vocabulary = engine.collection.vocabulary
        for term_id, plist in list(engine.index.items())[:50]:
            stats = empirical_rep.get(vocabulary.term_of(term_id))
            lo, hi = plist.weights.min(), plist.weights.max()
            for median in stats.medians:
                assert lo - 1e-12 <= median <= hi + 1e-12

    def test_custom_scheme(self, engine):
        scheme = SubrangeScheme.equal(2, include_max=True)
        rep = build_empirical_representative(engine, scheme)
        stats = next(iter(rep._term_stats.values()))
        assert len(stats.medians) == 2

    def test_unknown_term(self, empirical_rep):
        assert empirical_rep.get("nonexistent") is None


class TestEmpiricalSubrangeEstimator:
    def test_mass_conserved(self, empirical_rep, small_queries):
        estimator = EmpiricalSubrangeEstimator()
        for query in small_queries[:20]:
            expansion = estimator.expand(query, empirical_rep)
            assert expansion.total_mass() == pytest.approx(1.0)

    def test_single_term_guarantee_holds(self, engine, empirical_rep):
        estimator = EmpiricalSubrangeEstimator()
        vocabulary = engine.collection.vocabulary
        for term_id, plist in list(engine.index.items())[:30]:
            query = Query.from_terms([vocabulary.term_of(term_id)])
            expansion = estimator.expand(query, empirical_rep)
            assert expansion.max_exponent() == pytest.approx(
                engine.max_similarity(query), abs=1e-7
            )

    def test_no_worse_than_normal_approx_on_average(
        self, engine, empirical_rep, small_queries
    ):
        """Exact percentiles should estimate NoDoc at least as well as the
        normal approximation, aggregated over a query sample."""
        normal_rep = build_representative(engine)
        normal = SubrangeEstimator()
        empirical = EmpiricalSubrangeEstimator()
        err_normal = 0.0
        err_empirical = 0.0
        for query in small_queries[:80]:
            truth = true_usefulness(engine, query, 0.2)
            err_normal += abs(
                normal.estimate(query, normal_rep, 0.2).nodoc - truth.nodoc
            )
            err_empirical += abs(
                empirical.estimate(query, empirical_rep, 0.2).nodoc - truth.nodoc
            )
        assert err_empirical <= err_normal * 1.1

    def test_registry(self):
        from repro.core import get_estimator

        assert isinstance(
            get_estimator("subrange-empirical"), EmpiricalSubrangeEstimator
        )

    def test_validation(self):
        from repro.representatives.empirical import EmpiricalTermStats

        with pytest.raises(ValueError):
            EmpiricalTermStats(probability=1.5, medians=(0.1,), max_weight=0.2)
        with pytest.raises(ValueError):
            EmpiricalTermStats(probability=0.5, medians=(-0.1,), max_weight=0.2)
        with pytest.raises(ValueError):
            EmpiricalTermStats(probability=0.5, medians=(0.1,), max_weight=-0.2)
