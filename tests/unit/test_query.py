"""Unit tests for repro.corpus.Query."""

import math

import pytest

from repro.corpus import Query
from repro.text import TextPipeline


class TestConstruction:
    def test_from_terms_accumulates_tf(self):
        query = Query.from_terms(["a", "b", "a"])
        assert query.terms == ("a", "b")
        assert query.weights == (2.0, 1.0)

    def test_from_terms_preserves_first_occurrence_order(self):
        query = Query.from_terms(["z", "a", "z", "m"])
        assert query.terms == ("z", "a", "m")

    def test_from_text_uses_pipeline(self):
        query = Query.from_text("the searching engines", TextPipeline())
        assert query.terms == ("search", "engin")

    def test_from_text_default_pipeline(self):
        assert Query.from_text("apple").terms == ("appl",)

    def test_empty_query(self):
        query = Query.from_terms([])
        assert query.n_terms == 0
        assert query.norm() == 0.0

    def test_duplicate_terms_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            Query(terms=("a", "a"), weights=(1.0, 1.0))

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Query(terms=("a",), weights=(0.0,))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            Query(terms=("a", "b"), weights=(1.0,))


class TestWeights:
    def test_norm(self):
        query = Query(terms=("a", "b"), weights=(3.0, 4.0))
        assert query.norm() == pytest.approx(5.0)

    def test_normalized_weights_unit_norm(self):
        query = Query(terms=("a", "b", "c"), weights=(1.0, 2.0, 2.0))
        normalized = query.normalized_weights()
        assert math.sqrt(sum(w * w for w in normalized)) == pytest.approx(1.0)

    def test_single_term_normalized_weight_is_one(self):
        # The Section 3.1 argument: a single-term query has weight 1.
        query = Query(terms=("only",), weights=(5.0,))
        assert query.normalized_weights().tolist() == [1.0]

    def test_equal_weights_give_inverse_sqrt_r(self):
        query = Query.from_terms(["a", "b", "c", "d"])
        assert query.normalized_weights().tolist() == pytest.approx([0.5] * 4)

    def test_items(self):
        query = Query(terms=("a", "b"), weights=(2.0, 1.0))
        assert list(query.items()) == [("a", 2.0), ("b", 1.0)]

    def test_normalized_items_align(self):
        query = Query(terms=("a", "b"), weights=(3.0, 4.0))
        pairs = dict(query.normalized_items())
        assert pairs["a"] == pytest.approx(0.6)
        assert pairs["b"] == pytest.approx(0.8)


class TestPredicates:
    def test_is_single_term(self):
        assert Query.from_terms(["x"]).is_single_term
        assert not Query.from_terms(["x", "y"]).is_single_term

    def test_n_terms(self):
        assert Query.from_terms(["x", "y", "x"]).n_terms == 2

    def test_frozen(self):
        query = Query.from_terms(["x"])
        with pytest.raises(AttributeError):
            query.terms = ("y",)

    def test_repr_shows_terms(self):
        assert "alpha" in repr(Query.from_terms(["alpha"]))
