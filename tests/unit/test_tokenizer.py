"""Unit tests for repro.text.tokenizer."""

import pytest

from repro.text.tokenizer import tokenize


class TestTokenize:
    def test_simple_sentence(self):
        assert tokenize("the quick brown fox") == ["the", "quick", "brown", "fox"]

    def test_lowercases(self):
        assert tokenize("The QUICK Brown") == ["the", "quick", "brown"]

    def test_strips_punctuation(self):
        assert tokenize("hello, world! (really)") == ["hello", "world", "really"]

    def test_hyphen_splits(self):
        assert tokenize("brown-fox") == ["brown", "fox"]

    def test_keeps_internal_apostrophe(self):
        assert tokenize("don't stop") == ["don't", "stop"]

    def test_trims_trailing_apostrophe(self):
        assert tokenize("dogs' bones") == ["dogs", "bones"]

    def test_discards_pure_numbers(self):
        assert tokenize("42 7.5 2023") == []

    def test_keeps_alphanumeric_starting_with_letter(self):
        assert tokenize("v2 b52 bomber") == ["v2", "b52", "bomber"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \t\n  ") == []

    def test_unicode_ignored(self):
        # Non-ASCII letters are not matched; the late-90s corpora are ASCII.
        assert tokenize("café") == ["caf"]

    def test_preserves_order_and_repeats(self):
        assert tokenize("a b a b a") == ["a", "b", "a", "b", "a"]

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("e-mail", ["e", "mail"]),
            ("under_score", ["under", "score"]),
            ("semi;colon", ["semi", "colon"]),
            ("tab\tsep", ["tab", "sep"]),
        ],
    )
    def test_separator_variants(self, text, expected):
        assert tokenize(text) == expected
