"""Unit tests for the subrange-based estimator (the paper's method)."""

import numpy as np
import pytest

from repro.core import SubrangeEstimator, true_usefulness
from repro.corpus import Query
from repro.representatives import (
    DatabaseRepresentative,
    SubrangeScheme,
    TermStats,
)


@pytest.fixture
def rep():
    return DatabaseRepresentative(
        "db",
        n_documents=100,
        term_stats={
            "common": TermStats(0.4, 0.30, 0.10, 0.70),
            "rare": TermStats(0.01, 0.55, 0.0, 0.55),
        },
    )


class TestTermPolynomial:
    def test_probability_mass_sums_to_one(self, rep):
        estimator = SubrangeEstimator()
        exps, coeffs = estimator.term_polynomial(1.0, rep.get("common"), 100)
        assert coeffs.sum() == pytest.approx(1.0)

    def test_max_subrange_gets_one_over_n(self, rep):
        estimator = SubrangeEstimator()
        exps, coeffs = estimator.term_polynomial(1.0, rep.get("common"), 100)
        # First entry is the max-weight singleton with probability 1/n.
        assert exps[0] == pytest.approx(0.70)
        assert coeffs[0] == pytest.approx(0.01)

    def test_max_probability_capped_by_p(self, rep):
        estimator = SubrangeEstimator()
        # rare term: p = 0.01 = 1/n, so everything sits in the max subrange.
        exps, coeffs = estimator.term_polynomial(1.0, rep.get("rare"), 100)
        assert coeffs[0] == pytest.approx(0.01)
        # No residual mass in the other subranges.
        positive = coeffs[:-1][exps[:-1] > 0]
        assert positive.sum() == pytest.approx(0.01)

    def test_medians_clamped_to_max_weight(self, rep):
        estimator = SubrangeEstimator()
        stats = TermStats(0.5, 0.6, 0.5, 0.65)  # mean + c1*std would exceed mw
        exps, coeffs = estimator.term_polynomial(1.0, stats, 100)
        assert exps.max() <= 0.65 + 1e-12

    def test_medians_clamped_to_zero(self):
        estimator = SubrangeEstimator()
        stats = TermStats(0.5, 0.05, 0.5, 0.9)  # mean + c5*std negative
        exps, __ = estimator.term_polynomial(1.0, stats, 100)
        assert exps.min() >= 0.0

    def test_query_weight_scales_exponents(self, rep):
        estimator = SubrangeEstimator()
        full, __ = estimator.term_polynomial(1.0, rep.get("common"), 100)
        half, __ = estimator.term_polynomial(0.5, rep.get("common"), 100)
        assert half[0] == pytest.approx(full[0] * 0.5)

    def test_no_max_scheme(self, rep):
        estimator = SubrangeEstimator(scheme=SubrangeScheme.equal(4))
        exps, coeffs = estimator.term_polynomial(1.0, rep.get("common"), 100)
        # 4 subranges + zero term.
        assert exps.size == 5
        assert coeffs.sum() == pytest.approx(1.0)


class TestEstimates:
    def test_zero_for_unknown_terms(self, rep):
        estimate = SubrangeEstimator().estimate(
            Query.from_terms(["nope"]), rep, 0.1
        )
        assert estimate.nodoc == 0.0

    def test_single_term_guarantee_positive_side(self, rep):
        # T below the stored max weight: at least 1/n * n = 1 document.
        estimate = SubrangeEstimator().estimate(
            Query.from_terms(["common"]), rep, threshold=0.69
        )
        assert estimate.nodoc >= 1.0 - 1e-9

    def test_single_term_guarantee_negative_side(self, rep):
        # T above the max weight: nothing can exceed it.
        estimate = SubrangeEstimator().estimate(
            Query.from_terms(["common"]), rep, threshold=0.71
        )
        assert estimate.nodoc == 0.0

    def test_nodoc_bounded_by_n(self, rep):
        query = Query.from_terms(["common", "rare"])
        estimate = SubrangeEstimator().estimate(query, rep, threshold=-0.1)
        assert estimate.nodoc <= 100 + 1e-6

    def test_estimate_many_matches_pointwise(self, rep):
        query = Query.from_terms(["common", "rare"])
        thresholds = (0.1, 0.3, 0.5)
        estimator = SubrangeEstimator()
        many = estimator.estimate_many(query, rep, thresholds)
        for threshold, estimate in zip(thresholds, many):
            single = estimator.estimate(query, rep, threshold)
            assert estimate.nodoc == pytest.approx(single.nodoc)

    def test_estimate_many_single_pass_is_exact(self, rep):
        """estimate_many reads every tail off one cumulative-sum pass; the
        answers must be *bit-identical* to per-threshold estimate() calls,
        for any threshold order including duplicates."""
        query = Query.from_terms(["common", "rare", "mid"])
        thresholds = (0.5, 0.1, 0.3, 0.1, 0.6, 0.0)
        estimator = SubrangeEstimator()
        many = estimator.estimate_many(query, rep, thresholds)
        singles = [estimator.estimate(query, rep, t) for t in thresholds]
        assert many == singles

    def test_avgsim_above_threshold_when_nonzero(self, rep):
        query = Query.from_terms(["common"])
        for threshold in (0.1, 0.2, 0.4, 0.6):
            estimate = SubrangeEstimator().estimate(query, rep, threshold)
            if estimate.nodoc > 0:
                assert estimate.avgsim > threshold


class TestTripletMode:
    def test_estimated_max_used_when_stored_absent(self, rep):
        triplets = rep.as_triplets()
        estimator = SubrangeEstimator(use_stored_max=False)
        stats = triplets.get("common")
        mw = estimator._effective_max(stats)
        # 99.9 percentile of N(0.3, 0.1^2) = 0.3 + 3.09 * 0.1.
        assert mw == pytest.approx(0.3 + 3.0902 * 0.1, abs=1e-3)

    def test_stored_max_ignored_when_disabled(self, rep):
        estimator = SubrangeEstimator(use_stored_max=False)
        mw = estimator._effective_max(rep.get("common"))
        assert mw != pytest.approx(0.70)

    def test_max_percentile_validated(self):
        with pytest.raises(ValueError):
            SubrangeEstimator(max_percentile=100.0)

    def test_estimated_max_clamped_to_one(self):
        """Regression: a high-sigma term's estimated 99.9th percentile used
        to exceed 1.0 — an impossible normalized weight that placed
        probability mass at similarities no document can reach."""
        estimator = SubrangeEstimator(use_stored_max=False)
        stats = TermStats(probability=0.5, mean=0.9, std=0.5, max_weight=None)
        # Unclamped estimate would be 0.9 + 3.09 * 0.5 ~= 2.45.
        assert estimator._effective_max(stats) == 1.0

    def test_clamped_max_keeps_mass_in_reachable_similarities(self):
        estimator = SubrangeEstimator(use_stored_max=False)
        rep = DatabaseRepresentative(
            "hot",
            n_documents=50,
            term_stats={"spiky": TermStats(0.5, 0.9, 0.5, None)},
        )
        query = Query.from_terms(["spiky"])
        # Cosine similarity cannot exceed 1, so no estimated document may
        # sit above threshold 1.0...
        assert estimator.estimate(query, rep, 1.0).nodoc == 0.0
        expansion = estimator.expand(query, rep)
        assert expansion.max_exponent() <= 1.0 + 1e-12
        # ...while mass below 1.0 survives the clamp.
        assert estimator.estimate(query, rep, 0.2).nodoc > 0.0

    def test_triplet_overestimates_max_for_tight_distributions(self, rep):
        # Estimated 99.9th percentile generally != the true stored max;
        # this is exactly why Tables 10-12 degrade vs Tables 1-2.
        quad = SubrangeEstimator()
        trip = SubrangeEstimator(use_stored_max=False)
        query = Query.from_terms(["rare"])
        t = 0.56  # just above the true max weight 0.55
        assert quad.estimate(query, rep, t).nodoc == 0.0
        # Triplet mode believes some mass may lie above 0.55.
        assert trip.estimate(query, rep.as_triplets(), t).nodoc >= 0.0


class TestAgainstTruthOnRealIndex:
    def test_reasonable_accuracy_on_small_corpus(self, small_engine,
                                                 small_representative,
                                                 small_queries):
        estimator = SubrangeEstimator()
        total_err = 0.0
        count = 0
        for query in small_queries[:60]:
            truth = true_usefulness(small_engine, query, 0.2)
            est = estimator.estimate(query, small_representative, 0.2)
            total_err += abs(truth.nodoc - est.nodoc)
            count += 1
        # Mean absolute NoDoc error stays small relative to database size.
        assert total_err / count < small_engine.n_documents * 0.2

    def test_registry_names(self):
        from repro.core import get_estimator

        assert isinstance(get_estimator("subrange"), SubrangeEstimator)
        triplet = get_estimator("subrange-triplet")
        assert isinstance(triplet, SubrangeEstimator)
        assert not triplet.use_stored_max
