"""Unit tests for paper-style table rendering."""

import pytest

from repro.core import BasicEstimator, SubrangeEstimator
from repro.evaluation import (
    MethodSpec,
    format_combined_table,
    format_error_table,
    format_match_table,
    format_sizing_table,
    run_usefulness_experiment,
)
from repro.representatives import PAPER_COLLECTION_STATS


@pytest.fixture(scope="module")
def result(small_engine, small_representative, small_queries):
    return run_usefulness_experiment(
        small_engine,
        small_queries[:40],
        [
            MethodSpec("subrange", SubrangeEstimator(), small_representative),
            MethodSpec("basic", BasicEstimator(), small_representative),
        ],
    )


class TestMatchTable:
    def test_contains_thresholds_and_labels(self, result):
        text = format_match_table(result)
        assert "0.1" in text and "0.6" in text
        assert "subrange method" in text
        assert "basic method" in text

    def test_cells_are_slash_pairs(self, result):
        lines = format_match_table(result).splitlines()[3:]
        for line in lines:
            assert line.count("/") == 2  # one per method

    def test_method_subset(self, result):
        text = format_match_table(result, methods=["subrange"])
        assert "basic method" not in text

    def test_title_mentions_database(self, result):
        assert result.database in format_match_table(result)


class TestErrorTable:
    def test_has_dn_and_ds_columns(self, result):
        header = format_error_table(result).splitlines()[1]
        assert "d-N" in header
        assert "d-S" in header

    def test_row_count(self, result):
        lines = format_error_table(result).splitlines()
        # title + header + separator + one row per threshold.
        assert len(lines) == 3 + len(result.thresholds)


class TestCombinedTable:
    def test_single_method_layout(self, result):
        text = format_combined_table(result, "subrange")
        header = text.splitlines()[1]
        for column in ("T", "m/mis", "d-N", "d-S"):
            assert column in header

    def test_unknown_method_raises(self, result):
        with pytest.raises(KeyError):
            format_combined_table(result, "nope")


class TestSizingTable:
    def test_paper_rows_render(self):
        text = format_sizing_table(PAPER_COLLECTION_STATS)
        assert "WSJ" in text
        assert "3.85" in text
        assert "1563" in text

    def test_empty(self):
        text = format_sizing_table([])
        assert "collection" in text
