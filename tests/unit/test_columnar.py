"""Unit tests for the columnar representative store (Section 3 layout)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.representatives import (
    BrokerVocabulary,
    ColumnarRepresentative,
    DatabaseRepresentative,
    FleetRepresentativeRef,
    FleetRepresentativeStore,
    TermStats,
    partition_round_robin,
)
from repro.representatives.columnar import UNKNOWN_TERM


def make_rep(name="d1", n=100, triplet=False, terms=("apple", "pear", "plum")):
    stats = {}
    for i, term in enumerate(terms):
        mean = 0.2 + 0.1 * i
        stats[term] = TermStats(
            probability=(i + 1) / (len(terms) + 1),
            mean=mean,
            std=0.05 * i,
            max_weight=None if triplet else mean + 0.3,
        )
    return DatabaseRepresentative(name, n_documents=n, term_stats=stats)


class TestBrokerVocabulary:
    def test_intern_is_stable_and_dense(self):
        vocab = BrokerVocabulary()
        assert vocab.intern("apple") == 0
        assert vocab.intern("pear") == 1
        assert vocab.intern("apple") == 0
        assert len(vocab) == 2
        assert "apple" in vocab and "plum" not in vocab
        assert vocab.term_of(1) == "pear"

    def test_id_of_unknown_is_sentinel(self):
        vocab = BrokerVocabulary()
        vocab.intern("apple")
        assert vocab.id_of("ghost") == UNKNOWN_TERM
        ids = vocab.ids_of(["apple", "ghost"])
        assert ids.tolist() == [0, UNKNOWN_TERM]
        # ids_of never interns.
        assert len(vocab) == 1

    def test_nbytes_positive(self):
        vocab = BrokerVocabulary()
        vocab.intern_many(["a", "b", "c"])
        assert vocab.nbytes > 0


class TestColumnarRepresentative:
    def test_from_representative_sorts_by_term_id(self):
        vocab = BrokerVocabulary()
        vocab.intern_many(["zebra", "apple"])  # zebra gets the smaller id
        rep = make_rep(terms=("apple", "zebra"))
        columnar = ColumnarRepresentative.from_representative(rep, vocab)
        assert columnar.term_ids.tolist() == [0, 1]
        assert np.all(np.diff(columnar.term_ids) > 0)
        assert columnar.vocab is vocab

    def test_duck_api_matches_dict_form(self):
        rep = make_rep()
        columnar = ColumnarRepresentative.from_representative(rep)
        assert len(columnar) == len(rep)
        assert columnar.n_documents == rep.n_documents
        assert "apple" in columnar and "ghost" not in columnar
        assert columnar.get("ghost") is None
        assert columnar.get("pear") == rep.get("pear")
        assert dict(columnar.items()) == dict(rep.items())
        assert columnar.document_frequency("apple") == pytest.approx(
            rep.get("apple").probability * rep.n_documents
        )
        assert columnar.document_frequency("ghost") == 0.0

    def test_triplet_mode_round_trips_none(self):
        rep = make_rep(triplet=True)
        columnar = ColumnarRepresentative.from_representative(rep)
        assert not columnar.has_max_weights
        assert columnar.get("apple").max_weight is None
        assert dict(columnar.to_representative().items()) == dict(rep.items())

    def test_as_triplets_withholds_max(self):
        columnar = ColumnarRepresentative.from_representative(make_rep())
        triplets = columnar.as_triplets()
        assert columnar.has_max_weights and not triplets.has_max_weights
        assert triplets.get("apple").max_weight is None
        assert triplets.get("apple").mean == columnar.get("apple").mean

    def test_validation(self):
        vocab = BrokerVocabulary()
        ids = vocab.intern_many(["a", "b"]).astype(np.int64)
        ok = dict(p=np.ones(2), w=np.ones(2), sigma=np.zeros(2), mw=np.ones(2))
        with pytest.raises(ValueError, match="n_documents"):
            ColumnarRepresentative("d", -1, vocab, ids, **ok)
        with pytest.raises(ValueError, match="parallel"):
            ColumnarRepresentative(
                "d", 1, vocab, ids,
                p=np.ones(3), w=np.ones(2), sigma=np.zeros(2), mw=np.ones(2),
            )
        with pytest.raises(ValueError, match="ascending"):
            ColumnarRepresentative("d", 1, vocab, ids[::-1].copy(), **ok)

    def test_nbytes_is_array_budget(self):
        columnar = ColumnarRepresentative.from_representative(make_rep())
        # 3 terms x (int64 id + four float64 stats) = 3 x 40 bytes.
        assert columnar.nbytes == 3 * 5 * 8


class TestNpzPersistence:
    def test_round_trip_through_path(self, tmp_path):
        rep = make_rep()
        path = tmp_path / "rep.npz"
        ColumnarRepresentative.from_representative(rep).save_npz(path)
        restored = ColumnarRepresentative.load_npz(path)
        assert dict(restored.to_representative().items()) == dict(rep.items())
        assert restored.name == rep.name
        assert restored.n_documents == rep.n_documents

    def test_load_interns_into_given_vocab(self):
        buffer = io.BytesIO()
        ColumnarRepresentative.from_representative(make_rep()).save_npz(buffer)
        buffer.seek(0)
        vocab = BrokerVocabulary()
        vocab.intern("unrelated")
        restored = ColumnarRepresentative.load_npz(buffer, vocab)
        assert restored.vocab is vocab
        assert vocab.id_of("apple") != UNKNOWN_TERM

    def test_rejects_foreign_npz(self):
        buffer = io.BytesIO()
        np.savez(buffer, format_version=np.int64(1), kind=np.frombuffer(
            b"something-else", dtype=np.uint8
        ))
        buffer.seek(0)
        with pytest.raises(ValueError, match="not a columnar"):
            ColumnarRepresentative.load_npz(buffer)

    def test_rejects_unknown_version(self):
        buffer = io.BytesIO()
        np.savez(buffer, format_version=np.int64(999))
        buffer.seek(0)
        with pytest.raises(ValueError, match="version"):
            ColumnarRepresentative.load_npz(buffer)


class TestFleetStore:
    def test_add_returns_read_through_ref(self):
        store = FleetRepresentativeStore()
        rep = make_rep("d1")
        ref = store.add(rep)
        assert isinstance(ref, FleetRepresentativeRef)
        assert ref.n_documents == rep.n_documents
        assert len(ref) == len(rep)
        assert ref.get("pear") == rep.get("pear")
        assert ref.get("ghost") is None
        assert "apple" in ref
        assert dict(ref.items()) == dict(rep.items())
        assert ref.has_max_weights
        assert ref.document_frequency("apple") == pytest.approx(
            rep.get("apple").probability * rep.n_documents
        )

    def test_replace_by_name(self):
        store = FleetRepresentativeStore()
        store.add(make_rep("d1", n=10))
        store.add(make_rep("d2", n=20))
        store.add(make_rep("d1", n=30, terms=("kiwi",)))
        assert store.engine_names == ["d1", "d2"]
        assert store.n_documents.tolist() == [30, 20]
        assert store.term_stats("d1", "apple") is None
        assert store.term_stats("d1", "kiwi") is not None

    def test_remove(self):
        store = FleetRepresentativeStore()
        store.add(make_rep("d1"))
        store.add(make_rep("d2", terms=("kiwi", "apple")))
        store.gather(store.vocab.ids_of(["apple"]))  # force a pack
        store.remove("d1")
        assert store.engine_names == ["d2"]
        assert store.index_of("d2") == 0
        assert store.term_stats("d2", "kiwi") is not None
        with pytest.raises(KeyError):
            store.remove("d1")

    def test_term_stats_reads_pending_before_pack(self):
        store = FleetRepresentativeStore()
        store.add(make_rep("d1"))
        store.gather(store.vocab.ids_of(["apple"]))  # pack d1
        store.add(make_rep("d1", n=7, terms=("kiwi",)))  # pending again
        stats = store.term_stats("d1", "kiwi")
        assert stats is not None and stats.mean == 0.2
        assert store.term_stats("d1", "apple") is None

    def test_gather_shapes_and_unknowns(self):
        store = FleetRepresentativeStore()
        store.add(make_rep("d1"))
        store.add(make_rep("d2", triplet=True, terms=("apple", "kiwi")))
        ids = store.vocab.ids_of(["apple", "kiwi", "ghost"])
        p, w, sigma, mw = store.gather(ids)
        assert p.shape == w.shape == sigma.shape == mw.shape == (2, 3)
        # d1 lacks kiwi; nobody has ghost (UNKNOWN_TERM id).
        assert p[0, 1] == 0.0 and p[0, 2] == 0.0 and p[1, 2] == 0.0
        assert p[0, 0] > 0 and p[1, 1] > 0
        # Triplet engine reads NaN max weights; quadruplet engine doesn't.
        assert np.isnan(mw[1, 0]) and not np.isnan(mw[0, 0])

    def test_materialize_is_exact(self):
        store = FleetRepresentativeStore()
        rep = make_rep("d1", triplet=False)
        store.add(rep)
        back = store.materialize("d1")
        assert back.n_documents == rep.n_documents
        assert dict(back.items()) == dict(rep.items())

    def test_memory_and_counts(self):
        store = FleetRepresentativeStore()
        store.add(make_rep("d1"))
        store.add(make_rep("d2", terms=("apple",)))
        assert store.total_entries == 4
        assert store.nbytes > 0
        assert store.vocab_nbytes > 0
        assert store.n_terms_of("d2") == 1
        assert "d1" in store and "d3" not in store
        assert len(store) == 2

    def test_binary_mean_w_matches_scalar_iteration_order(self):
        rep = make_rep("d1")
        store = FleetRepresentativeStore()
        store.add(rep)
        expected = float(np.mean([s.mean for __, s in rep.items()]))
        assert store.binary_mean_w.tolist() == [expected]


class TestFleetNpz:
    """Fleet bundles: the unit of shipment between coordinator and shards."""

    def fleet(self):
        store = FleetRepresentativeStore()
        store.add(make_rep("d1", n=10))
        store.add(make_rep("d2", n=20, triplet=True, terms=("apple", "kiwi")))
        store.add(make_rep("d3", n=30, terms=("plum",)))
        return store

    def test_round_trip_is_bit_exact(self):
        store = self.fleet()
        buffer = io.BytesIO()
        store.save_npz(buffer)
        buffer.seek(0)
        restored = FleetRepresentativeStore.load_npz(buffer)
        assert restored.engine_names == store.engine_names
        assert restored.n_documents.tolist() == store.n_documents.tolist()
        # binary_mean_w is copied, not recomputed: recomputing over the
        # sorted column order can differ in the last ulp.
        assert restored.binary_mean_w.tolist() == store.binary_mean_w.tolist()
        for name in store.engine_names:
            assert dict(restored.materialize(name).items()) == dict(
                store.materialize(name).items()
            )

    def test_round_trip_through_path(self, tmp_path):
        store = self.fleet()
        path = tmp_path / "fleet.npz"
        store.save_npz(path)
        restored = FleetRepresentativeStore.load_npz(path)
        assert restored.engine_names == store.engine_names

    def test_load_interns_into_given_vocab(self):
        store = self.fleet()
        buffer = io.BytesIO()
        store.save_npz(buffer)
        buffer.seek(0)
        vocab = BrokerVocabulary()
        vocab.intern("zebra")  # pre-existing ids shift every term id
        restored = FleetRepresentativeStore.load_npz(buffer, vocab)
        assert restored.vocab is vocab
        assert dict(restored.materialize("d1").items()) == dict(
            store.materialize("d1").items()
        )

    def test_rejects_representative_bundle(self):
        buffer = io.BytesIO()
        ColumnarRepresentative.from_representative(make_rep()).save_npz(buffer)
        buffer.seek(0)
        with pytest.raises(ValueError, match="fleet"):
            FleetRepresentativeStore.load_npz(buffer)

    def test_empty_fleet_round_trips(self):
        buffer = io.BytesIO()
        FleetRepresentativeStore().save_npz(buffer)
        buffer.seek(0)
        assert FleetRepresentativeStore.load_npz(buffer).engine_names == []

    def test_slice_preserves_binary_mean_w(self):
        store = self.fleet()
        part = store.slice_engines(["d2", "d3"])
        assert part.engine_names == ["d2", "d3"]
        full = {n: v for n, v in zip(store.engine_names, store.binary_mean_w)}
        assert part.binary_mean_w.tolist() == [full["d2"], full["d3"]]
        for name in ("d2", "d3"):
            assert dict(part.materialize(name).items()) == dict(
                store.materialize(name).items()
            )

    def test_slices_cover_the_fleet_disjointly(self):
        store = self.fleet()
        slices = partition_round_robin(store.engine_names, 2)
        assert slices == [["d1", "d3"], ["d2"]]
        parts = [store.slice_engines(names) for names in slices]
        seen = [n for part in parts for n in part.engine_names]
        assert sorted(seen) == store.engine_names


class TestPartitionRoundRobin:
    def test_deals_in_index_order(self):
        assert partition_round_robin(["a", "b", "c", "d", "e"], 2) == [
            ["a", "c", "e"],
            ["b", "d"],
        ]

    def test_more_shards_than_items_leaves_empty_slices(self):
        assert partition_round_robin(["a"], 3) == [["a"], [], []]

    def test_single_shard_is_identity(self):
        items = ["a", "b", "c"]
        assert partition_round_robin(items, 1) == [items]

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            partition_round_robin(["a"], 0)
