"""Unit tests for repro.vsm.Vocabulary."""

import pytest

from repro.vsm import Vocabulary


class TestVocabulary:
    def test_add_assigns_dense_ids(self):
        vocab = Vocabulary()
        assert vocab.add("apple") == 0
        assert vocab.add("banana") == 1
        assert vocab.add("cherry") == 2

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("apple")
        assert vocab.add("apple") == first
        assert len(vocab) == 1

    def test_id_of_known_term(self):
        vocab = Vocabulary(["apple", "banana"])
        assert vocab.id_of("banana") == 1

    def test_id_of_unknown_term_is_none(self):
        assert Vocabulary().id_of("missing") is None

    def test_term_of_roundtrip(self):
        vocab = Vocabulary(["apple", "banana"])
        for term in ("apple", "banana"):
            assert vocab.term_of(vocab.id_of(term)) == term

    def test_term_of_unknown_raises(self):
        with pytest.raises(IndexError):
            Vocabulary().term_of(0)

    def test_contains(self):
        vocab = Vocabulary(["apple"])
        assert "apple" in vocab
        assert "banana" not in vocab

    def test_iteration_in_id_order(self):
        vocab = Vocabulary(["c", "a", "b"])
        assert list(vocab) == ["c", "a", "b"]

    def test_constructor_dedupes(self):
        vocab = Vocabulary(["a", "b", "a"])
        assert len(vocab) == 2

    def test_len_empty(self):
        assert len(Vocabulary()) == 0

    def test_repr(self):
        assert "2 terms" in repr(Vocabulary(["a", "b"]))
