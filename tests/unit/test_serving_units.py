"""Unit tests for the serving support pieces: deadlines and admission."""

import threading
import time

import pytest

from repro.obs import MetricsRegistry
from repro.serving import AdmissionQueue, Deadline, ambient_deadline, deadline_scope
from repro.serving.admission import ADMITTED, CLOSED, EXPIRED, SHED


class TestDeadline:
    def test_remaining_counts_down(self):
        deadline = Deadline(10.0)
        assert 9.0 < deadline.remaining() <= 10.0
        assert not deadline.expired

    def test_zero_budget_is_expired(self):
        assert Deadline(0.0).expired

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-0.1)

    def test_header_roundtrip(self):
        deadline = Deadline(5.0)
        parsed = Deadline.parse_header(deadline.header_value())
        assert abs(parsed.remaining() - deadline.remaining()) < 0.1

    @pytest.mark.parametrize("bad", ["soon", "", "nan", "inf"])
    def test_bad_header_rejected(self, bad):
        with pytest.raises(ValueError):
            Deadline.parse_header(bad)


class TestDeadlineScope:
    def test_no_ambient_by_default(self):
        assert ambient_deadline() is None

    def test_scope_sets_and_clears(self):
        deadline = Deadline(10.0)
        with deadline_scope(deadline):
            assert ambient_deadline() is deadline
        assert ambient_deadline() is None

    def test_none_scope_is_noop(self):
        with deadline_scope(None):
            assert ambient_deadline() is None

    def test_tightest_scope_wins(self):
        loose, tight = Deadline(100.0), Deadline(1.0)
        with deadline_scope(loose):
            with deadline_scope(tight):
                assert ambient_deadline() is tight
            assert ambient_deadline() is loose

    def test_inner_scope_cannot_extend(self):
        tight, loose = Deadline(1.0), Deadline(100.0)
        with deadline_scope(tight):
            with deadline_scope(loose):
                assert ambient_deadline() is tight

    def test_thread_isolation(self):
        seen = []
        with deadline_scope(Deadline(10.0)):
            thread = threading.Thread(
                target=lambda: seen.append(ambient_deadline())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestAdmissionQueue:
    def test_admit_under_capacity(self):
        queue = AdmissionQueue(max_active=2, max_queued=0)
        assert queue.acquire() == ADMITTED
        assert queue.acquire() == ADMITTED
        assert queue.active == 2

    def test_shed_beyond_queue(self):
        queue = AdmissionQueue(max_active=1, max_queued=0)
        assert queue.acquire() == ADMITTED
        assert queue.acquire(timeout=0.1) == SHED

    def test_release_admits_waiter(self):
        queue = AdmissionQueue(max_active=1, max_queued=1)
        assert queue.acquire() == ADMITTED
        outcomes = []
        waiter = threading.Thread(
            target=lambda: outcomes.append(queue.acquire(timeout=5.0))
        )
        waiter.start()
        deadline = time.monotonic() + 2.0
        while queue.queued == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        queue.release()
        waiter.join(timeout=5.0)
        assert outcomes == [ADMITTED]

    def test_queued_wait_expires(self):
        queue = AdmissionQueue(max_active=1, max_queued=1)
        assert queue.acquire() == ADMITTED
        started = time.monotonic()
        assert queue.acquire(timeout=0.05) == EXPIRED
        assert time.monotonic() - started < 2.0
        assert queue.queued == 0

    def test_closed_refuses_new_work(self):
        queue = AdmissionQueue(max_active=1, max_queued=1)
        queue.close()
        assert queue.acquire() == CLOSED

    def test_close_lets_active_finish(self):
        queue = AdmissionQueue(max_active=1, max_queued=0)
        assert queue.acquire() == ADMITTED
        queue.close()
        queue.release()  # no error: held slots stay valid through close
        assert queue.wait_idle(timeout=1.0)

    def test_wait_idle_times_out_while_busy(self):
        queue = AdmissionQueue(max_active=1, max_queued=0)
        assert queue.acquire() == ADMITTED
        assert not queue.wait_idle(timeout=0.05)
        queue.release()
        assert queue.wait_idle(timeout=1.0)

    def test_unbalanced_release_rejected(self):
        queue = AdmissionQueue(max_active=1, max_queued=0)
        with pytest.raises(RuntimeError):
            queue.release()

    def test_metrics_exported(self):
        registry = MetricsRegistry()
        queue = AdmissionQueue(max_active=1, max_queued=0, registry=registry)
        queue.acquire()
        queue.acquire(timeout=0.01)  # shed
        assert registry.value("serving.admission.admitted") == 1
        assert registry.value("serving.admission.shed") == 1
        assert registry.value("serving.admission.active") == 1

    @pytest.mark.parametrize("active,queued", [(0, 0), (1, -1)])
    def test_bad_limits_rejected(self, active, queued):
        with pytest.raises(ValueError):
            AdmissionQueue(max_active=active, max_queued=queued)

    def test_contended_admission_never_exceeds_max_active(self):
        queue = AdmissionQueue(max_active=3, max_queued=32)
        peak = []
        lock = threading.Lock()
        current = [0]

        def worker():
            if queue.acquire(timeout=5.0) != ADMITTED:
                return
            with lock:
                current[0] += 1
                peak.append(current[0])
            time.sleep(0.002)
            with lock:
                current[0] -= 1
            queue.release()

        threads = [threading.Thread(target=worker) for __ in range(20)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert max(peak) <= 3
        assert queue.wait_idle(timeout=1.0)


class TestRetryAfterHeader:
    """Shed responses advertise an *integral* Retry-After (RFC 9110
    delta-seconds), rounded up so clients never come back early."""

    @pytest.mark.parametrize(
        "hint,expected",
        [(1.2, "2"), (1.0, "1"), (0.2, "1"), (0.0, "1"), (4.0, "4"), (4.5, "5")],
    )
    def test_hint_rounds_up_to_whole_seconds(self, hint, expected):
        from repro.serving import HTTPError

        response = HTTPError(503, "shed", retry_after=hint).to_response()
        assert response.headers["Retry-After"] == expected

    def test_header_absent_without_hint(self):
        from repro.serving import HTTPError

        response = HTTPError(503, "shed").to_response()
        assert "Retry-After" not in response.headers

    def test_gateway_shed_carries_configured_hint(self):
        """End to end through the app: a shed /search answers 503 with the
        ceil()ed Retry-After of the configured float hint."""
        import json

        from repro.corpus import Collection, Document
        from repro.engine import SearchEngine
        from repro.metasearch import MetasearchBroker
        from repro.serving import GatewayApp

        broker = MetasearchBroker()
        broker.register(
            SearchEngine(
                Collection.from_documents(
                    "db", [Document("d1", terms=["rocket"])]
                )
            )
        )
        app = GatewayApp(
            broker, max_active=1, max_queued=0, retry_after=2.5
        )
        app.admission.acquire()  # occupy the only active slot
        try:
            body = json.dumps(
                {
                    "query": {
                        "kind": "query",
                        "terms": ["rocket"],
                        "weights": [1.0],
                    },
                    "threshold": 0.1,
                }
            ).encode("utf-8")
            response = app.handle("POST", "/search", {}, body)
        finally:
            app.admission.release()
        assert response.status == 503
        assert response.headers["Retry-After"] == "3"


class TestConnectionPoolForkSafety:
    """The per-thread pool is keyed on pid too: an entry inherited across
    fork() is closed and redialed, never written to."""

    def make_client(self):
        from repro.serving.remote_engine import _HTTPJsonClient

        return _HTTPJsonClient("http://127.0.0.1:9", timeout=1.0)

    class FakeConnection:
        sock = None
        timeout = None

        def __init__(self):
            self.closed = False

        def close(self):
            self.closed = True

    def test_same_pid_reuses_pooled_connection(self):
        client = self.make_client()
        conn = client._connection(1.0)
        assert client._connection(2.0) is conn
        assert conn.timeout == 2.0  # budget refreshed on reuse

    def test_pid_change_closes_and_redials(self):
        import os

        client = self.make_client()
        stale = self.FakeConnection()
        client._local.conn = stale
        client._local.pid = os.getpid() + 1  # as if inherited across fork()
        fresh = client._connection(1.0)
        assert stale.closed, "inherited connection must be closed, not reused"
        assert fresh is not stale
        assert client._local.pid == os.getpid()

    def test_pool_is_per_thread(self):
        import threading

        client = self.make_client()
        here = client._connection(1.0)
        seen = []
        thread = threading.Thread(
            target=lambda: seen.append(client._connection(1.0))
        )
        thread.start()
        thread.join()
        assert seen[0] is not here


class TestRemoteTimeoutFailFast:
    """An exhausted deadline raises before any bytes hit the wire, and the
    dispatcher records it as a non-retried timeout."""

    def test_exhausted_ambient_deadline_raises_without_io(self):
        from repro.serving import RemoteTimeout
        from repro.serving.remote_engine import _HTTPJsonClient

        # Port 9 (discard) would hang or refuse; the fail-fast path must
        # raise before ever dialing it.
        client = _HTTPJsonClient("http://127.0.0.1:9", timeout=10.0)
        with deadline_scope(Deadline(0.0)):
            with pytest.raises(RemoteTimeout, match="deadline exhausted"):
                client.request("GET", "/healthz")

    def test_remote_timeout_is_non_retryable_timeout_kind(self):
        from repro.serving import RemoteTimeout

        assert RemoteTimeout.retryable is False
        assert RemoteTimeout.failure_kind == "timeout"

    def test_dispatcher_records_timeout_without_retrying(self):
        from repro.metasearch import ConcurrentDispatcher
        from repro.serving import RemoteTimeout

        registry = MetricsRegistry()
        dispatcher = ConcurrentDispatcher(retries=3, registry=registry)
        attempts = []

        def call():
            attempts.append(1)
            raise RemoteTimeout("deadline exhausted before calling x")

        report = dispatcher.dispatch({"remote": call})
        assert len(attempts) == 1, "a spent budget must not be retried"
        assert report.failures[0].kind == "timeout"
        assert registry.value("dispatch.timeouts") == 1
        assert registry.value("dispatch.retries") in (None, 0)
