"""Unit tests for document-count-driven allocation."""

import pytest

from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.metasearch import (
    allocate_documents,
    expected_nodoc_at,
    threshold_for_k,
)
from repro.representatives import build_representative


def make_rep(name, docs):
    engine = SearchEngine(
        Collection.from_documents(
            name, [Document(f"{name}-{i}", terms=t) for i, t in enumerate(docs)]
        )
    )
    return build_representative(engine)


@pytest.fixture
def representatives():
    return {
        "rich": make_rep(
            "rich", [["x", "y"], ["x"], ["x", "z"], ["x", "x", "q"]]
        ),
        "poor": make_rep("poor", [["x", "a", "b", "c"], ["d"]]),
        "empty": make_rep("none", [["unrelated"]]),
    }


class TestThresholdForK:
    def test_monotone_in_k(self, representatives):
        query = Query.from_terms(["x"])
        t1 = threshold_for_k(query, representatives, 1)
        t3 = threshold_for_k(query, representatives, 3)
        assert t1 >= t3

    def test_supply_exceeding_demand(self, representatives):
        query = Query.from_terms(["x"])
        threshold = threshold_for_k(query, representatives, 2)
        total = sum(
            expected_nodoc_at(query, representatives, threshold).values()
        )
        assert total >= 2

    def test_unsatisfiable_k_returns_zero(self, representatives):
        query = Query.from_terms(["x"])
        assert threshold_for_k(query, representatives, 1000) == 0.0

    def test_k_validated(self, representatives):
        with pytest.raises(ValueError):
            threshold_for_k(Query.from_terms(["x"]), representatives, 0)

    def test_no_matching_terms(self, representatives):
        query = Query.from_terms(["zzzz"])
        assert threshold_for_k(query, representatives, 1) == 0.0


class TestExpectedNoDocAt:
    def test_covers_all_engines(self, representatives):
        out = expected_nodoc_at(Query.from_terms(["x"]), representatives, 0.1)
        assert set(out) == {"rich", "poor", "empty"}

    def test_empty_engine_zero(self, representatives):
        out = expected_nodoc_at(Query.from_terms(["x"]), representatives, 0.1)
        assert out["empty"] == 0.0


class TestAllocateDocuments:
    def test_quotas_sum_to_k_when_supply_allows(self, representatives):
        query = Query.from_terms(["x"])
        quotas = allocate_documents(query, representatives, 3)
        assert sum(quotas.values()) == 3

    def test_rich_engine_gets_more(self, representatives):
        query = Query.from_terms(["x"])
        quotas = allocate_documents(query, representatives, 4)
        assert quotas["rich"] >= quotas["poor"]
        assert quotas["empty"] == 0

    def test_nothing_to_allocate(self, representatives):
        quotas = allocate_documents(
            Query.from_terms(["zzzz"]), representatives, 5
        )
        assert all(v == 0 for v in quotas.values())

    def test_quotas_nonnegative_integers(self, representatives):
        quotas = allocate_documents(Query.from_terms(["x", "y"]),
                                    representatives, 5)
        for value in quotas.values():
            assert isinstance(value, int)
            assert value >= 0

    def test_k_one(self, representatives):
        quotas = allocate_documents(Query.from_terms(["x"]), representatives, 1)
        assert sum(quotas.values()) == 1
