"""Unit tests for repro.index.InvertedIndex."""

import math

import numpy as np
import pytest

from repro.corpus import Collection, Document
from repro.index import InvertedIndex
from repro.vsm import BinaryWeighting


@pytest.fixture
def collection():
    return Collection.from_documents(
        "c",
        [
            Document("d1", terms=["a", "a", "a", "b"]),   # tf a=3, b=1
            Document("d2", terms=["b", "c"]),             # tf b=1, c=1
            Document("d3", terms=["c", "c"]),             # tf c=2
        ],
    )


class TestNormalizedIndex:
    def test_document_frequency(self, collection):
        index = InvertedIndex(collection)
        a = collection.vocabulary.id_of("a")
        b = collection.vocabulary.id_of("b")
        assert index.document_frequency(a) == 1
        assert index.document_frequency(b) == 2

    def test_weights_are_normalized(self, collection):
        index = InvertedIndex(collection)
        a = collection.vocabulary.id_of("a")
        plist = index.postings(a)
        # d1 norm = sqrt(9 + 1) = sqrt(10); a's normalized weight 3/sqrt(10).
        assert plist.weights[0] == pytest.approx(3 / math.sqrt(10))

    def test_document_norm(self, collection):
        index = InvertedIndex(collection)
        assert index.document_norm(0) == pytest.approx(math.sqrt(10))
        assert index.document_norm(2) == pytest.approx(2.0)

    def test_normalized_doc_weight_vector_has_unit_norm(self, collection):
        index = InvertedIndex(collection)
        acc = np.zeros(3)
        for __, plist in index.items():
            acc[plist.doc_indices] += plist.weights**2
        assert acc == pytest.approx(np.ones(3))

    def test_unknown_term_empty_postings(self, collection):
        index = InvertedIndex(collection)
        plist = index.postings(9999)
        assert plist.document_frequency == 0
        assert plist.max_weight() == 0.0

    def test_max_weight(self, collection):
        index = InvertedIndex(collection)
        c = collection.vocabulary.id_of("c")
        # c appears in d2 (1/sqrt(2)) and d3 (2/2 = 1.0).
        assert index.postings(c).max_weight() == pytest.approx(1.0)

    def test_doc_indices_ascending(self, collection):
        index = InvertedIndex(collection)
        for __, plist in index.items():
            assert np.all(np.diff(plist.doc_indices) > 0)

    def test_n_terms(self, collection):
        assert InvertedIndex(collection).n_terms == 3


class TestUnnormalizedIndex:
    def test_raw_tf_weights(self, collection):
        index = InvertedIndex(collection, normalize=False)
        a = collection.vocabulary.id_of("a")
        assert index.postings(a).weights[0] == 3.0

    def test_norms_still_recorded(self, collection):
        index = InvertedIndex(collection, normalize=False)
        assert index.document_norm(0) == pytest.approx(math.sqrt(10))


class TestAlternativeWeighting:
    def test_binary_weighting_normalized(self, collection):
        index = InvertedIndex(collection, weighting=BinaryWeighting())
        a = collection.vocabulary.id_of("a")
        # d1 has two distinct terms -> norm sqrt(2); weight 1/sqrt(2).
        assert index.postings(a).weights[0] == pytest.approx(1 / math.sqrt(2))

    def test_empty_collection(self):
        index = InvertedIndex(Collection("empty"))
        assert index.n_documents == 0
        assert index.n_terms == 0

    def test_repr(self, collection):
        assert "terms=3" in repr(InvertedIndex(collection))
