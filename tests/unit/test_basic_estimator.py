"""Unit tests for the basic (Proposition 1) estimator."""

import pytest

from repro.core import BasicEstimator, Usefulness
from repro.corpus import Query
from repro.representatives import DatabaseRepresentative, TermStats


class TestAgainstPaperExample:
    """Examples 3.1/3.2 use unnormalized query weights (1, 1, 1); with a
    representative scaled so that normalized weights reproduce the same
    exponent structure, the numbers carry over exactly when we scale the
    threshold accordingly."""

    def test_example_with_normalized_query(self, example31_representative):
        # Query (1,1,1) normalizes to u = 1/sqrt(3) per term.  Exponents are
        # scaled by 1/sqrt(3); a threshold of 3.5 * scale sits strictly
        # between the example's similarity levels 3 and 4 (the example's
        # threshold 3 is itself a similarity level, where strict-inequality
        # semantics would be at the mercy of floating-point rounding).
        query = Query(terms=("t1", "t2", "t3"), weights=(1.0, 1.0, 1.0))
        scale = 1.0 / query.norm()
        estimate = BasicEstimator().estimate(
            query, example31_representative, threshold=3.5 * scale
        )
        assert estimate.nodoc == pytest.approx(1.2)
        assert estimate.avgsim == pytest.approx(4.2 * scale)


class TestBehaviour:
    @pytest.fixture
    def rep(self):
        return DatabaseRepresentative(
            "db",
            n_documents=10,
            term_stats={
                "x": TermStats(0.5, 0.4, 0.1, 0.6),
                "y": TermStats(0.2, 0.3, 0.0, 0.3),
            },
        )

    def test_single_term_estimate(self, rep):
        query = Query.from_terms(["x"])
        estimate = BasicEstimator().estimate(query, rep, threshold=0.3)
        # All mass sits at u*w = 0.4 > 0.3: NoDoc = p*n = 5, AvgSim = 0.4.
        assert estimate.nodoc == pytest.approx(5.0)
        assert estimate.avgsim == pytest.approx(0.4)

    def test_single_term_above_weight_is_zero(self, rep):
        query = Query.from_terms(["x"])
        estimate = BasicEstimator().estimate(query, rep, threshold=0.4)
        assert estimate.nodoc == 0.0

    def test_unknown_terms_ignored(self, rep):
        query = Query.from_terms(["zzz"])
        estimate = BasicEstimator().estimate(query, rep, threshold=0.1)
        assert estimate == Usefulness.zero()

    def test_unknown_term_dilutes_via_query_norm(self, rep):
        alone = BasicEstimator().estimate(Query.from_terms(["x"]), rep, 0.35)
        diluted = BasicEstimator().estimate(
            Query.from_terms(["x", "zzz"]), rep, 0.35
        )
        # u drops from 1 to 1/sqrt(2): the weight point falls below 0.35.
        assert alone.nodoc > 0.0
        assert diluted.nodoc == 0.0

    def test_nodoc_bounded_by_n(self, rep):
        query = Query.from_terms(["x", "y"])
        estimate = BasicEstimator().estimate(query, rep, threshold=-0.01)
        assert estimate.nodoc <= rep.n_documents + 1e-9

    def test_estimate_many_consistent_with_estimate(self, rep):
        query = Query.from_terms(["x", "y"])
        thresholds = (0.1, 0.2, 0.3)
        many = BasicEstimator().estimate_many(query, rep, thresholds)
        singles = [
            BasicEstimator().estimate(query, rep, t) for t in thresholds
        ]
        for a, b in zip(many, singles):
            assert a.nodoc == pytest.approx(b.nodoc)
            assert a.avgsim == pytest.approx(b.avgsim)

    def test_expand_returns_probability_distribution(self, rep):
        query = Query.from_terms(["x", "y"])
        expansion = BasicEstimator().expand(query, rep)
        assert expansion.total_mass() == pytest.approx(1.0)

    def test_registry_name(self):
        from repro.core import get_estimator

        assert isinstance(get_estimator("basic"), BasicEstimator)
