"""Unit tests for repro.corpus.Collection."""

import pytest

from repro.corpus import Collection, Document
from repro.text import TextPipeline


def make_collection():
    return Collection.from_documents(
        "c",
        [
            Document("d1", terms=["apple", "banana", "apple"]),
            Document("d2", terms=["banana"]),
            Document("d3", terms=["cherry", "apple"]),
        ],
    )


class TestConstruction:
    def test_counts(self):
        collection = make_collection()
        assert collection.n_documents == 3
        assert collection.n_terms == 3

    def test_duplicate_doc_id_rejected(self):
        collection = Collection("c")
        collection.add_document(Document("d1", terms=["a"]))
        with pytest.raises(ValueError, match="duplicate"):
            collection.add_document(Document("d1", terms=["b"]))

    def test_tf_vector_counts_repeats(self):
        collection = make_collection()
        vec = collection.tf_vector(0)
        apple_id = collection.vocabulary.id_of("apple")
        assert vec.to_mapping()[apple_id] == 2.0

    def test_from_texts_runs_pipeline(self):
        collection = Collection.from_texts(
            "t", [("d1", "The apples!")], pipeline=TextPipeline(stem=False)
        )
        assert "apples" in collection.vocabulary
        assert "the" not in collection.vocabulary

    def test_empty_document_allowed(self):
        collection = Collection("c")
        collection.add_document(Document("d1", terms=[]))
        assert collection.tf_vector(0).nnz == 0

    def test_len(self):
        assert len(make_collection()) == 3


class TestAccessors:
    def test_doc_id_roundtrip(self):
        collection = make_collection()
        assert collection.doc_id(1) == "d2"
        assert collection.index_of("d2") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(KeyError):
            make_collection().index_of("nope")

    def test_doc_length(self):
        assert make_collection().doc_length(0) == 3

    def test_terms_of_reconstructs_multiset(self):
        collection = make_collection()
        assert sorted(collection.terms_of(0)) == ["apple", "apple", "banana"]

    def test_iter_tf_vectors(self):
        pairs = list(make_collection().iter_tf_vectors())
        assert [i for i, __ in pairs] == [0, 1, 2]

    def test_document_frequency(self):
        collection = make_collection()
        assert collection.document_frequency("apple") == 2
        assert collection.document_frequency("banana") == 2
        assert collection.document_frequency("cherry") == 1
        assert collection.document_frequency("missing") == 0


class TestMerge:
    def test_merged_unions_documents(self):
        a = Collection.from_documents("a", [Document("x1", terms=["p", "q"])])
        b = Collection.from_documents("b", [Document("y1", terms=["q", "r"])])
        merged = Collection.merged("ab", [a, b])
        assert merged.n_documents == 2
        assert merged.n_terms == 3

    def test_merged_rebuilds_vocabulary(self):
        # Term ids differ between sources; merge must re-key by string.
        a = Collection.from_documents("a", [Document("x1", terms=["zz", "aa"])])
        b = Collection.from_documents("b", [Document("y1", terms=["aa"])])
        merged = Collection.merged("ab", [a, b])
        assert merged.document_frequency("aa") == 2

    def test_merged_preserves_tf(self):
        a = Collection.from_documents("a", [Document("x1", terms=["p", "p", "q"])])
        merged = Collection.merged("m", [a])
        pid = merged.vocabulary.id_of("p")
        assert merged.tf_vector(0).to_mapping()[pid] == 2.0

    def test_merged_doc_id_collision_raises(self):
        a = Collection.from_documents("a", [Document("same", terms=["p"])])
        b = Collection.from_documents("b", [Document("same", terms=["q"])])
        with pytest.raises(ValueError, match="duplicate"):
            Collection.merged("m", [a, b])

    def test_merge_of_empty_list(self):
        assert Collection.merged("m", []).n_documents == 0


class TestSizing:
    def test_size_uses_text_when_available(self):
        collection = Collection("c")
        collection.add_document(Document("d1", terms=["ab"], text="x" * 100))
        assert collection.size_in_bytes() == 100

    def test_size_estimates_from_terms_otherwise(self):
        collection = Collection("c")
        collection.add_document(Document("d1", terms=["abc", "de"]))
        # len + 1 per term occurrence: 4 + 3.
        assert collection.size_in_bytes() == 7

    def test_size_in_pages(self):
        collection = Collection("c")
        collection.add_document(Document("d1", terms=[], text="x" * 4096))
        assert collection.size_in_pages(2048) == pytest.approx(2.0)
