"""Unit tests for the request-coalescing window.

These drive :class:`~repro.serving.coalesce.CoalescingWindow` with
controllable executors (gates, recorders) so every scheduling path is
deterministic: the idle fast-path, drain/full/timer flushes, queued
deadline expiry, intra-window dedup, error fan-out, and close-on-drain.
"""

import threading
import time

import pytest

from repro.obs import MetricsRegistry
from repro.serving import (
    CoalesceClosed,
    CoalesceExpired,
    CoalescingWindow,
    Deadline,
    deadline_scope,
)
from repro.serving.deadlines import ambient_deadline, detached_deadline_scope


class RecordingExecutor:
    """Records every batch it executes; result is item * 10."""

    def __init__(self):
        self.batches = []
        self.lock = threading.Lock()

    def __call__(self, items):
        with self.lock:
            self.batches.append(list(items))
        return [item * 10 for item in items]


class GatedExecutor(RecordingExecutor):
    """Blocks executions on an event until released."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.entered = threading.Event()

    def __call__(self, items):
        self.entered.set()
        assert self.gate.wait(10), "executor gate never released"
        return super().__call__(items)


def start_submissions(window, items, deadlines=None):
    """Submit every item from its own thread; join via finish()."""
    results = [None] * len(items)
    errors = [None] * len(items)

    def submit(i):
        deadline = deadlines[i] if deadlines else None
        try:
            results[i] = window.submit(items[i], deadline=deadline)
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            errors[i] = exc

    threads = [
        threading.Thread(target=submit, args=(i,)) for i in range(len(items))
    ]
    for thread in threads:
        thread.start()

    def finish():
        for thread in threads:
            thread.join(timeout=10)
            assert not thread.is_alive(), "submission thread hung"
        return results, errors

    return finish


def wait_until(pred, timeout=5.0, message="condition"):
    """Spin until ``pred()`` holds; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return
        time.sleep(0.002)
    raise AssertionError(f"timed out waiting for {message}")


def wait_queued(window, n, timeout=5.0):
    """Spin until ``n`` members are queued in the window."""
    wait_until(
        lambda: window.queued >= n,
        timeout=timeout,
        message=f"{n} queued members (have {window.queued})",
    )


def test_validates_configuration():
    with pytest.raises(ValueError):
        CoalescingWindow(lambda items: items, max_wait=0, max_batch=4)
    with pytest.raises(ValueError):
        CoalescingWindow(lambda items: items, max_wait=0.01, max_batch=0)


def test_idle_fast_path_executes_solo_and_immediately():
    executor = RecordingExecutor()
    registry = MetricsRegistry()
    window = CoalescingWindow(
        executor, max_wait=5.0, max_batch=8, registry=registry, name="w"
    )
    start = time.perf_counter()
    assert window.submit(3) == 30
    elapsed = time.perf_counter() - start
    assert executor.batches == [[3]]
    # A lone request never waits for the window timer.
    assert elapsed < 1.0
    assert registry.value(
        "serving.coalesce.flush", labels={"window": "w", "reason": "idle"}
    ) == 1


def test_concurrent_submissions_coalesce_into_one_batch():
    executor = GatedExecutor()
    registry = MetricsRegistry()
    window = CoalescingWindow(
        executor, max_wait=5.0, max_batch=8, registry=registry, name="w"
    )
    # A gated leader makes the next submissions pile into one window.
    leader = threading.Thread(target=window.submit, args=(0,))
    leader.start()
    assert executor.entered.wait(5)
    executor.entered.clear()
    finish = start_submissions(window, [1, 2, 3])
    wait_queued(window, 3)
    executor.gate.set()
    results, errors = finish()
    leader.join(timeout=10)
    for thread_error in errors:
        assert thread_error is None
    assert results == [10, 20, 30]
    # One solo batch for the leader, one coalesced batch for the rest.
    assert sorted(len(b) for b in executor.batches) == [1, 3]
    assert registry.value(
        "serving.coalesce.flush", labels={"window": "w", "reason": "drain"}
    ) == 1


def test_full_window_flushes_at_max_batch():
    executor = GatedExecutor()
    window = CoalescingWindow(executor, max_wait=30.0, max_batch=2)
    leader = threading.Thread(target=window.submit, args=(0,))
    leader.start()
    assert executor.entered.wait(5)
    executor.entered.clear()
    finish = start_submissions(window, [1, 2])
    # The second arrival fills the window; its leader enters the (still
    # gated) executor as an overlapping batch while the first runs.
    assert executor.entered.wait(5)
    executor.gate.set()
    results, errors = finish()
    leader.join(timeout=10)
    assert errors == [None, None]
    assert results == [10, 20]
    # max_wait is 30s, so only a "full" flush can have released [1, 2].
    assert [1, 2] in executor.batches or [2, 1] in executor.batches


def test_timer_flush_bounds_added_latency():
    executor = GatedExecutor()
    registry = MetricsRegistry()
    window = CoalescingWindow(
        executor, max_wait=0.05, max_batch=64, registry=registry, name="w"
    )
    leader = threading.Thread(target=window.submit, args=(0,))
    leader.start()
    assert executor.entered.wait(5)
    # The leader's batch is still executing (gate closed): the queued
    # member must flush on its own timer rather than wait for drain.
    start = time.perf_counter()
    done = threading.Event()
    follower_result = []

    def follower():
        follower_result.append(window.submit(5))
        done.set()

    threading.Thread(target=follower).start()
    executor.gate.set()  # open AFTER the timer has begun ticking
    assert done.wait(10)
    elapsed = time.perf_counter() - start
    leader.join(timeout=10)
    assert follower_result == [50]
    assert elapsed < 5.0  # far below drain-only behavior under a stall
    flushes = registry.value(
        "serving.coalesce.flush", labels={"window": "w", "reason": "timer"}
    ) + registry.value(
        "serving.coalesce.flush", labels={"window": "w", "reason": "drain"}
    )
    assert flushes >= 1


def test_expired_member_gets_504_without_spending_work():
    executor = GatedExecutor()
    registry = MetricsRegistry()
    window = CoalescingWindow(
        executor, max_wait=10.0, max_batch=8, registry=registry, name="w"
    )
    leader = threading.Thread(target=window.submit, args=(0,))
    leader.start()
    assert executor.entered.wait(5)
    # Queued with an already-tiny budget: expires while the leader runs.
    finish = start_submissions(window, [7], deadlines=[Deadline(0.02)])
    results, errors = finish()  # expiry needs no gate release
    executor.gate.set()
    leader.join(timeout=10)
    assert isinstance(errors[0], CoalesceExpired)
    # The expired member never reached any executed batch.
    assert all(7 not in batch for batch in executor.batches)
    assert registry.value(
        "serving.coalesce.expired", labels={"window": "w"}
    ) == 1


def test_expired_member_never_poisons_batchmates():
    executor = GatedExecutor()
    window = CoalescingWindow(executor, max_wait=10.0, max_batch=8)
    leader = threading.Thread(target=window.submit, args=(0,))
    leader.start()
    assert executor.entered.wait(5)
    executor.entered.clear()
    finish = start_submissions(
        window,
        [1, 2],
        deadlines=[Deadline(0.02), Deadline(30.0)],
    )
    wait_queued(window, 2)
    # Hold the gate until the tight-budget member has expired out of the
    # queue, so the surviving member demonstrably flushes without it.
    wait_until(lambda: window.queued == 1, message="member 1 expiry")
    executor.gate.set()
    results, errors = finish()
    leader.join(timeout=10)
    assert isinstance(errors[0], CoalesceExpired)
    assert errors[1] is None and results[1] == 20


def test_dedup_shares_one_execution_per_key():
    executor = GatedExecutor()
    registry = MetricsRegistry()
    window = CoalescingWindow(
        executor,
        max_wait=5.0,
        max_batch=8,
        key=lambda item: item % 2,  # all odd items share one row
        registry=registry,
        name="w",
    )
    leader = threading.Thread(target=window.submit, args=(2,))
    leader.start()
    assert executor.entered.wait(5)
    executor.entered.clear()
    finish = start_submissions(window, [3, 5, 7])
    wait_queued(window, 3)
    executor.gate.set()
    results, errors = finish()
    leader.join(timeout=10)
    assert errors == [None, None, None]
    # All three demuxed from the first odd item's single executed row.
    assert results == [30, 30, 30]
    assert sorted(len(b) for b in executor.batches) == [1, 1]
    assert registry.value(
        "serving.coalesce.deduped", labels={"window": "w"}
    ) == 2


def test_probe_answers_without_joining_any_window():
    executor = RecordingExecutor()
    registry = MetricsRegistry()
    window = CoalescingWindow(
        executor,
        max_wait=5.0,
        max_batch=8,
        probe=lambda item: item * 100 if item == 9 else None,
        registry=registry,
        name="w",
    )
    assert window.submit(9) == 900
    assert window.submit(1) == 10
    assert executor.batches == [[1]]
    assert registry.value(
        "serving.coalesce.cache_hits", labels={"window": "w"}
    ) == 1


def test_execute_error_fans_out_to_every_member():
    class Boom(RuntimeError):
        pass

    entered = threading.Event()
    gate = threading.Event()

    def failing(items):
        entered.set()
        assert gate.wait(10)
        raise Boom("batch failed")

    window = CoalescingWindow(failing, max_wait=5.0, max_batch=8)
    leader_error = []

    def leader():
        try:
            window.submit(0)
        except Boom as exc:
            leader_error.append(exc)

    leader_thread = threading.Thread(target=leader)
    leader_thread.start()
    assert entered.wait(5)
    finish = start_submissions(window, [1, 2])
    wait_queued(window, 2)
    gate.set()
    results, errors = finish()
    leader_thread.join(timeout=10)
    assert leader_error and isinstance(leader_error[0], Boom)
    assert all(isinstance(error, Boom) for error in errors)


def test_close_refuses_new_submissions():
    executor = RecordingExecutor()
    window = CoalescingWindow(executor, max_wait=5.0, max_batch=8)
    assert window.submit(1) == 10
    window.close()
    with pytest.raises(CoalesceClosed):
        window.submit(2)
    assert executor.batches == [[1]]


def test_batch_runs_under_loosest_member_deadline():
    """The detached scope gives the batch the longest member budget, so
    the leader's own (tighter) deadline cannot poison batchmates."""
    seen = []
    entered = threading.Event()
    gate = threading.Event()
    calls = []

    def execute(items):
        calls.append(list(items))
        if not entered.is_set():
            entered.set()
            assert gate.wait(10)
        else:
            seen.append(ambient_deadline())
        return list(items)

    window = CoalescingWindow(execute, max_wait=5.0, max_batch=8)
    leader = threading.Thread(target=window.submit, args=(0,))
    leader.start()
    assert entered.wait(5)
    tight, loose = Deadline(0.5), Deadline(30.0)

    def submit_with(deadline, item):
        with deadline_scope(deadline):
            window.submit(item, deadline=deadline)

    threads = [
        threading.Thread(target=submit_with, args=(tight, 1)),
        threading.Thread(target=submit_with, args=(loose, 2)),
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.05)
    gate.set()
    for thread in threads:
        thread.join(timeout=10)
        assert not thread.is_alive()
    leader.join(timeout=10)
    assert len(seen) == 1
    assert seen[0] is loose


def test_detached_scope_restores_caller_stack():
    outer = Deadline(10.0)
    inner = Deadline(20.0)
    with deadline_scope(outer):
        with detached_deadline_scope(inner):
            assert ambient_deadline() is inner
        assert ambient_deadline() is outer
    assert ambient_deadline() is None


def test_occupancy_and_wait_metrics_are_recorded():
    executor = GatedExecutor()
    registry = MetricsRegistry()
    window = CoalescingWindow(
        executor, max_wait=5.0, max_batch=8, registry=registry, name="w"
    )
    leader = threading.Thread(target=window.submit, args=(0,))
    leader.start()
    assert executor.entered.wait(5)
    executor.entered.clear()
    finish = start_submissions(window, [1, 2, 3])
    wait_queued(window, 3)
    executor.gate.set()
    results, errors = finish()
    leader.join(timeout=10)
    assert errors == [None, None, None]
    series = {
        (entry["name"], tuple(sorted(entry["labels"].items()))): entry
        for entry in registry.snapshot()
    }
    occupancy = series[
        ("serving.coalesce.batch.occupancy", (("window", "w"),))
    ]
    assert occupancy["count"] == 2  # the solo batch and the window
    assert occupancy["sum"] == 4  # 1 + 3 members
    wait = series[("serving.coalesce.wait.seconds", (("window", "w"),))]
    assert wait["count"] == 4
