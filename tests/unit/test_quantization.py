"""Unit tests for the one-byte quantizer (Section 3.2)."""

import numpy as np
import pytest

from repro.stats import OneByteQuantizer, QuantizationGrid


class TestFit:
    def test_levels_default_256(self):
        grid = OneByteQuantizer().fit([0.0, 1.0])
        assert grid.levels == 256

    def test_fixed_bounds(self):
        grid = OneByteQuantizer(low=0.0, high=1.0).fit([0.4])
        assert grid.low == 0.0
        assert grid.high == 1.0

    def test_inferred_bounds(self):
        grid = OneByteQuantizer().fit([2.0, 5.0, 3.0])
        assert grid.low == 2.0
        assert grid.high == 5.0

    def test_empty_with_bounds_ok(self):
        grid = OneByteQuantizer(low=0.0, high=1.0).fit([])
        assert grid.levels == 256

    def test_empty_without_bounds_raises(self):
        with pytest.raises(ValueError):
            OneByteQuantizer().fit([])

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            OneByteQuantizer(levels=0)

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError):
            OneByteQuantizer(low=1.0, high=0.0).fit([0.5])


class TestEncodeDecode:
    def test_roundtrip_error_bounded_by_interval(self):
        rng = np.random.default_rng(0)
        values = rng.random(1000)
        grid = OneByteQuantizer(low=0.0, high=1.0).fit(values)
        approx = grid.roundtrip(values)
        interval = 1.0 / 256
        assert np.max(np.abs(approx - values)) <= interval

    def test_decode_is_interval_average(self):
        # Paper scheme: each interval decodes to the mean of its members.
        values = [0.1, 0.101, 0.9]
        grid = OneByteQuantizer(levels=2, low=0.0, high=1.0).fit(values)
        approx = grid.roundtrip(values)
        assert approx[0] == pytest.approx((0.1 + 0.101) / 2)
        assert approx[2] == pytest.approx(0.9)

    def test_empty_interval_decodes_to_midpoint(self):
        grid = OneByteQuantizer(levels=4, low=0.0, high=1.0).fit([0.9])
        # Interval 0 saw no data; decoding code 0 gives its midpoint.
        assert grid.decode([0])[0] == pytest.approx(0.125)

    def test_out_of_range_values_clamp(self):
        grid = OneByteQuantizer(levels=4, low=0.0, high=1.0).fit([0.5])
        assert grid.encode([-5.0])[0] == 0
        assert grid.encode([5.0])[0] == 3

    def test_decode_bad_code_raises(self):
        grid = OneByteQuantizer(levels=4, low=0.0, high=1.0).fit([0.5])
        with pytest.raises(ValueError):
            grid.decode([4])
        with pytest.raises(ValueError):
            grid.decode([-1])

    def test_degenerate_range(self):
        grid = OneByteQuantizer().fit([3.0, 3.0, 3.0])
        assert grid.roundtrip([3.0])[0] == pytest.approx(3.0)

    def test_codes_within_byte(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0.0, 5.0, size=500)
        grid = OneByteQuantizer().fit(values)
        codes = grid.encode(values)
        assert codes.min() >= 0
        assert codes.max() <= 255

    def test_fit_roundtrip_convenience(self):
        values = [0.25, 0.75]
        out = OneByteQuantizer(low=0.0, high=1.0).fit_roundtrip(values)
        assert out.shape == (2,)

    def test_mass_preservation_on_uniform_data(self):
        # Interval-mean decoding keeps the overall mean nearly unchanged.
        rng = np.random.default_rng(2)
        values = rng.random(5000)
        approx = OneByteQuantizer(low=0.0, high=1.0).fit_roundtrip(values)
        assert approx.mean() == pytest.approx(values.mean(), abs=1e-6)

    def test_grid_is_frozen_dataclass(self):
        grid = OneByteQuantizer(low=0.0, high=1.0).fit([0.5])
        assert isinstance(grid, QuantizationGrid)
        with pytest.raises(AttributeError):
            grid.low = 2.0
