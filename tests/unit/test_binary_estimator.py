"""Unit tests for the binary-independence baseline estimator."""

import pytest

from repro.core import (
    BinaryIndependenceEstimator,
    SubrangeEstimator,
    true_usefulness,
)
from repro.corpus import Query
from repro.representatives import DatabaseRepresentative, TermStats


@pytest.fixture
def rep():
    return DatabaseRepresentative(
        "db",
        n_documents=100,
        term_stats={
            "heavy": TermStats(0.2, 0.60, 0.1, 0.9),
            "light": TermStats(0.2, 0.10, 0.02, 0.15),
        },
    )


class TestBinaryIndependence:
    def test_global_weight_is_mean_of_means(self, rep):
        estimator = BinaryIndependenceEstimator()
        assert estimator._database_weight(rep) == pytest.approx(0.35)

    def test_explicit_global_weight(self, rep):
        estimator = BinaryIndependenceEstimator(global_weight=0.5)
        assert estimator._database_weight(rep) == 0.5

    def test_negative_global_weight_rejected(self):
        with pytest.raises(ValueError):
            BinaryIndependenceEstimator(global_weight=-0.1)

    def test_cannot_distinguish_heavy_from_light(self, rep):
        """The defining information loss: both terms get identical
        estimates despite a 6x difference in actual weights."""
        estimator = BinaryIndependenceEstimator()
        heavy = estimator.estimate(Query.from_terms(["heavy"]), rep, 0.3)
        light = estimator.estimate(Query.from_terms(["light"]), rep, 0.3)
        assert heavy.nodoc == pytest.approx(light.nodoc)
        assert heavy.avgsim == pytest.approx(light.avgsim)

    def test_subrange_does_distinguish(self, rep):
        estimator = SubrangeEstimator()
        heavy = estimator.estimate(Query.from_terms(["heavy"]), rep, 0.3)
        light = estimator.estimate(Query.from_terms(["light"]), rep, 0.3)
        assert heavy.nodoc > light.nodoc

    def test_mass_conserved(self, rep):
        expansion = BinaryIndependenceEstimator().expand(
            Query.from_terms(["heavy", "light"]), rep
        )
        assert expansion.total_mass() == pytest.approx(1.0)

    def test_empty_representative(self):
        empty = DatabaseRepresentative("e", 10, {})
        estimate = BinaryIndependenceEstimator().estimate(
            Query.from_terms(["x"]), empty, 0.1
        )
        assert estimate.nodoc == 0.0

    def test_registry(self):
        from repro.core import get_estimator

        assert isinstance(
            get_estimator("binary-independence"), BinaryIndependenceEstimator
        )

    def test_much_worse_than_subrange_on_real_corpus(
        self, small_engine, small_representative, small_queries
    ):
        """The paper's dismissal, measured: binary loses badly."""
        binary = BinaryIndependenceEstimator()
        subrange = SubrangeEstimator()
        err_binary = 0.0
        err_subrange = 0.0
        for query in small_queries[:80]:
            truth = true_usefulness(small_engine, query, 0.2)
            err_binary += abs(
                binary.estimate(query, small_representative, 0.2).nodoc
                - truth.nodoc
            )
            err_subrange += abs(
                subrange.estimate(query, small_representative, 0.2).nodoc
                - truth.nodoc
            )
        assert err_binary > 1.5 * err_subrange
