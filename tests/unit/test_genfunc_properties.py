"""Property-based suite for the generating-function engine.

Hypothesis generates random sets of per-term probability polynomials
(each a valid ``p_1 X^{e_1} + ... + p_k X^{e_k}`` with coefficients
summing to 1) and checks the invariants every estimator's correctness
rests on:

* mass conservation — ``total_mass + pruned_mass ~= 1`` through any
  combination of rounding, pruning, and the adaptive budget;
* factor-order invariance — the expansion is the same (up to exponent
  rounding) no matter the multiplication order;
* tail monotonicity — ``tail_mass`` never increases with the threshold;
* budget accounting — ``max_terms`` caps the term count without ever
  losing probability mass unaccounted.

The suite is marked ``slow``: CI runs it with the reduced deterministic
"ci" profile on pull requests and the full "ci-main" budget on main
(see tests/conftest.py).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GenFunc

pytestmark = pytest.mark.slow

# -- strategies ----------------------------------------------------------------


@st.composite
def probability_polynomial(draw):
    """One per-term factor: 1-4 points, coefficients summing to 1."""
    size = draw(st.integers(min_value=1, max_value=4))
    exponents = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=size,
            max_size=size,
        )
    )
    raw = draw(
        st.lists(
            st.floats(min_value=1e-3, max_value=1.0),
            min_size=size,
            max_size=size,
        )
    )
    total = sum(raw)
    coeffs = [value / total for value in raw]
    return (np.asarray(exponents), np.asarray(coeffs))


polynomial_lists = st.lists(probability_polynomial(), min_size=1, max_size=6)


# -- mass conservation ---------------------------------------------------------


class TestMassConservation:
    @given(polynomials=polynomial_lists)
    def test_exact_expansion_conserves_mass(self, polynomials):
        expansion = GenFunc.product(polynomials)
        assert expansion.total_mass() + expansion.pruned_mass == pytest.approx(
            1.0, abs=1e-9
        )

    @given(
        polynomials=polynomial_lists,
        prune_floor=st.floats(min_value=0.0, max_value=0.01),
    )
    def test_pruned_expansion_conserves_mass(self, polynomials, prune_floor):
        expansion = GenFunc.product(polynomials, prune_floor=prune_floor)
        assert expansion.total_mass() + expansion.pruned_mass == pytest.approx(
            1.0, abs=1e-9
        )

    @given(
        polynomials=polynomial_lists,
        max_terms=st.integers(min_value=1, max_value=32),
    )
    def test_budgeted_expansion_conserves_mass(self, polynomials, max_terms):
        expansion = GenFunc.product(polynomials, max_terms=max_terms)
        assert expansion.total_mass() + expansion.pruned_mass == pytest.approx(
            1.0, abs=1e-9
        )


# -- factor-order invariance ---------------------------------------------------


class TestOrderInvariance:
    @given(
        polynomials=polynomial_lists,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_product_commutes(self, polynomials, seed):
        """Shuffling the factor order changes nothing but float noise.

        Exponent rounding happens after every multiplication, so two
        orders can differ by one rounding ulp per step — the comparison
        allows that and nothing more.
        """
        forward = GenFunc.product(polynomials)
        shuffled = list(polynomials)
        np.random.RandomState(seed).shuffle(shuffled)
        backward = GenFunc.product(shuffled)
        assert forward.n_terms == backward.n_terms
        np.testing.assert_allclose(
            forward.exponents, backward.exponents, atol=1e-8
        )
        np.testing.assert_allclose(forward.coeffs, backward.coeffs, atol=1e-9)


# -- tail monotonicity ---------------------------------------------------------


class TestTailMonotonicity:
    @given(
        polynomials=polynomial_lists,
        thresholds=st.lists(
            st.floats(min_value=-0.5, max_value=2.0),
            min_size=2,
            max_size=8,
        ),
    )
    def test_tail_mass_non_increasing(self, polynomials, thresholds):
        expansion = GenFunc.product(polynomials)
        ordered = sorted(thresholds)
        masses = [expansion.tail_mass(t) for t in ordered]
        for lower, higher in zip(masses, masses[1:]):
            assert higher <= lower + 1e-12

    @given(polynomials=polynomial_lists)
    def test_tail_profile_matches_scalar_readout(self, polynomials):
        """The vectorized grid readout is bit-identical to per-threshold
        calls — the property the batch pipeline's exactness rests on."""
        expansion = GenFunc.product(polynomials)
        grid = [-0.1, 0.0, 0.3, 0.7, 1.5]
        mass, moment = expansion.tail_profile(grid)
        for i, threshold in enumerate(grid):
            assert mass[i] == expansion.tail_mass(threshold)
            assert moment[i] == expansion.tail_first_moment(threshold)


# -- adaptive budget -----------------------------------------------------------


class TestAdaptiveBudget:
    @given(
        polynomials=polynomial_lists,
        max_terms=st.integers(min_value=1, max_value=16),
    )
    def test_budget_caps_terms(self, polynomials, max_terms):
        expansion = GenFunc.product(polynomials, max_terms=max_terms)
        assert expansion.n_terms <= max_terms

    @given(
        polynomials=polynomial_lists,
        max_terms=st.integers(min_value=1, max_value=16),
    )
    def test_budget_only_moves_mass_to_pruned(self, polynomials, max_terms):
        """Whatever the budget drops shows up in pruned_mass, exactly."""
        exact = GenFunc.product(polynomials)
        budgeted = GenFunc.product(polynomials, max_terms=max_terms)
        dropped = exact.total_mass() - budgeted.total_mass()
        assert budgeted.pruned_mass == pytest.approx(
            exact.pruned_mass + dropped, abs=1e-9
        )

    @given(polynomials=polynomial_lists)
    def test_generous_budget_changes_nothing(self, polynomials):
        exact = GenFunc.product(polynomials)
        budgeted = GenFunc.product(polynomials, max_terms=exact.n_terms)
        np.testing.assert_array_equal(exact.exponents, budgeted.exponents)
        np.testing.assert_array_equal(exact.coeffs, budgeted.coeffs)
        assert exact.pruned_mass == budgeted.pruned_mass

    @settings(max_examples=20)
    @given(
        n_terms=st.integers(min_value=2, max_value=64),
        max_terms=st.integers(min_value=1, max_value=8),
    )
    def test_equal_coefficients_terminate(self, n_terms, max_terms):
        """The geometric floor overshoots a flat coefficient profile in one
        step; the heaviest-terms fallback must still terminate and cap."""
        flat = GenFunc(
            np.arange(n_terms, dtype=float), np.full(n_terms, 1.0 / n_terms)
        )
        budgeted = flat.budgeted(max_terms)
        assert budgeted.n_terms <= max_terms
        assert budgeted.total_mass() + budgeted.pruned_mass == pytest.approx(
            1.0, abs=1e-12
        )
