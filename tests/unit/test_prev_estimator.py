"""Unit tests for the previous-method (VLDB'98 reconstruction) estimator."""

import pytest

from repro.core import BasicEstimator, PreviousMethodEstimator
from repro.corpus import Query
from repro.representatives import DatabaseRepresentative, TermStats


@pytest.fixture
def rep():
    return DatabaseRepresentative(
        "db",
        n_documents=50,
        term_stats={
            "a": TermStats(0.4, 0.30, 0.10, 0.60),
            "b": TermStats(0.2, 0.20, 0.05, 0.35),
        },
    )


class TestAdjustedPairs:
    def test_zero_threshold_keeps_probability(self, rep):
        estimator = PreviousMethodEstimator()
        pairs = estimator.adjusted_pairs(Query.from_terms(["a"]), rep, 0.0)
        ((u, p, w),) = pairs
        assert p == pytest.approx(0.4)
        assert w >= 0.30  # conditional mean never below the mean

    def test_high_threshold_shrinks_probability(self, rep):
        estimator = PreviousMethodEstimator()
        lo = estimator.adjusted_pairs(Query.from_terms(["a"]), rep, 0.1)[0]
        hi = estimator.adjusted_pairs(Query.from_terms(["a"]), rep, 0.5)[0]
        assert hi[1] < lo[1]

    def test_high_threshold_raises_weight(self, rep):
        estimator = PreviousMethodEstimator()
        lo = estimator.adjusted_pairs(Query.from_terms(["a"]), rep, 0.1)[0]
        hi = estimator.adjusted_pairs(Query.from_terms(["a"]), rep, 0.5)[0]
        assert hi[2] > lo[2]

    def test_unknown_terms_skipped(self, rep):
        estimator = PreviousMethodEstimator()
        assert estimator.adjusted_pairs(Query.from_terms(["zz"]), rep, 0.2) == []

    def test_threshold_apportioned_by_contribution(self, rep):
        # Term "a" carries the larger u*w and should absorb the larger share
        # of the cutoff; term "b"'s cutoff is proportionally smaller.
        estimator = PreviousMethodEstimator()
        pairs = estimator.adjusted_pairs(
            Query.from_terms(["a", "b"]), rep, threshold=0.4
        )
        (ua, pa, wa), (ub, pb, wb) = pairs
        assert pa < 0.4  # a was truncated
        assert pb < 0.2  # b was truncated too

    def test_zero_strength_degenerates_to_basic(self, rep):
        query = Query.from_terms(["a", "b"])
        relaxed = PreviousMethodEstimator(adjustment_strength=0.0)
        basic = BasicEstimator()
        for threshold in (0.1, 0.3):
            a = relaxed.estimate(query, rep, threshold)
            b = basic.estimate(query, rep, threshold)
            # With no truncation the conditional mean still nudges weights
            # up slightly (E[X|X>0] >= E[X]); NoDoc therefore dominates.
            assert a.nodoc >= b.nodoc - 1e-9

    def test_strength_validated(self):
        with pytest.raises(ValueError):
            PreviousMethodEstimator(adjustment_strength=1.5)


class TestEstimates:
    def test_nodoc_in_range(self, rep):
        query = Query.from_terms(["a", "b"])
        for threshold in (0.0, 0.2, 0.4, 0.8):
            estimate = PreviousMethodEstimator().estimate(query, rep, threshold)
            assert 0.0 <= estimate.nodoc <= rep.n_documents + 1e-9

    def test_zero_estimate_for_empty_query(self, rep):
        estimate = PreviousMethodEstimator().estimate(
            Query.from_terms([]), rep, 0.2
        )
        assert estimate.nodoc == 0.0

    def test_estimate_many_is_per_threshold(self, rep):
        query = Query.from_terms(["a"])
        estimator = PreviousMethodEstimator()
        many = estimator.estimate_many(query, rep, (0.1, 0.4))
        assert many[0].nodoc == pytest.approx(
            estimator.estimate(query, rep, 0.1).nodoc
        )
        assert many[1].nodoc == pytest.approx(
            estimator.estimate(query, rep, 0.4).nodoc
        )

    def test_registry_name(self):
        from repro.core import get_estimator

        assert isinstance(get_estimator("prev"), PreviousMethodEstimator)
