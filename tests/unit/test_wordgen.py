"""Unit tests for deterministic pseudo-word generation."""

import pytest

from repro.corpus.synth import word_for_term_id
from repro.text import TextPipeline
from repro.text.stopwords import is_stopword


class TestWordGen:
    def test_deterministic(self):
        assert word_for_term_id(123) == word_for_term_id(123)

    def test_unique_over_large_range(self):
        words = {word_for_term_id(i) for i in range(50000)}
        assert len(words) == 50000

    def test_adjacent_ids_differ(self):
        # Regression guard: the old padding scheme collided ids 0 and 70.
        assert word_for_term_id(0) != word_for_term_id(70)

    def test_minimum_three_syllables(self):
        for i in (0, 1, 69, 70, 4900, 123456):
            assert len(word_for_term_id(i)) >= 6

    def test_lowercase_alpha_only(self):
        for i in range(200):
            word = word_for_term_id(i)
            assert word.isalpha()
            assert word == word.lower()

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            word_for_term_id(-1)

    def test_not_stopwords(self):
        for i in range(1000):
            assert not is_stopword(word_for_term_id(i))

    def test_survives_default_pipeline(self):
        # Words must round-trip through the standard text pipeline unscathed
        # (no stopping, no min-length loss) so synthetic corpora and queries
        # agree on terms even if a caller runs them through text processing.
        pipeline = TextPipeline(stem=False)
        for i in range(0, 2000, 97):
            word = word_for_term_id(i)
            assert pipeline.terms(word) == [word]
