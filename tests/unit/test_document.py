"""Unit tests for repro.corpus.Document."""

from repro.corpus import Document


class TestDocument:
    def test_length_counts_occurrences(self):
        doc = Document("d1", terms=["a", "b", "a"])
        assert doc.length == 3

    def test_empty_document(self):
        assert Document("d1").length == 0

    def test_text_optional(self):
        assert Document("d1", terms=["a"]).text is None
        assert Document("d1", terms=["a"], text="A!").text == "A!"

    def test_frozen(self):
        import pytest

        doc = Document("d1")
        with pytest.raises(AttributeError):
            doc.doc_id = "other"

    def test_repr_contains_id_and_length(self):
        text = repr(Document("doc-7", terms=["x", "y"]))
        assert "doc-7" in text
        assert "2 terms" in text
