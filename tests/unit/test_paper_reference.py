"""Unit tests for the published-values reference data."""

import pytest

from repro.evaluation.paper_reference import (
    PAPER_METHODS,
    PAPER_TABLES_1_TO_6,
    PAPER_TABLES_7_TO_9,
    PAPER_TABLES_10_TO_12,
    paper_table,
)


class TestTables1To6:
    def test_databases_present(self):
        assert set(PAPER_TABLES_1_TO_6) == {"D1", "D2", "D3"}

    def test_six_thresholds_each(self):
        for rows in PAPER_TABLES_1_TO_6.values():
            assert [r.threshold for r in rows] == [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]

    def test_all_methods_present(self):
        for rows in PAPER_TABLES_1_TO_6.values():
            for row in rows:
                assert set(row.cells) == set(PAPER_METHODS)

    def test_published_headline_numbers(self):
        d1 = PAPER_TABLES_1_TO_6["D1"][0]
        assert d1.useful == 1475
        assert d1.cells["subrange"].match == 1423
        assert d1.cells["subrange"].mismatch == 13
        assert d1.cells["gloss-hc"].match == 296

    def test_u_decreases_with_threshold(self):
        for rows in PAPER_TABLES_1_TO_6.values():
            useful = [r.useful for r in rows]
            assert useful == sorted(useful, reverse=True)

    def test_paper_ordering_subrange_wins_matches(self):
        # The published data itself satisfies the ordering we assert on our
        # reproduction — a consistency check on the transcription.
        for rows in PAPER_TABLES_1_TO_6.values():
            for row in rows:
                assert row.cells["subrange"].match >= row.cells["prev"].match
                assert row.cells["prev"].match >= row.cells["gloss-hc"].match

    def test_match_bounded_by_u(self):
        for rows in PAPER_TABLES_1_TO_6.values():
            for row in rows:
                for cell in row.cells.values():
                    assert cell.match <= row.useful


class TestSingleMethodTables:
    def test_quantized_tables_cover_databases(self):
        assert set(PAPER_TABLES_7_TO_9) == {"D1", "D2", "D3"}

    def test_quantized_d1_close_to_exact_d1(self):
        # The paper's robustness claim, checked on its own numbers.
        exact = PAPER_TABLES_1_TO_6["D1"]
        quantized = PAPER_TABLES_7_TO_9["D1"]
        for e_row, q_row in zip(exact, quantized):
            e_cell = e_row.cells["subrange"]
            q_cell = next(iter(q_row.cells.values()))
            assert abs(e_cell.match - q_cell.match) <= 2

    def test_table10_marked_damaged(self):
        assert PAPER_TABLES_10_TO_12["D1"] == ()

    def test_triplet_d2_worse_than_exact_d2(self):
        exact = PAPER_TABLES_1_TO_6["D2"]
        triplet = PAPER_TABLES_10_TO_12["D2"]
        exact_match = sum(r.cells["subrange"].match for r in exact)
        triplet_match = sum(
            next(iter(r.cells.values())).match for r in triplet
        )
        assert triplet_match < exact_match


class TestLookup:
    @pytest.mark.parametrize(
        "table_id,db",
        [("table1", "D1"), ("table3", "D2"), ("table5", "D3"),
         ("table7", "D1"), ("table9", "D3"), ("table11", "D2")],
    )
    def test_mapping(self, table_id, db):
        rows = paper_table(table_id)
        assert rows is not None and len(rows) == 6

    def test_unknown_table(self):
        assert paper_table("table99") is None

    def test_table10_lookup_empty(self):
        assert paper_table("table10") == ()
