"""Unit tests for the generating-function engine."""

import numpy as np
import pytest

from repro.core import GenFunc


class TestConstruction:
    def test_one(self):
        g = GenFunc.one()
        assert g.n_terms == 1
        assert g.total_mass() == 1.0
        assert g.max_exponent() == 0.0

    def test_from_terms_merges_duplicates(self):
        g = GenFunc.from_terms([1.0, 0.0, 1.0], [0.2, 0.5, 0.3])
        assert g.n_terms == 2
        assert g.coeffs.tolist() == [0.5, 0.5]

    def test_ascending_invariant_enforced(self):
        with pytest.raises(ValueError, match="ascending"):
            GenFunc([2.0, 1.0], [0.5, 0.5])

    def test_negative_coeff_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GenFunc([0.0], [-0.1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            GenFunc([0.0, 1.0], [1.0])

    def test_empty(self):
        g = GenFunc([], [])
        assert g.total_mass() == 0.0
        assert g.max_exponent() == float("-inf")


class TestMultiply:
    def test_single_factor(self):
        g = GenFunc.one().multiplied([2.0, 0.0], [0.6, 0.4])
        assert g.exponents.tolist() == [0.0, 2.0]
        assert g.coeffs.tolist() == [0.4, 0.6]

    def test_example_31_expansion(self):
        """Example 3.2: (0.6X^2+0.4)(0.2X+0.8)(0.4X^2+0.6)."""
        g = GenFunc.product(
            [
                ([2.0, 0.0], [0.6, 0.4]),
                ([1.0, 0.0], [0.2, 0.8]),
                ([2.0, 0.0], [0.4, 0.6]),
            ]
        )
        expected = {0.0: 0.192, 1.0: 0.048, 2.0: 0.416, 3.0: 0.104,
                    4.0: 0.192, 5.0: 0.048}
        assert g.n_terms == 6
        for exponent, coeff in zip(g.exponents, g.coeffs):
            assert coeff == pytest.approx(expected[float(exponent)])

    def test_mass_conserved(self):
        g = GenFunc.product(
            [([0.3, 0.0], [0.5, 0.5]), ([0.7, 0.0], [0.25, 0.75])]
        )
        assert g.total_mass() == pytest.approx(1.0)

    def test_rounding_merges_nearby_exponents(self):
        g = GenFunc.one().multiplied(
            [0.1000000001, 0.1], [0.5, 0.5], decimals=6
        )
        assert g.n_terms == 1
        assert g.coeffs[0] == pytest.approx(1.0)

    def test_pruning_tracks_mass(self):
        g = GenFunc.one().multiplied(
            [1.0, 0.0], [1e-15, 1.0 - 1e-15], prune_floor=1e-12
        )
        assert g.n_terms == 1
        assert g.pruned_mass == pytest.approx(1e-15)
        assert g.total_mass() + g.pruned_mass == pytest.approx(1.0)

    def test_empty_factor_rejected(self):
        """Regression: an empty factor used to return the zero polynomial
        while carrying forward stale pruned_mass, silently breaking the
        ``mass + pruned_mass ~= 1`` invariant."""
        with pytest.raises(ValueError, match="non-empty"):
            GenFunc.one().multiplied([], [])

    def test_empty_factor_rejected_with_pruned_mass(self):
        g = GenFunc.one().multiplied(
            [1.0, 0.0], [1e-15, 1.0 - 1e-15], prune_floor=1e-12
        )
        assert g.pruned_mass > 0.0
        with pytest.raises(ValueError, match="non-empty"):
            g.multiplied([], [])

    def test_bad_factor_shapes(self):
        with pytest.raises(ValueError):
            GenFunc.one().multiplied([1.0, 2.0], [0.5])

    def test_immutability_of_receiver(self):
        g = GenFunc.one()
        g.multiplied([1.0, 0.0], [0.5, 0.5])
        assert g.n_terms == 1

    def test_growth_bounded_by_product(self):
        factors = [([i + 0.5, 0.0], [0.5, 0.5]) for i in range(6)]
        g = GenFunc.product(factors)
        assert g.n_terms <= 2**6


class TestReadout:
    @pytest.fixture
    def example(self):
        return GenFunc.product(
            [
                ([2.0, 0.0], [0.6, 0.4]),
                ([1.0, 0.0], [0.2, 0.8]),
                ([2.0, 0.0], [0.4, 0.6]),
            ]
        )

    def test_est_nodoc_matches_paper(self, example):
        assert example.est_nodoc(3.0, 5) == pytest.approx(1.2)

    def test_est_avgsim_matches_paper(self, example):
        assert example.est_avgsim(3.0) == pytest.approx(4.2)

    def test_threshold_strictly_greater(self, example):
        # est_NoDoc counts exponents strictly above T: at T=4.0 only X^5.
        assert example.est_nodoc(4.0, 5) == pytest.approx(5 * 0.048)

    def test_threshold_below_all(self, example):
        assert example.est_nodoc(-0.5, 5) == pytest.approx(5.0)

    def test_threshold_above_all(self, example):
        assert example.est_nodoc(5.0, 5) == 0.0
        assert example.est_avgsim(5.0) == 0.0

    def test_nodoc_monotone_in_threshold(self, example):
        values = [example.est_nodoc(t, 5) for t in np.linspace(0, 5, 21)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_avgsim_at_least_threshold(self, example):
        for t in (0.5, 1.5, 2.5, 3.5, 4.5):
            avg = example.est_avgsim(t)
            if avg > 0:
                assert avg > t

    def test_tail_mass(self, example):
        assert example.tail_mass(2.0) == pytest.approx(0.104 + 0.192 + 0.048)

    def test_tail_first_moment(self, example):
        expected = 0.104 * 3 + 0.192 * 4 + 0.048 * 5
        assert example.tail_first_moment(2.0) == pytest.approx(expected)

    def test_repr(self, example):
        assert "terms=6" in repr(example)
