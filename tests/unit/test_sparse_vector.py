"""Unit tests for repro.vsm.SparseVector."""

import math

import numpy as np
import pytest

from repro.vsm import SparseVector


class TestConstruction:
    def test_from_mapping_sorts_and_drops_zeros(self):
        vec = SparseVector.from_mapping({5: 1.0, 2: 3.0, 7: 0.0})
        assert vec.indices.tolist() == [2, 5]
        assert vec.values.tolist() == [3.0, 1.0]

    def test_from_counts(self):
        vec = SparseVector.from_counts([3, 1, 3, 3, 1])
        assert vec.to_mapping() == {1: 2.0, 3: 3.0}

    def test_empty(self):
        vec = SparseVector.empty()
        assert vec.nnz == 0
        assert vec.norm() == 0.0

    def test_unsorted_input_gets_sorted(self):
        vec = SparseVector([3, 1], [1.0, 2.0])
        assert vec.indices.tolist() == [1, 3]
        assert vec.values.tolist() == [2.0, 1.0]

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SparseVector([1, 1], [1.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            SparseVector([1, 2], [1.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            SparseVector(np.zeros((2, 2), dtype=int), np.zeros((2, 2)))


class TestAlgebra:
    def test_norm(self):
        vec = SparseVector([0, 1], [3.0, 4.0])
        assert vec.norm() == pytest.approx(5.0)

    def test_dot_with_overlap(self):
        a = SparseVector([0, 2, 5], [1.0, 2.0, 3.0])
        b = SparseVector([2, 5, 9], [4.0, 5.0, 6.0])
        assert a.dot(b) == pytest.approx(2 * 4 + 3 * 5)

    def test_dot_symmetry(self):
        a = SparseVector([0, 2], [1.5, 2.5])
        b = SparseVector([2, 3], [4.0, 5.0])
        assert a.dot(b) == pytest.approx(b.dot(a))

    def test_dot_disjoint_is_zero(self):
        a = SparseVector([0, 1], [1.0, 1.0])
        b = SparseVector([2, 3], [1.0, 1.0])
        assert a.dot(b) == 0.0

    def test_dot_with_empty(self):
        a = SparseVector([0], [1.0])
        assert a.dot(SparseVector.empty()) == 0.0
        assert SparseVector.empty().dot(a) == 0.0

    def test_dot_last_index_edge(self):
        # Regression guard for the searchsorted clipping at the array end.
        a = SparseVector([9], [2.0])
        b = SparseVector([0, 9], [1.0, 3.0])
        assert a.dot(b) == pytest.approx(6.0)

    def test_scaled(self):
        vec = SparseVector([1], [2.0]).scaled(2.5)
        assert vec.values.tolist() == [5.0]

    def test_normalized_unit_norm(self):
        vec = SparseVector([0, 1], [3.0, 4.0]).normalized()
        assert vec.norm() == pytest.approx(1.0)
        assert vec.values.tolist() == pytest.approx([0.6, 0.8])

    def test_normalized_zero_vector(self):
        vec = SparseVector.empty().normalized()
        assert vec.nnz == 0

    def test_cauchy_schwarz(self):
        a = SparseVector([0, 1, 4], [1.0, 2.0, 3.0])
        b = SparseVector([1, 4, 6], [0.5, 0.25, 9.0])
        assert abs(a.dot(b)) <= a.norm() * b.norm() + 1e-12


class TestExtremeWeights:
    """Weights whose squares leave the normal double range: the norm is
    computed under an exact power-of-two rescale instead of letting the
    sum of squares drift through subnormals (or overflow)."""

    TINY = (5e-324, 1e-300, 1e-170, 2.2250738585072014e-308)

    @pytest.mark.parametrize("w", TINY)
    def test_tiny_norm_is_not_erased(self, w):
        vec = SparseVector([0], [w])
        assert vec.norm() == w

    @pytest.mark.parametrize("w", TINY + (1e200,))
    def test_normalized_has_unit_norm(self, w):
        vec = SparseVector([0, 3], [w, w / 2 if w / 2 else w])
        assert math.isclose(vec.normalized().norm(), 1.0, rel_tol=1e-12)

    @pytest.mark.parametrize("w", TINY + (1e200,))
    def test_cosine_with_scaled_self_is_one(self, w):
        from repro.vsm import cosine_similarity

        a = SparseVector([0, 3], [w, w / 2 if w / 2 else w])
        b = a.scaled(2.0)
        assert math.isclose(cosine_similarity(a, b), 1.0, rel_tol=1e-12)

    def test_huge_norm_overflows_to_inf_not_error(self):
        vec = SparseVector([0, 1], [1.5e308, 1.5e308])
        assert vec.norm() == math.inf
        assert math.isclose(vec.normalized().norm(), 1.0, rel_tol=1e-12)

    def test_normal_weights_keep_the_legacy_arithmetic(self):
        # The rescale only arms outside [1e-140, 1e140]; inside it the
        # result must be the historical expression, bit for bit.
        vec = SparseVector([0, 1], [3.0, 4.0])
        assert vec.norm() == math.sqrt(float(np.dot(vec.values, vec.values)))
        assert vec.normalized().values.tolist() == [
            3.0 * (1.0 / 5.0),
            4.0 * (1.0 / 5.0),
        ]


class TestProtocol:
    def test_equality(self):
        a = SparseVector([0, 1], [1.0, 2.0])
        b = SparseVector([0, 1], [1.0, 2.0])
        c = SparseVector([0, 1], [1.0, 3.0])
        assert a == b
        assert a != c

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(SparseVector.empty())

    def test_items_order(self):
        vec = SparseVector.from_mapping({4: 1.0, 2: 2.0})
        assert list(vec.items()) == [(2, 2.0), (4, 1.0)]

    def test_repr(self):
        assert "nnz=2" in repr(SparseVector([0, 1], [1.0, 1.0]))
