"""Unit tests for corpus statistics analysis."""

import pytest

from repro.corpus import (
    Collection,
    Document,
    analyze_collection,
    heaps_curve,
)
from repro.corpus.analysis import _gini


class TestHelpers:
    def test_gini_uniform_is_zero(self):
        import numpy as np

        assert _gini(np.array([3.0, 3.0, 3.0])) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_near_one(self):
        import numpy as np

        values = np.array([0.0001] * 99 + [1000.0])
        assert _gini(values) > 0.9

    def test_gini_empty(self):
        import numpy as np

        assert _gini(np.array([])) == 0.0


class TestHeapsCurve:
    def test_monotone(self, small_group0):
        curve = heaps_curve(small_group0)
        tokens = [c[0] for c in curve]
        vocab = [c[1] for c in curve]
        assert tokens == sorted(tokens)
        assert vocab == sorted(vocab)

    def test_final_point_matches_collection(self, small_group0):
        curve = heaps_curve(small_group0)
        assert curve[-1][1] == small_group0.n_terms

    def test_small_collection(self):
        collection = Collection.from_documents(
            "c", [Document("d1", terms=["a", "b", "a"])]
        )
        curve = heaps_curve(collection)
        assert curve == [(3, 2)]


class TestAnalyzeCollection:
    def test_basic_counts(self, small_group0):
        stats = analyze_collection(small_group0)
        assert stats.n_documents == len(small_group0)
        assert stats.n_terms == small_group0.n_terms
        assert stats.n_tokens > stats.n_terms

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze_collection(Collection("empty"))

    def test_synthetic_corpus_is_textlike(self, small_group0):
        """The substitution claim: the synthetic generator must produce
        natural-text statistics, since those drive the estimators."""
        stats = analyze_collection(small_group0)
        # Zipf-like head with a good log-log fit.
        assert 0.5 <= stats.zipf_exponent <= 1.6
        assert stats.zipf_r_squared > 0.8
        # Sub-linear vocabulary growth (Heaps).
        assert 0.3 <= stats.heaps_beta <= 0.95
        # Highly skewed document frequencies.
        assert stats.df_gini > 0.4

    def test_uniform_corpus_is_not_textlike(self):
        """Contrast: a uniform synthetic corpus fails the same checks, so
        the test above is actually discriminative."""
        import numpy as np

        rng = np.random.default_rng(0)
        docs = [
            Document(
                f"d{i}",
                terms=[f"t{j}" for j in rng.integers(0, 50, size=60)],
            )
            for i in range(40)
        ]
        stats = analyze_collection(Collection.from_documents("uniform", docs))
        assert stats.zipf_exponent < 0.4  # nearly flat rank-frequency
        assert stats.df_gini < 0.4

    def test_doc_length_stats(self):
        collection = Collection.from_documents(
            "c",
            [
                Document("d1", terms=["a"] * 10),
                Document("d2", terms=["b"] * 30),
            ],
        )
        stats = analyze_collection(collection)
        assert stats.mean_doc_length == pytest.approx(20.0)
        assert stats.median_doc_length == pytest.approx(20.0)
