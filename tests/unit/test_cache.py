"""Unit tests for the estimate cache and its broker wiring."""

import pytest

from repro.core.types import Usefulness
from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.metasearch import EstimateCache, MetasearchBroker
from repro.representatives import build_representative


def make_engine(name, docs):
    return SearchEngine(
        Collection.from_documents(
            name, [Document(f"{name}-{i}", terms=t) for i, t in enumerate(docs)]
        )
    )


U1 = Usefulness(nodoc=1.0, avgsim=0.5)
U2 = Usefulness(nodoc=2.0, avgsim=0.25)


class TestEstimateCache:
    def test_get_put_roundtrip(self):
        cache = EstimateCache(maxsize=4)
        key = ("e", ("a",), (1.0,), 0.2)
        assert cache.get(key) is None
        cache.put(key, U1)
        assert cache.get(key) == U1
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = EstimateCache(maxsize=2)
        k1, k2, k3 = [("e", (t,), (1.0,), 0.2) for t in "abc"]
        cache.put(k1, U1)
        cache.put(k2, U1)
        cache.get(k1)  # refresh k1 -> k2 becomes least recently used
        cache.put(k3, U2)
        assert k1 in cache and k3 in cache
        assert k2 not in cache
        assert cache.evictions == 1

    def test_invalidate_engine_only_touches_that_engine(self):
        cache = EstimateCache(maxsize=8)
        cache.put(("a", ("t",), (1.0,), 0.2), U1)
        cache.put(("a", ("u",), (1.0,), 0.3), U1)
        cache.put(("b", ("t",), (1.0,), 0.2), U2)
        assert cache.invalidate_engine("a") == 2
        assert len(cache) == 1
        assert ("b", ("t",), (1.0,), 0.2) in cache

    def test_clear_keeps_counters(self):
        cache = EstimateCache(maxsize=4)
        key = ("e", ("a",), (1.0,), 0.2)
        cache.put(key, U1)
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_key_includes_weights_and_threshold(self):
        q1 = Query(terms=("a", "b"), weights=(1.0, 1.0))
        q2 = Query(terms=("a", "b"), weights=(1.0, 2.0))
        assert EstimateCache.key_for("e", q1, 0.2) != EstimateCache.key_for("e", q2, 0.2)
        assert EstimateCache.key_for("e", q1, 0.2) != EstimateCache.key_for("e", q1, 0.3)

    def test_key_normalizes_proportional_weights(self):
        """Regression: estimators only consume normalized weights, so raw
        weights (1, 1) and (2, 2) are the same query and must share one
        cache entry instead of fragmenting the cache."""
        q1 = Query(terms=("a", "b"), weights=(1.0, 1.0))
        q2 = Query(terms=("a", "b"), weights=(2.0, 2.0))
        q3 = Query(terms=("a", "b"), weights=(3.0, 3.0))
        key = EstimateCache.key_for("e", q1, 0.2)
        assert key == EstimateCache.key_for("e", q2, 0.2)
        assert key == EstimateCache.key_for("e", q3, 0.2)
        # Single-term queries always normalize to weight 1.0.
        s1 = Query(terms=("a",), weights=(1.0,))
        s2 = Query(terms=("a",), weights=(7.0,))
        assert EstimateCache.key_for("e", s1, 0.2) == EstimateCache.key_for("e", s2, 0.2)

    def test_maxsize_validation(self):
        with pytest.raises(ValueError, match="maxsize"):
            EstimateCache(maxsize=0)

    def test_hit_rate(self):
        cache = EstimateCache(maxsize=4)
        assert cache.hit_rate == 0.0
        key = ("e", ("a",), (1.0,), 0.2)
        cache.get(key)
        cache.put(key, U1)
        cache.get(key)
        assert cache.hit_rate == 0.5


class TestBrokerCaching:
    @pytest.fixture
    def broker(self):
        broker = MetasearchBroker(cache_size=64)
        broker.register(make_engine("space", [["rocket", "orbit"], ["rocket"]]))
        broker.register(make_engine("food", [["recipe", "sauce"], ["sauce"]]))
        return broker

    def test_repeated_estimates_hit_cache_and_agree(self, broker):
        query = Query.from_terms(["rocket"])
        first = broker.estimate_all(query, 0.2)
        assert broker.cache.hits == 0
        second = broker.estimate_all(query, 0.2)
        assert broker.cache.hits == 2  # both engines served from cache
        assert first == second

    def test_proportional_queries_share_cache_entries(self, broker):
        """Regression: scaling every weight by the same factor describes the
        same normalized query, so the second variant is a pure cache hit."""
        broker.estimate_all(Query(terms=("rocket", "sauce"), weights=(1.0, 1.0)), 0.2)
        misses = broker.cache.misses
        doubled = broker.estimate_all(
            Query(terms=("rocket", "sauce"), weights=(2.0, 2.0)), 0.2
        )
        assert broker.cache.misses == misses  # no new entries computed
        assert broker.cache.hits == 2  # both engines served from cache
        assert doubled == broker.estimate_all(
            Query(terms=("rocket", "sauce"), weights=(1.0, 1.0)), 0.2
        )

    def test_cache_disabled_with_zero_size(self):
        broker = MetasearchBroker(cache_size=0)
        assert broker.cache is None
        broker.register(make_engine("space", [["rocket"]]))
        estimates = broker.estimate_all(Query.from_terms(["rocket"]), 0.2)
        assert estimates[0].engine == "space"

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError, match="cache_size"):
            MetasearchBroker(cache_size=-1)

    def test_cached_equals_uncached(self, broker):
        uncached = MetasearchBroker(cache_size=0)
        uncached.register(make_engine("space", [["rocket", "orbit"], ["rocket"]]))
        uncached.register(make_engine("food", [["recipe", "sauce"], ["sauce"]]))
        for terms in (["rocket"], ["sauce"], ["rocket", "sauce"]):
            query = Query.from_terms(terms)
            for threshold in (0.1, 0.3):
                broker.estimate_all(query, threshold)  # warm
                assert broker.estimate_all(query, threshold) == uncached.estimate_all(
                    query, threshold
                )


class TestRegisterRefresh:
    def test_reregister_same_engine_rebuilds_representative(self):
        engine = make_engine("space", [["rocket"]])
        broker = MetasearchBroker()
        broker.register(engine)
        assert "orbit" not in broker.representative_of("space")
        # Simulate a corpus change by handing the refresh an updated
        # representative (real engines rebuild their index out of band).
        grown = build_representative(make_engine("space", [["rocket", "orbit"]]))
        broker.register(engine, representative=grown)
        assert "orbit" in broker.representative_of("space")
        assert len(broker) == 1

    def test_reregister_invalidates_cached_estimates(self):
        engine = make_engine("space", [["rocket"]])
        broker = MetasearchBroker(cache_size=64)
        broker.register(engine)
        query = Query.from_terms(["orbit"])
        before = broker.estimate_all(query, 0.1)
        assert before[0].usefulness.nodoc == 0.0  # "orbit" unknown
        assert broker.estimate_all(query, 0.1) == before  # cached
        grown = build_representative(
            make_engine("space", [["orbit", "orbit", "orbit"]])
        )
        broker.register(engine, representative=grown)
        after = broker.estimate_all(query, 0.1)
        assert after[0].usefulness.nodoc > 0.0  # stale estimate not served

    def test_different_engine_same_name_still_rejected(self):
        broker = MetasearchBroker()
        broker.register(make_engine("space", [["rocket"]]))
        with pytest.raises(ValueError, match="already registered"):
            broker.register(make_engine("space", [["other"]]))
