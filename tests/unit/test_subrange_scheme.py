"""Unit tests for SubrangeScheme."""

import pytest

from repro.representatives import SubrangeScheme


class TestEqualScheme:
    def test_four_equal_matches_paper_exposition(self):
        scheme = SubrangeScheme.equal(4)
        assert scheme.median_percentiles == (87.5, 62.5, 37.5, 12.5)
        assert scheme.masses == (0.25,) * 4
        assert not scheme.include_max

    def test_equal_offsets_match_example_33(self):
        # Example 3.3: c1 = 1.15, c2 = 0.318, c3 = -0.318, c4 = -1.15.
        offsets = SubrangeScheme.equal(4).normal_offsets()
        assert offsets[0] == pytest.approx(1.15, abs=5e-3)
        assert offsets[1] == pytest.approx(0.318, abs=5e-3)
        assert offsets[2] == pytest.approx(-0.318, abs=5e-3)
        assert offsets[3] == pytest.approx(-1.15, abs=5e-3)

    def test_equal_two(self):
        scheme = SubrangeScheme.equal(2)
        assert scheme.median_percentiles == (75.0, 25.0)

    def test_equal_one(self):
        scheme = SubrangeScheme.equal(1)
        assert scheme.median_percentiles == (50.0,)
        assert scheme.normal_offsets()[0] == pytest.approx(0.0, abs=1e-12)

    def test_equal_invalid(self):
        with pytest.raises(ValueError):
            SubrangeScheme.equal(0)

    def test_equal_with_max(self):
        assert SubrangeScheme.equal(4, include_max=True).n_subranges == 5


class TestPaperSix:
    def test_medians(self):
        scheme = SubrangeScheme.paper_six()
        assert scheme.median_percentiles == (98.0, 93.1, 70.0, 37.5, 12.5)

    def test_six_subranges_total(self):
        assert SubrangeScheme.paper_six().n_subranges == 6

    def test_includes_max(self):
        assert SubrangeScheme.paper_six().include_max

    def test_masses_sum_to_one(self):
        assert sum(SubrangeScheme.paper_six().masses) == pytest.approx(1.0)

    def test_narrow_subranges_at_top(self):
        # The paper uses narrower subranges for large weights.
        masses = SubrangeScheme.paper_six().masses
        assert masses[0] < masses[2]
        assert masses[1] < masses[2]

    def test_offsets_descending(self):
        offsets = SubrangeScheme.paper_six().normal_offsets()
        assert list(offsets) == sorted(offsets, reverse=True)


class TestValidation:
    def test_mass_median_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            SubrangeScheme((50.0,), (0.5, 0.5))

    def test_masses_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            SubrangeScheme((75.0, 25.0), (0.5, 0.4))

    def test_percentile_bounds(self):
        with pytest.raises(ValueError, match="percentile"):
            SubrangeScheme((100.0,), (1.0,))
        with pytest.raises(ValueError, match="percentile"):
            SubrangeScheme((0.0,), (1.0,))

    def test_descending_required(self):
        with pytest.raises(ValueError, match="descending"):
            SubrangeScheme((25.0, 75.0), (0.5, 0.5))

    def test_positive_masses(self):
        with pytest.raises(ValueError, match="positive"):
            SubrangeScheme((75.0, 25.0), (1.0, -0.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SubrangeScheme((), ())

    def test_frozen(self):
        scheme = SubrangeScheme.equal(2)
        with pytest.raises(AttributeError):
            scheme.masses = (1.0,)

    def test_repr(self):
        assert "include_max=True" in repr(SubrangeScheme.paper_six())
