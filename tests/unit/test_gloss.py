"""Unit tests for the gGlOSS baselines."""

import pytest

from repro.core import GlossDisjointEstimator, GlossHighCorrelationEstimator
from repro.corpus import Query
from repro.representatives import DatabaseRepresentative, TermStats


@pytest.fixture
def rep():
    # df: a=10, b=40 over n=100.
    return DatabaseRepresentative(
        "db",
        n_documents=100,
        term_stats={
            "a": TermStats(0.10, 0.50, 0.1, 0.8),
            "b": TermStats(0.40, 0.20, 0.1, 0.5),
        },
    )


class TestHighCorrelationBands:
    def test_band_structure(self, rep):
        query = Query.from_terms(["a", "b"])
        bands = GlossHighCorrelationEstimator().bands(query, rep)
        u = query.normalized_weights()[0]  # 1/sqrt(2) each
        # Band 1: the 10 docs with both terms, sim = u*(0.5 + 0.2).
        # Band 2: the next 30 docs with only "b", sim = u*0.2.
        assert len(bands) == 2
        assert bands[0][0] == pytest.approx(10)
        assert bands[0][1] == pytest.approx(u * 0.7)
        assert bands[1][0] == pytest.approx(30)
        assert bands[1][1] == pytest.approx(u * 0.2)

    def test_equal_df_collapses_band(self):
        rep = DatabaseRepresentative(
            "db",
            n_documents=10,
            term_stats={
                "x": TermStats(0.3, 0.4, 0.0, 0.4),
                "y": TermStats(0.3, 0.2, 0.0, 0.2),
            },
        )
        bands = GlossHighCorrelationEstimator().bands(
            Query.from_terms(["x", "y"]), rep
        )
        # Same df: both terms co-occur in all 3 docs; one band.
        assert len(bands) == 1
        assert bands[0][0] == pytest.approx(3)

    def test_single_term_band(self, rep):
        bands = GlossHighCorrelationEstimator().bands(
            Query.from_terms(["a"]), rep
        )
        assert len(bands) == 1
        assert bands[0] == (pytest.approx(10), pytest.approx(0.5))


class TestHighCorrelationEstimates:
    def test_nodoc_counts_qualifying_bands(self, rep):
        query = Query.from_terms(["a", "b"])
        u = query.normalized_weights()[0]
        estimator = GlossHighCorrelationEstimator()
        # Threshold between the two band similarities: only band 1 counts.
        threshold = (u * 0.2 + u * 0.7) / 2
        estimate = estimator.estimate(query, rep, threshold)
        assert estimate.nodoc == pytest.approx(10)
        assert estimate.avgsim == pytest.approx(u * 0.7)

    def test_low_threshold_counts_everything(self, rep):
        query = Query.from_terms(["a", "b"])
        estimate = GlossHighCorrelationEstimator().estimate(query, rep, 0.0)
        assert estimate.nodoc == pytest.approx(40)

    def test_high_threshold_zero(self, rep):
        estimate = GlossHighCorrelationEstimator().estimate(
            Query.from_terms(["a", "b"]), rep, 0.9
        )
        assert estimate.nodoc == 0.0
        assert estimate.avgsim == 0.0

    def test_unknown_terms(self, rep):
        estimate = GlossHighCorrelationEstimator().estimate(
            Query.from_terms(["zzz"]), rep, 0.1
        )
        assert estimate.nodoc == 0.0


class TestDisjoint:
    def test_each_term_is_own_group(self, rep):
        query = Query.from_terms(["a", "b"])
        groups = GlossDisjointEstimator().groups(query, rep)
        assert len(groups) == 2
        populations = sorted(g[0] for g in groups)
        assert populations == [pytest.approx(10), pytest.approx(40)]

    def test_disjoint_similarity_is_single_term_contribution(self, rep):
        query = Query.from_terms(["a", "b"])
        u = query.normalized_weights()[0]
        groups = dict(
            (round(g[0]), g[1]) for g in GlossDisjointEstimator().groups(query, rep)
        )
        assert groups[10] == pytest.approx(u * 0.5)
        assert groups[40] == pytest.approx(u * 0.2)

    def test_disjoint_nodoc(self, rep):
        query = Query.from_terms(["a", "b"])
        u = query.normalized_weights()[0]
        estimate = GlossDisjointEstimator().estimate(query, rep, u * 0.3)
        assert estimate.nodoc == pytest.approx(10)

    def test_disjoint_underestimates_high_band(self, rep):
        # Under disjointness no document can reach the combined similarity,
        # so at thresholds only reachable by co-occurrence it predicts zero
        # while high-correlation predicts the full top band.
        query = Query.from_terms(["a", "b"])
        u = query.normalized_weights()[0]
        threshold = u * 0.6
        disjoint = GlossDisjointEstimator().estimate(query, rep, threshold)
        hc = GlossHighCorrelationEstimator().estimate(query, rep, threshold)
        assert disjoint.nodoc == 0.0
        assert hc.nodoc > 0.0

    def test_registry_names(self):
        from repro.core import get_estimator

        assert isinstance(
            get_estimator("gloss-hc"), GlossHighCorrelationEstimator
        )
        assert isinstance(
            get_estimator("gloss-disjoint"), GlossDisjointEstimator
        )

    def test_unknown_estimator_name(self):
        from repro.core import get_estimator

        with pytest.raises(ValueError, match="unknown estimator"):
            get_estimator("nope")
