"""Unit tests for the Section 3.2 scalability accounting."""

import pytest

from repro.corpus import Collection, Document
from repro.representatives import (
    PAPER_COLLECTION_STATS,
    representative_size_bytes,
    sizing_for_collection,
)


class TestRepresentativeSizeBytes:
    def test_quadruplet_is_20_bytes_per_term(self):
        assert representative_size_bytes(1000) == 20000

    def test_quantized_is_8_bytes_per_term(self):
        assert representative_size_bytes(1000, bytes_per_number=1) == 8000

    def test_triplet_is_16_bytes_per_term(self):
        assert representative_size_bytes(1000, n_fields=3) == 16000

    def test_zero_terms(self):
        assert representative_size_bytes(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            representative_size_bytes(-1)


class TestPaperTable:
    """The three published rows must reproduce exactly."""

    @pytest.mark.parametrize(
        "name,pages,terms,rep_pages,percent",
        [
            ("WSJ", 40605, 156298, 1563, 3.85),
            ("FR", 33315, 126258, 1263, 3.79),
            ("DOE", 25152, 186225, 1862, 7.40),
        ],
    )
    def test_published_rows(self, name, pages, terms, rep_pages, percent):
        row = next(r for r in PAPER_COLLECTION_STATS if r.name == name)
        assert row.collection_pages == pages
        assert row.n_distinct_terms == terms
        assert round(row.representative_pages) == rep_pages
        assert row.percent == pytest.approx(percent, abs=0.01)

    def test_quantized_range_claim(self):
        # Section 3.2: one-byte coding brings sizes to ~1.5%-3%.
        for row in PAPER_COLLECTION_STATS:
            assert 1.4 <= row.quantized_percent <= 3.1


class TestSizingForCollection:
    def test_counts_terms_and_pages(self):
        collection = Collection.from_documents(
            "c", [Document("d1", terms=["aa", "bb", "aa"], text="x" * 4000)]
        )
        row = sizing_for_collection(collection)
        assert row.n_distinct_terms == 2
        assert row.collection_pages == pytest.approx(2.0)
        assert row.representative_pages == pytest.approx(40 / 2000)

    def test_empty_collection_percent_zero(self):
        row = sizing_for_collection(Collection("empty"))
        assert row.percent == 0.0
        assert row.quantized_percent == 0.0

    def test_quantized_smaller_than_full(self, small_group0):
        row = sizing_for_collection(small_group0)
        assert row.quantized_pages < row.representative_pages
        assert row.quantized_percent < row.percent
