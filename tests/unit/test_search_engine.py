"""Unit tests for the local search engine."""

import math

import pytest

from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.vsm import SparseVector, cosine_similarity


@pytest.fixture
def engine():
    return SearchEngine(
        Collection.from_documents(
            "news",
            [
                Document("d1", terms=["rocket", "rocket", "launch"]),
                Document("d2", terms=["rocket", "kitchen"]),
                Document("d3", terms=["kitchen", "recipe", "recipe"]),
                Document("d4", terms=["orbit"]),
            ],
        )
    )


class TestSimilarities:
    def test_matches_brute_force_cosine(self, engine):
        query = Query.from_terms(["rocket", "recipe"])
        doc_indices, sims = engine.similarities(query)
        collection = engine.collection
        qvec = SparseVector.from_mapping(
            {
                collection.vocabulary.id_of("rocket"): 1.0,
                collection.vocabulary.id_of("recipe"): 1.0,
            }
        )
        for idx, sim in zip(doc_indices, sims):
            expected = cosine_similarity(qvec, collection.tf_vector(int(idx)))
            assert sim == pytest.approx(expected)

    def test_non_matching_docs_omitted(self, engine):
        query = Query.from_terms(["orbit"])
        doc_indices, sims = engine.similarities(query)
        assert doc_indices.tolist() == [3]
        assert sims[0] == pytest.approx(1.0)

    def test_oov_term_contributes_to_norm_only(self, engine):
        # "rocket zzz": the unknown term halves the effective query weight.
        with_oov = engine.similarities(Query.from_terms(["rocket", "zzzz"]))
        without = engine.similarities(Query.from_terms(["rocket"]))
        assert with_oov[1][0] == pytest.approx(without[1][0] / math.sqrt(2))

    def test_empty_query(self, engine):
        doc_indices, sims = engine.similarities(Query.from_terms([]))
        assert doc_indices.size == 0
        assert sims.size == 0

    def test_all_oov_query(self, engine):
        doc_indices, __ = engine.similarities(Query.from_terms(["zz", "yy"]))
        assert doc_indices.size == 0


class TestSearch:
    def test_threshold_strictly_greater(self, engine):
        query = Query.from_terms(["orbit"])
        assert engine.search(query, threshold=1.0) == []
        assert len(engine.search(query, threshold=0.99)) == 1

    def test_hits_sorted_descending(self, engine):
        hits = engine.search(Query.from_terms(["rocket"]), threshold=0.0)
        sims = [h.similarity for h in hits]
        assert sims == sorted(sims, reverse=True)

    def test_hits_carry_engine_name(self, engine):
        hits = engine.search(Query.from_terms(["rocket"]), threshold=0.0)
        assert all(h.engine == "news" for h in hits)

    def test_top_k(self, engine):
        hits = engine.top_k(Query.from_terms(["rocket", "kitchen"]), k=2)
        assert len(hits) == 2

    def test_top_k_fewer_matches(self, engine):
        assert len(engine.top_k(Query.from_terms(["orbit"]), k=10)) == 1

    def test_top_k_negative_raises(self, engine):
        with pytest.raises(ValueError):
            engine.top_k(Query.from_terms(["rocket"]), k=-1)

    def test_max_similarity(self, engine):
        assert engine.max_similarity(Query.from_terms(["orbit"])) == pytest.approx(1.0)
        assert engine.max_similarity(Query.from_terms(["zzzz"])) == 0.0

    def test_name_and_len(self, engine):
        assert engine.name == "news"
        assert engine.n_documents == 4

    def test_single_term_similarity_is_normalized_weight(self, engine):
        # Section 3.1: single-term query similarity = normalized doc weight.
        query = Query.from_terms(["rocket"])
        __, sims = engine.similarities(query)
        # d1: tf rocket=2, launch=1 -> norm sqrt(5) -> 2/sqrt(5).
        assert max(sims) == pytest.approx(2 / math.sqrt(5))
