"""Unit tests for selection-quality evaluation."""

import pytest

from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.evaluation import (
    SelectionQuality,
    evaluate_selection,
    selection_quality_from_sets,
)
from repro.metasearch import MetasearchBroker


@pytest.fixture
def broker():
    broker = MetasearchBroker()
    broker.register(
        SearchEngine(
            Collection.from_documents(
                "space", [Document("s1", terms=["rocket", "orbit"])]
            )
        )
    )
    broker.register(
        SearchEngine(
            Collection.from_documents(
                "food", [Document("f1", terms=["sauce", "recipe"])]
            )
        )
    )
    return broker


class TestEvaluateSelection:
    def test_perfect_selection(self, broker):
        queries = [Query.from_terms(["rocket"]), Query.from_terms(["sauce"])]
        quality = evaluate_selection(broker, queries, threshold=0.3)
        assert quality.exact == 2
        assert quality.exact_rate == 1.0
        assert quality.recall == 1.0
        assert quality.precision == 1.0

    def test_counts_totals(self, broker):
        queries = [Query.from_terms(["rocket"])]
        quality = evaluate_selection(broker, queries, threshold=0.3)
        assert quality.true_engine_total == 1
        assert quality.selected_engine_total == 1

    def test_empty_query_log(self, broker):
        # Vacuous-truth convention: an empty log scores perfect, not zero.
        quality = evaluate_selection(broker, [], threshold=0.3)
        assert quality.n_queries == 0
        assert quality.exact_rate == 1.0
        assert quality.recall == 1.0
        assert quality.precision == 1.0
        assert quality.f1 == 1.0


class TestSelectionQualityProperties:
    def test_recall_with_misses(self):
        quality = SelectionQuality(
            n_queries=10, exact=5, missed_engines=2, extra_engines=0,
            true_engine_total=10, selected_engine_total=8,
        )
        assert quality.recall == pytest.approx(0.8)

    def test_precision_with_extras(self):
        quality = SelectionQuality(
            n_queries=10, exact=5, missed_engines=0, extra_engines=2,
            true_engine_total=8, selected_engine_total=10,
        )
        assert quality.precision == pytest.approx(0.8)

    def test_zero_denominators(self):
        quality = SelectionQuality(
            n_queries=0, exact=0, missed_engines=0, extra_engines=0,
            true_engine_total=0, selected_engine_total=0,
        )
        assert quality.exact_rate == 1.0
        assert quality.recall == 1.0
        assert quality.precision == 1.0
        assert quality.f1 == 1.0

    def test_f1_harmonic_mean(self):
        quality = SelectionQuality(
            n_queries=10, exact=5, missed_engines=2, extra_engines=2,
            true_engine_total=10, selected_engine_total=10,
        )
        assert quality.f1 == pytest.approx(0.8)

    def test_f1_zero_when_nothing_right(self):
        # Non-empty oracle and selection, fully disjoint: both rates 0.
        quality = SelectionQuality(
            n_queries=1, exact=0, missed_engines=3, extra_engines=2,
            true_engine_total=3, selected_engine_total=2,
        )
        assert quality.recall == 0.0
        assert quality.precision == 0.0
        assert quality.f1 == 0.0


class TestSelectionQualityFromSets:
    def test_matches_manual_accumulation(self):
        pairs = [
            ({"a", "b"}, {"a", "b"}),
            ({"a"}, {"a", "c"}),
            ({"a", "d"}, {"a"}),
        ]
        quality = selection_quality_from_sets(pairs)
        assert quality.n_queries == 3
        assert quality.exact == 1
        assert quality.missed_engines == 1
        assert quality.extra_engines == 1
        assert quality.true_engine_total == 5
        assert quality.selected_engine_total == 5

    def test_empty_iterable_is_vacuously_perfect(self):
        quality = selection_quality_from_sets([])
        assert quality.exact_rate == 1.0
        assert quality.recall == 1.0
        assert quality.precision == 1.0
        assert quality.f1 == 1.0

    def test_consistent_with_evaluate_selection(self):
        # Both empty sets per query: exact, nothing missed or extra.
        quality = selection_quality_from_sets([(set(), set())] * 4)
        assert quality.exact == 4
        assert quality.recall == 1.0
        assert quality.precision == 1.0
