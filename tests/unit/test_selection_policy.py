"""Unit tests for engine-selection policies."""

import pytest

from repro.core import Usefulness
from repro.metasearch import EstimatedUsefulness, ThresholdPolicy, TopKPolicy


def estimates(*pairs):
    return [
        EstimatedUsefulness(engine=name, usefulness=Usefulness(nodoc, avgsim))
        for name, nodoc, avgsim in pairs
    ]


class TestThresholdPolicy:
    def test_selects_rounded_nodoc_at_least_one(self):
        policy = ThresholdPolicy()
        chosen = policy.select(
            estimates(("a", 2.0, 0.5), ("b", 0.4, 0.9), ("c", 0.6, 0.1))
        )
        assert set(chosen) == {"a", "c"}

    def test_best_first_ordering(self):
        policy = ThresholdPolicy()
        chosen = policy.select(
            estimates(("low", 1.0, 0.2), ("high", 9.0, 0.4))
        )
        assert chosen == ["high", "low"]

    def test_ties_broken_by_avgsim_then_name(self):
        policy = ThresholdPolicy()
        chosen = policy.select(
            estimates(("b", 2.0, 0.3), ("a", 2.0, 0.3), ("c", 2.0, 0.9))
        )
        assert chosen == ["c", "a", "b"]

    def test_min_nodoc_raises_bar(self):
        policy = ThresholdPolicy(min_nodoc=3)
        chosen = policy.select(estimates(("a", 2.0, 0.5), ("b", 3.2, 0.5)))
        assert chosen == ["b"]

    def test_empty_estimates(self):
        assert ThresholdPolicy().select([]) == []

    def test_invalid_min_nodoc(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(min_nodoc=0)


class TestTopKPolicy:
    def test_takes_k_best(self):
        policy = TopKPolicy(2)
        chosen = policy.select(
            estimates(("a", 1.0, 0.1), ("b", 5.0, 0.1), ("c", 3.0, 0.1))
        )
        assert chosen == ["b", "c"]

    def test_skips_zero_estimates(self):
        policy = TopKPolicy(3)
        chosen = policy.select(estimates(("a", 1.0, 0.1), ("b", 0.0, 0.0)))
        assert chosen == ["a"]

    def test_k_zero(self):
        assert TopKPolicy(0).select(estimates(("a", 1.0, 0.1))) == []

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            TopKPolicy(-1)

    def test_fewer_than_k_available(self):
        chosen = TopKPolicy(5).select(estimates(("a", 1.0, 0.1)))
        assert chosen == ["a"]
