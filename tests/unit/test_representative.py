"""Unit tests for repro.representatives.DatabaseRepresentative."""

import pytest

from repro.representatives import DatabaseRepresentative, TermStats


@pytest.fixture
def representative():
    return DatabaseRepresentative(
        "db",
        n_documents=100,
        term_stats={
            "alpha": TermStats(0.3, 0.2, 0.05, 0.5),
            "beta": TermStats(0.01, 0.6, 0.0, 0.6),
        },
    )


class TestLookups:
    def test_get_known(self, representative):
        assert representative.get("alpha").probability == 0.3

    def test_get_unknown_is_none(self, representative):
        assert representative.get("gamma") is None

    def test_contains(self, representative):
        assert "alpha" in representative
        assert "gamma" not in representative

    def test_len_and_n_terms(self, representative):
        assert len(representative) == 2
        assert representative.n_terms == 2

    def test_document_frequency(self, representative):
        assert representative.document_frequency("alpha") == pytest.approx(30.0)
        assert representative.document_frequency("gamma") == 0.0

    def test_has_max_weights(self, representative):
        assert representative.has_max_weights
        assert not representative.as_triplets().has_max_weights

    def test_negative_n_documents_rejected(self):
        with pytest.raises(ValueError):
            DatabaseRepresentative("x", -1, {})


class TestTripletView:
    def test_as_triplets_preserves_other_fields(self, representative):
        triplets = representative.as_triplets()
        stats = triplets.get("alpha")
        assert stats.max_weight is None
        assert stats.mean == 0.2
        assert triplets.n_documents == 100

    def test_original_unchanged(self, representative):
        representative.as_triplets()
        assert representative.get("alpha").max_weight == 0.5


class TestPersistence:
    def test_json_roundtrip(self, representative, tmp_path):
        path = tmp_path / "rep.json"
        representative.save(path)
        loaded = DatabaseRepresentative.load(path)
        assert loaded.name == "db"
        assert loaded.n_documents == 100
        assert loaded.get("alpha") == representative.get("alpha")
        assert loaded.get("beta") == representative.get("beta")

    def test_triplet_roundtrip(self, representative, tmp_path):
        path = tmp_path / "rep.json"
        representative.as_triplets().save(path)
        loaded = DatabaseRepresentative.load(path)
        assert loaded.get("alpha").max_weight is None

    def test_bad_payload_rejected(self):
        with pytest.raises(ValueError, match="not a representative"):
            DatabaseRepresentative.from_json_dict({"kind": "something"})

    def test_repr(self, representative):
        text = repr(representative)
        assert "db" in text
        assert "docs=100" in text
