"""Unit tests for repro.vsm.weighting."""

import numpy as np
import pytest

from repro.vsm import (
    AugmentedTfWeighting,
    BinaryWeighting,
    LogTfWeighting,
    RawTfWeighting,
    get_weighting,
)


class TestRawTf:
    def test_identity(self):
        out = RawTfWeighting().weights(np.array([1.0, 5.0, 2.0]))
        assert out.tolist() == [1.0, 5.0, 2.0]

    def test_empty(self):
        assert RawTfWeighting().weights(np.array([])).size == 0


class TestLogTf:
    def test_tf_one_maps_to_one(self):
        assert LogTfWeighting().weights(np.array([1.0]))[0] == pytest.approx(1.0)

    def test_dampens_large_tf(self):
        out = LogTfWeighting().weights(np.array([100.0]))
        assert out[0] == pytest.approx(1.0 + np.log(100.0))

    def test_zero_stays_zero(self):
        assert LogTfWeighting().weights(np.array([0.0]))[0] == 0.0


class TestAugmentedTf:
    def test_max_tf_maps_to_one(self):
        out = AugmentedTfWeighting().weights(np.array([2.0, 4.0]))
        assert out[1] == pytest.approx(1.0)

    def test_range_is_half_to_one(self):
        out = AugmentedTfWeighting().weights(np.array([1.0, 10.0]))
        assert 0.5 <= out[0] <= 1.0

    def test_zero_stays_zero(self):
        out = AugmentedTfWeighting().weights(np.array([0.0, 2.0]))
        assert out[0] == 0.0

    def test_all_zero(self):
        out = AugmentedTfWeighting().weights(np.array([0.0, 0.0]))
        assert out.tolist() == [0.0, 0.0]

    def test_empty(self):
        assert AugmentedTfWeighting().weights(np.array([])).size == 0


class TestBinary:
    def test_presence_indicator(self):
        out = BinaryWeighting().weights(np.array([0.0, 3.0, 1.0]))
        assert out.tolist() == [0.0, 1.0, 1.0]


class TestRegistry:
    @pytest.mark.parametrize("name", ["tf", "logtf", "augtf", "binary"])
    def test_lookup(self, name):
        assert get_weighting(name).name == name

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(ValueError, match="tf"):
            get_weighting("bm25")

    @pytest.mark.parametrize("name", ["tf", "logtf", "binary"])
    def test_monotone_in_tf(self, name):
        scheme = get_weighting(name)
        tf = np.array([1.0, 2.0, 3.0, 10.0])
        out = scheme.weights(tf)
        assert np.all(np.diff(out) >= 0)
