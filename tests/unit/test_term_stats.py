"""Unit tests for repro.representatives.TermStats."""

import pytest

from repro.representatives import TermStats


class TestValidation:
    def test_valid_quadruplet(self):
        stats = TermStats(probability=0.5, mean=0.2, std=0.1, max_weight=0.8)
        assert stats.max_weight == 0.8

    def test_triplet_allows_missing_max(self):
        assert TermStats(0.5, 0.2, 0.1).max_weight is None

    @pytest.mark.parametrize("p", [-0.1, 1.1])
    def test_probability_range(self, p):
        with pytest.raises(ValueError, match="probability"):
            TermStats(probability=p, mean=0.1, std=0.0)

    def test_negative_mean(self):
        with pytest.raises(ValueError, match="mean"):
            TermStats(0.5, -0.1, 0.0)

    def test_negative_std(self):
        with pytest.raises(ValueError, match="std"):
            TermStats(0.5, 0.1, -0.1)

    def test_negative_max(self):
        with pytest.raises(ValueError, match="max_weight"):
            TermStats(0.5, 0.1, 0.0, -0.5)

    def test_frozen(self):
        stats = TermStats(0.5, 0.1, 0.0)
        with pytest.raises(AttributeError):
            stats.mean = 0.9


class TestViews:
    def test_without_max_weight(self):
        quad = TermStats(0.5, 0.2, 0.1, 0.8)
        triple = quad.without_max_weight()
        assert triple.max_weight is None
        assert (triple.probability, triple.mean, triple.std) == (0.5, 0.2, 0.1)

    def test_without_max_weight_idempotent(self):
        triple = TermStats(0.5, 0.2, 0.1).without_max_weight()
        assert triple.max_weight is None
