"""Unit tests for the engine/broker protocol and staleness handling."""

import pytest

from repro.corpus import Document, Query
from repro.metasearch import EngineServer, SubscribingBroker


def docs(prefix, term_lists):
    return [
        Document(f"{prefix}-{i}", terms=t) for i, t in enumerate(term_lists)
    ]


@pytest.fixture
def server():
    return EngineServer("alpha", docs("a", [["rocket", "orbit"], ["rocket"]]))


class TestEngineServer:
    def test_version_tracks_documents(self, server):
        assert server.version == 2
        server.add_documents(docs("b", [["new"]]))
        assert server.version == 3

    def test_snapshot_carries_version(self, server):
        snapshot = server.snapshot_representative()
        assert snapshot.version == 2
        assert snapshot.name == "alpha"
        assert "rocket" in snapshot.representative

    def test_search_sees_new_documents(self, server):
        query = Query.from_terms(["fresh"])
        assert server.search(query, 0.1) == []
        server.add_documents(docs("b", [["fresh"]]))
        assert len(server.search(query, 0.1)) == 1

    def test_snapshot_is_point_in_time(self, server):
        snapshot = server.snapshot_representative()
        server.add_documents(docs("b", [["fresh"]]))
        assert "fresh" not in snapshot.representative
        assert "fresh" in server.snapshot_representative().representative

    def test_empty_server(self):
        server = EngineServer("empty")
        assert server.version == 0
        assert server.search(Query.from_terms(["x"]), 0.1) == []


class TestSubscribingBroker:
    def test_register_takes_snapshot(self, server):
        broker = SubscribingBroker()
        broker.register(server)
        assert broker.refresh_count == 1
        assert broker.staleness()["alpha"] == 0.0

    def test_duplicate_registration_rejected(self, server):
        # A *different* server under an existing name is refused (the same
        # object re-registering is a refresh — see TestReRegistration).
        broker = SubscribingBroker()
        broker.register(server)
        with pytest.raises(ValueError):
            broker.register(EngineServer("alpha", docs("z", [["zest"]])))

    def test_staleness_grows_with_updates(self, server):
        broker = SubscribingBroker(refresh_growth=10.0)  # never refresh
        broker.register(server)
        server.add_documents(docs("b", [["new"], ["new"]]))
        assert broker.staleness()["alpha"] == pytest.approx(0.5)

    def test_refresh_policy_triggers_on_growth(self, server):
        broker = SubscribingBroker(refresh_growth=0.4)
        broker.register(server)
        server.add_documents(docs("b", [["new"]]))  # +50% > 40%
        refreshed = broker.maybe_refresh()
        assert refreshed == ["alpha"]
        assert broker.staleness()["alpha"] == 0.0

    def test_refresh_policy_holds_below_threshold(self, server):
        broker = SubscribingBroker(refresh_growth=0.6)
        broker.register(server)
        server.add_documents(docs("b", [["new"]]))  # +50% < 60%
        assert broker.maybe_refresh() == []
        assert broker.staleness()["alpha"] > 0.0

    def test_negative_refresh_growth_rejected(self):
        with pytest.raises(ValueError):
            SubscribingBroker(refresh_growth=-0.1)

    def test_stale_selection_misses_new_content(self, server):
        broker = SubscribingBroker(refresh_growth=10.0)
        broker.register(server)
        server.add_documents(docs("b", [["fresh"]]))
        query = Query.from_terms(["fresh"])
        # The stale snapshot knows nothing about "fresh" ...
        assert broker.select(query, 0.1) == []
        assert broker.true_selection(query, 0.1) == ["alpha"]
        # ... until a refresh.
        broker.refresh_growth = 0.0
        broker.maybe_refresh()
        assert broker.select(query, 0.1) == ["alpha"]

    def test_search_uses_live_engines(self, server):
        # Selection is snapshot-based, but invoked engines answer live:
        # a selected engine returns documents the snapshot never saw.
        broker = SubscribingBroker(refresh_growth=10.0)
        broker.register(server)
        server.add_documents(docs("b", [["rocket", "rocket", "rocket"]]))
        hits = broker.search(Query.from_terms(["rocket"]), 0.1)
        assert any(h.doc_id == "b-0" for h in hits)

    def test_engine_names(self, server):
        broker = SubscribingBroker()
        broker.register(server)
        broker.register(EngineServer("beta", docs("b", [["sauce"]])))
        assert broker.engine_names == ["alpha", "beta"]


class TestReRegistration:
    def test_same_server_re_register_refreshes_snapshot(self, server):
        broker = SubscribingBroker(refresh_growth=10.0)
        broker.register(server)
        server.add_documents(docs("b", [["fresh"]]))
        # The growth policy would not refresh yet, but an explicit
        # re-registration of the same object does, immediately.
        broker.register(server)
        assert broker.refresh_count == 2
        assert broker.staleness()["alpha"] == 0.0
        assert broker.select(Query.from_terms(["fresh"]), 0.1) == ["alpha"]

    def test_different_server_same_name_still_rejected(self, server):
        broker = SubscribingBroker()
        broker.register(server)
        impostor = EngineServer("alpha", docs("x", [["sauce"]]))
        with pytest.raises(ValueError, match="already registered"):
            broker.register(impostor)
        # The original subscription is untouched.
        assert broker.staleness()["alpha"] == 0.0
