"""Unit tests for repro.core.types.Usefulness."""

import pytest

from repro.core import Usefulness


class TestUsefulness:
    def test_zero(self):
        z = Usefulness.zero()
        assert z.nodoc == 0.0
        assert z.avgsim == 0.0
        assert not z.identifies_useful

    def test_rounding_half_up(self):
        assert Usefulness(1.2, 0.5).nodoc_rounded == 1
        assert Usefulness(1.7, 0.5).nodoc_rounded == 2

    def test_identifies_useful_boundary(self):
        assert Usefulness(0.5, 0.1).identifies_useful      # rounds to 1
        assert not Usefulness(0.4, 0.1).identifies_useful  # rounds to 0

    def test_negative_nodoc_rejected(self):
        with pytest.raises(ValueError):
            Usefulness(-0.1, 0.0)

    def test_negative_avgsim_rejected(self):
        with pytest.raises(ValueError):
            Usefulness(0.0, -0.1)

    def test_frozen(self):
        u = Usefulness(1.0, 0.5)
        with pytest.raises(AttributeError):
            u.nodoc = 2.0

    def test_equality(self):
        assert Usefulness(1.0, 0.5) == Usefulness(1.0, 0.5)
