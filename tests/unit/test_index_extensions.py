"""Unit tests for the index's pivoted-normalization and idf extensions."""

import math

import numpy as np
import pytest

from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.index import InvertedIndex
from repro.vsm import PivotedNormalizer


@pytest.fixture
def collection():
    return Collection.from_documents(
        "c",
        [
            Document("short", terms=["a"]),
            Document("long", terms=["a", "b", "b", "c", "c", "c"]),
            Document("mid", terms=["b", "c"]),
        ],
    )


class TestPivotedIndex:
    def test_pivoted_weights_differ_from_cosine(self, collection):
        cosine = InvertedIndex(collection)
        pivoted = InvertedIndex(
            collection, normalizer=PivotedNormalizer(slope=0.25)
        )
        a = collection.vocabulary.id_of("a")
        assert not np.allclose(
            cosine.postings(a).weights, pivoted.postings(a).weights
        )

    def test_pivoted_deflates_short_documents(self, collection):
        cosine = InvertedIndex(collection)
        pivoted = InvertedIndex(
            collection, normalizer=PivotedNormalizer(slope=0.25)
        )
        a = collection.vocabulary.id_of("a")
        # "short" is doc 0 with norm 1 (below the pivot): its weight drops.
        cosine_w = dict(zip(cosine.postings(a).doc_indices.tolist(),
                            cosine.postings(a).weights.tolist()))
        pivot_w = dict(zip(pivoted.postings(a).doc_indices.tolist(),
                           pivoted.postings(a).weights.tolist()))
        assert pivot_w[0] < cosine_w[0]

    def test_engine_accepts_normalizer(self, collection):
        engine = SearchEngine(
            collection, normalizer=PivotedNormalizer(slope=0.25)
        )
        hits = engine.search(Query.from_terms(["a"]), threshold=0.0)
        assert hits  # retrieval works end to end

    def test_explicit_normalizer_overrides_flag(self, collection):
        index = InvertedIndex(
            collection, normalize=False, normalizer=PivotedNormalizer()
        )
        assert index.normalizer.name == "pivoted"
        assert index.normalize  # pivoted is a real normalization


class TestIdfIndex:
    def test_smooth_idf_scales_weights(self, collection):
        plain = InvertedIndex(collection, normalize=False)
        idf = InvertedIndex(collection, normalize=False, idf="smooth")
        a = collection.vocabulary.id_of("a")  # df 2 of 3
        factor = math.log1p(3 / 2)
        assert idf.postings(a).weights[0] == pytest.approx(
            plain.postings(a).weights[0] * factor
        )

    def test_ln_idf_zeroes_ubiquitous_terms(self):
        collection = Collection.from_documents(
            "c",
            [Document("d1", terms=["x", "y"]), Document("d2", terms=["x"])],
        )
        index = InvertedIndex(collection, normalize=False, idf="ln")
        x = collection.vocabulary.id_of("x")
        # df = n -> ln(1) = 0 -> weight 0 -> dropped from postings.
        assert index.postings(x).document_frequency == 0

    def test_rare_terms_upweighted_relative_to_common(self, collection):
        index = InvertedIndex(collection, idf="smooth")
        a = collection.vocabulary.id_of("a")  # df 2
        b = collection.vocabulary.id_of("b")  # df 2
        assert index.idf_factor(a) == pytest.approx(index.idf_factor(b))

    def test_idf_factor_accessor(self, collection):
        index = InvertedIndex(collection, idf="smooth")
        assert index.idf_factor(collection.vocabulary.id_of("a")) > 0
        assert index.idf_factor(99999) == 0.0
        plain = InvertedIndex(collection)
        assert plain.idf_factor(0) == 1.0

    def test_invalid_idf_rejected(self, collection):
        with pytest.raises(ValueError, match="idf"):
            InvertedIndex(collection, idf="bm25")

    def test_norms_include_idf(self, collection):
        plain = InvertedIndex(collection, normalize=False)
        idf = InvertedIndex(collection, normalize=False, idf="smooth")
        assert idf.document_norm(1) != pytest.approx(plain.document_norm(1))


class TestEstimationUnderAlternativeWeighting:
    def test_representative_consistent_with_truth_under_pivoted(self, collection):
        """The estimator stack must stay truth-consistent when the engine
        uses pivoted normalization: single-term max exponent == true max
        similarity (the guarantee argument 'applies to other similarity
        functions such as [16]')."""
        from repro.core import SubrangeEstimator
        from repro.representatives import build_representative

        engine = SearchEngine(
            collection, normalizer=PivotedNormalizer(slope=0.25)
        )
        rep = build_representative(engine)
        query = Query.from_terms(["a"])
        expansion = SubrangeEstimator().expand(query, rep)
        # Tolerance covers the 8-decimal exponent rounding in expansion.
        assert expansion.max_exponent() == pytest.approx(
            engine.max_similarity(query), abs=1e-7
        )
