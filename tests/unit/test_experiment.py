"""Unit tests for the experiment runner."""

import pytest

from repro.core import BasicEstimator, SubrangeEstimator, true_usefulness
from repro.corpus import Query
from repro.evaluation import MethodSpec, run_usefulness_experiment
from repro.evaluation.experiment import PAPER_THRESHOLDS


class TestRunUsefulnessExperiment:
    def test_result_structure(self, small_engine, small_representative,
                              small_queries):
        result = run_usefulness_experiment(
            small_engine,
            small_queries[:30],
            [MethodSpec("subrange", SubrangeEstimator(), small_representative)],
        )
        assert result.database == small_engine.name
        assert result.n_queries == 30
        assert result.thresholds == PAPER_THRESHOLDS
        assert result.methods == ["subrange"]
        assert len(result.metrics["subrange"]) == len(PAPER_THRESHOLDS)

    def test_u_column_shared_across_methods(self, small_engine,
                                            small_representative,
                                            small_queries):
        result = run_usefulness_experiment(
            small_engine,
            small_queries[:40],
            [
                MethodSpec("a", SubrangeEstimator(), small_representative),
                MethodSpec("b", BasicEstimator(), small_representative),
            ],
        )
        a = [m.useful_queries for m in result.metrics["a"]]
        b = [m.useful_queries for m in result.metrics["b"]]
        assert a == b == result.useful_counts()

    def test_u_matches_direct_truth(self, small_engine, small_representative,
                                    small_queries):
        queries = small_queries[:40]
        result = run_usefulness_experiment(
            small_engine,
            queries,
            [MethodSpec("m", SubrangeEstimator(), small_representative)],
            thresholds=(0.2,),
        )
        expected = sum(
            true_usefulness(small_engine, q, 0.2).nodoc >= 1 for q in queries
        )
        assert result.useful_counts() == [expected]

    def test_match_bounded_by_u(self, small_engine, small_representative,
                                small_queries):
        result = run_usefulness_experiment(
            small_engine,
            small_queries[:50],
            [MethodSpec("m", SubrangeEstimator(), small_representative)],
        )
        for row in result.metrics["m"]:
            assert 0 <= row.match <= row.useful_queries

    def test_duplicate_method_keys_rejected(self, small_engine,
                                            small_representative):
        with pytest.raises(ValueError, match="unique"):
            run_usefulness_experiment(
                small_engine,
                [],
                [
                    MethodSpec("m", SubrangeEstimator(), small_representative),
                    MethodSpec("m", BasicEstimator(), small_representative),
                ],
            )

    def test_no_methods_rejected(self, small_engine):
        with pytest.raises(ValueError, match="at least one"):
            run_usefulness_experiment(small_engine, [], [])

    def test_default_label_from_estimator(self, small_representative):
        spec = MethodSpec("m", SubrangeEstimator(), small_representative)
        assert spec.label == "subrange method"

    def test_explicit_label_kept(self, small_representative):
        spec = MethodSpec(
            "m", SubrangeEstimator(), small_representative, label="custom"
        )
        assert spec.label == "custom"

    def test_progress_callback_invoked(self, small_engine,
                                       small_representative):
        calls = []
        queries = [Query.from_terms([f"q{i}"]) for i in range(1000)]
        run_usefulness_experiment(
            small_engine,
            queries,
            [MethodSpec("m", SubrangeEstimator(), small_representative)],
            thresholds=(0.2,),
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(500, 1000), (1000, 1000)]
