"""Unit tests for exact representative merging."""

import pytest

from repro.corpus import Collection
from repro.engine import SearchEngine
from repro.representatives import (
    DatabaseRepresentative,
    TermStats,
    build_representative,
    merge_representatives,
)


class TestMergeTwoSmall:
    def test_disjoint_terms_union(self):
        a = DatabaseRepresentative(
            "a", 10, {"x": TermStats(0.5, 0.3, 0.1, 0.6)}
        )
        b = DatabaseRepresentative(
            "b", 30, {"y": TermStats(0.2, 0.4, 0.0, 0.4)}
        )
        merged = merge_representatives("ab", [a, b])
        assert merged.n_documents == 40
        assert merged.n_terms == 2
        # x: df 5 of 40; y: df 6 of 40.
        assert merged.get("x").probability == pytest.approx(5 / 40)
        assert merged.get("y").probability == pytest.approx(6 / 40)

    def test_shared_term_statistics(self):
        # x in a: df 4, all weights 0.2; in b: df 4, all weights 0.6.
        a = DatabaseRepresentative(
            "a", 8, {"x": TermStats(0.5, 0.2, 0.0, 0.2)}
        )
        b = DatabaseRepresentative(
            "b", 8, {"x": TermStats(0.5, 0.6, 0.0, 0.6)}
        )
        merged = merge_representatives("ab", [a, b])
        stats = merged.get("x")
        assert stats.probability == pytest.approx(0.5)
        assert stats.mean == pytest.approx(0.4)
        assert stats.std == pytest.approx(0.2)  # two point masses at +-0.2
        assert stats.max_weight == pytest.approx(0.6)

    def test_missing_max_weight_propagates(self):
        a = DatabaseRepresentative("a", 4, {"x": TermStats(0.5, 0.2, 0.0)})
        b = DatabaseRepresentative(
            "b", 4, {"x": TermStats(0.5, 0.6, 0.0, 0.6)}
        )
        merged = merge_representatives("ab", [a, b])
        assert merged.get("x").max_weight is None

    def test_single_part_identity(self):
        a = DatabaseRepresentative(
            "a", 10, {"x": TermStats(0.3, 0.25, 0.05, 0.5)}
        )
        merged = merge_representatives("copy", [a])
        stats = merged.get("x")
        assert stats.probability == pytest.approx(0.3)
        assert stats.mean == pytest.approx(0.25)
        assert stats.std == pytest.approx(0.05)

    def test_empty_input(self):
        merged = merge_representatives("none", [])
        assert merged.n_documents == 0
        assert merged.n_terms == 0


class TestMergeMatchesBatchBuild:
    def test_three_way_merge_equals_collection_merge(self, small_model):
        groups = [small_model.generate_group(g) for g in (5, 6, 7)]
        part_reps = [
            build_representative(SearchEngine(group)) for group in groups
        ]
        merged = merge_representatives("merged", part_reps)
        batch = build_representative(
            SearchEngine(Collection.merged("merged", groups))
        )
        assert merged.n_documents == batch.n_documents
        assert merged.n_terms == batch.n_terms
        for term, stats in batch.items():
            other = merged.get(term)
            assert other.probability == pytest.approx(stats.probability)
            assert other.mean == pytest.approx(stats.mean)
            assert other.std == pytest.approx(stats.std, abs=1e-9)
            assert other.max_weight == pytest.approx(stats.max_weight)

    def test_merge_order_invariant(self, small_model):
        groups = [small_model.generate_group(g) for g in (5, 6, 7)]
        reps = [build_representative(SearchEngine(g)) for g in groups]
        forward = merge_representatives("m", reps)
        backward = merge_representatives("m", list(reversed(reps)))
        for term, stats in forward.items():
            other = backward.get(term)
            assert other.mean == pytest.approx(stats.mean)
            assert other.std == pytest.approx(stats.std, abs=1e-9)
            assert other.probability == pytest.approx(stats.probability)
