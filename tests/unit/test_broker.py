"""Unit tests for the metasearch broker."""

import pytest

from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker, ThresholdPolicy, TopKPolicy
from repro.representatives import build_representative


def make_engine(name, docs):
    return SearchEngine(
        Collection.from_documents(
            name, [Document(f"{name}-{i}", terms=t) for i, t in enumerate(docs)]
        )
    )


@pytest.fixture
def broker():
    broker = MetasearchBroker()
    broker.register(make_engine("space", [["rocket", "orbit"], ["rocket"]]))
    broker.register(make_engine("food", [["recipe", "sauce"], ["sauce"]]))
    return broker


class TestRegistration:
    def test_registration_builds_representative(self, broker):
        rep = broker.representative_of("space")
        assert rep.n_documents == 2
        assert "rocket" in rep

    def test_duplicate_name_rejected(self, broker):
        with pytest.raises(ValueError, match="already registered"):
            broker.register(make_engine("space", [["x"]]))

    def test_explicit_representative_used(self):
        engine = make_engine("e", [["x"]])
        rep = build_representative(engine)
        broker = MetasearchBroker()
        broker.register(engine, representative=rep)
        assert broker.representative_of("e") is rep

    def test_engine_names_sorted(self, broker):
        assert broker.engine_names == ["food", "space"]

    def test_len(self, broker):
        assert len(broker) == 2


class TestEstimationAndSelection:
    def test_estimate_all_covers_every_engine(self, broker):
        estimates = broker.estimate_all(Query.from_terms(["rocket"]), 0.2)
        assert {e.engine for e in estimates} == {"space", "food"}

    def test_estimates_sorted_best_first(self, broker):
        estimates = broker.estimate_all(Query.from_terms(["rocket"]), 0.2)
        assert estimates[0].engine == "space"

    def test_select_routes_to_relevant_engine(self, broker):
        assert broker.select(Query.from_terms(["rocket"]), 0.2) == ["space"]
        assert broker.select(Query.from_terms(["sauce"]), 0.2) == ["food"]

    def test_select_nothing_for_unknown_terms(self, broker):
        assert broker.select(Query.from_terms(["zzz"]), 0.2) == []

    def test_true_selection_oracle(self, broker):
        assert broker.true_selection(Query.from_terms(["rocket"]), 0.2) == ["space"]
        assert broker.true_selection(Query.from_terms(["zzz"]), 0.2) == []


class TestSearch:
    def test_search_returns_hits_from_invoked_only(self, broker):
        response = broker.search(Query.from_terms(["rocket"]), 0.2)
        assert response.invoked == ["space"]
        assert all(h.engine == "space" for h in response.hits)

    def test_search_merges_globally(self):
        broker = MetasearchBroker(policy=ThresholdPolicy())
        broker.register(make_engine("a", [["shared", "x"]]))
        broker.register(make_engine("b", [["shared"]]))
        response = broker.search(Query.from_terms(["shared"]), 0.1)
        sims = [h.similarity for h in response.hits]
        assert sims == sorted(sims, reverse=True)
        assert {h.engine for h in response.hits} == {"a", "b"}

    def test_search_respects_limit(self, broker):
        response = broker.search(Query.from_terms(["rocket"]), 0.0, limit=1)
        assert len(response.hits) == 1

    def test_search_all_broadcasts(self, broker):
        response = broker.search_all(Query.from_terms(["rocket"]), 0.2)
        assert response.invoked == ["food", "space"]

    def test_search_includes_estimates_for_diagnostics(self, broker):
        response = broker.search(Query.from_terms(["rocket"]), 0.2)
        assert len(response.estimates) == 2

    def test_topk_policy_broker(self):
        broker = MetasearchBroker(policy=TopKPolicy(1))
        broker.register(make_engine("a", [["x", "y"], ["x"]]))
        broker.register(make_engine("b", [["x", "z", "w"]]))
        invoked = broker.search(Query.from_terms(["x"]), 0.1).invoked
        assert len(invoked) == 1
