"""Unit tests for repro.text.stopwords."""

from repro.text.stopwords import DEFAULT_STOPWORDS, is_stopword


class TestStopwords:
    def test_paper_examples_are_stopwords(self):
        # The paper names "the" and "of" as non-content words.
        assert is_stopword("the")
        assert is_stopword("of")

    def test_common_function_words(self):
        for word in ("a", "an", "and", "is", "was", "with", "which"):
            assert is_stopword(word), word

    def test_content_words_are_not_stopwords(self):
        for word in ("database", "search", "engine", "usefulness", "query"):
            assert not is_stopword(word), word

    def test_case_sensitive_lowercase_only(self):
        # The pipeline lowercases before stopping; the list is lowercase.
        assert not is_stopword("The")

    def test_contractions_present(self):
        assert is_stopword("don't")
        assert is_stopword("isn't")

    def test_is_frozenset(self):
        assert isinstance(DEFAULT_STOPWORDS, frozenset)

    def test_no_empty_entries(self):
        assert "" not in DEFAULT_STOPWORDS

    def test_reasonable_size(self):
        # A classic English function-word list has a few hundred entries.
        assert 200 <= len(DEFAULT_STOPWORDS) <= 500

    def test_all_lowercase(self):
        assert all(w == w.lower() for w in DEFAULT_STOPWORDS)
