"""Unit tests for the synthetic newsgroup corpus generator."""

import numpy as np
import pytest

from repro.corpus.synth import NewsgroupModel, build_paper_databases, paper_group_sizes
from repro.corpus.synth.newsgroups import _arithmetic_sizes


class TestPaperGroupSizes:
    def test_53_groups(self):
        assert len(paper_group_sizes()) == 53

    def test_d1_size(self):
        assert paper_group_sizes()[0] == 761

    def test_d2_size(self):
        sizes = paper_group_sizes()
        assert sizes[0] + sizes[1] == 1466

    def test_d3_size(self):
        assert sum(paper_group_sizes()[-26:]) == 1014

    def test_descending(self):
        sizes = paper_group_sizes()
        assert sizes == sorted(sizes, reverse=True)

    def test_all_positive(self):
        assert min(paper_group_sizes()) >= 1


class TestArithmeticSizes:
    def test_exact_total(self):
        sizes = _arithmetic_sizes(70, 10, 26, total=1014)
        assert sum(sizes) == 1014
        assert len(sizes) == 26

    def test_descending_and_positive(self):
        sizes = _arithmetic_sizes(100, 5, 10, total=500)
        assert sizes == sorted(sizes, reverse=True)
        assert min(sizes) >= 1

    def test_total_larger_than_profile(self):
        sizes = _arithmetic_sizes(10, 5, 4, total=100)
        assert sum(sizes) == 100


class TestNewsgroupModel:
    @pytest.fixture(scope="class")
    def model(self):
        return NewsgroupModel(
            vocab_size=2000,
            topic_size=80,
            topic_band=(30, 900),
            mean_length=60,
            seed=5,
            group_sizes=[12, 10, 8],
        )

    def test_generate_group_size(self, model):
        assert len(model.generate_group(0)) == 12

    def test_group_out_of_range(self, model):
        with pytest.raises(ValueError):
            model.generate_group(3)

    def test_deterministic_per_seed(self, model):
        a = model.generate_group(1)
        b = model.generate_group(1)
        assert [a.doc_id(i) for i in range(len(a))] == [
            b.doc_id(i) for i in range(len(b))
        ]
        assert a.tf_vector(0) == b.tf_vector(0)

    def test_groups_have_distinct_topics(self, model):
        t0 = set(model.topic_terms(0).tolist())
        t1 = set(model.topic_terms(1).tolist())
        # Random 80-of-870 subsets overlap very little.
        assert len(t0 & t1) < 40

    def test_topic_terms_within_band(self, model):
        terms = model.topic_terms(0)
        assert terms.min() >= 30
        assert terms.max() < 900

    def test_doc_ids_unique_across_groups(self, model):
        ids = []
        for g in range(3):
            collection = model.generate_group(g)
            ids.extend(collection.doc_id(i) for i in range(len(collection)))
        assert len(ids) == len(set(ids))

    def test_document_lengths_clipped(self, model):
        rng = np.random.default_rng(0)
        for __ in range(50):
            ids = model.sample_document_term_ids(rng, 0)
            assert 20 <= ids.size <= 8 * model.mean_length

    def test_invalid_topic_weight(self):
        with pytest.raises(ValueError):
            NewsgroupModel(topic_weight=1.5)

    def test_invalid_topic_band(self):
        with pytest.raises(ValueError):
            NewsgroupModel(vocab_size=100, topic_band=(50, 200))

    def test_generate_all(self):
        model = NewsgroupModel(
            vocab_size=500, topic_size=30, topic_band=(10, 400),
            mean_length=40, group_sizes=[3, 2],
        )
        groups = model.generate_all()
        assert [len(g) for g in groups] == [3, 2]


class TestBuildPaperDatabases:
    def test_sizes_match_paper(self):
        model = NewsgroupModel(
            vocab_size=3000, topic_size=60, topic_band=(30, 1500),
            mean_length=40, seed=9,
        )
        d1, d2, d3 = build_paper_databases(model)
        assert (len(d1), len(d2), len(d3)) == (761, 1466, 1014)
        assert (d1.name, d2.name, d3.name) == ("D1", "D2", "D3")

    def test_d2_contains_d1_documents(self):
        model = NewsgroupModel(
            vocab_size=3000, topic_size=60, topic_band=(30, 1500),
            mean_length=40, seed=9,
        )
        d1, d2, __ = build_paper_databases(model)
        d2_ids = {d2.doc_id(i) for i in range(len(d2))}
        assert all(d1.doc_id(i) in d2_ids for i in range(0, len(d1), 50))

    def test_requires_28_groups(self):
        model = NewsgroupModel(
            vocab_size=500, topic_size=20, topic_band=(10, 400),
            group_sizes=[5, 4, 3],
        )
        with pytest.raises(ValueError, match="28 groups"):
            build_paper_databases(model)
