"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.corpus import Collection, Document, save_collection


@pytest.fixture
def collection_file(tmp_path):
    collection = Collection.from_documents(
        "cli-db",
        [
            Document("d1", terms=["rocket", "orbit", "rocket"]),
            Document("d2", terms=["sauce"]),
        ],
    )
    path = tmp_path / "db.jsonl"
    save_collection(collection, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synth_defaults(self):
        args = build_parser().parse_args(["synth"])
        assert args.n_queries == 6234
        assert args.seed == 1999

    def test_evaluate_database_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--database", "D9"])


class TestRepresent:
    def test_creates_representative(self, collection_file, tmp_path, capsys):
        out = tmp_path / "rep.json"
        code = main(
            ["represent", "--collection", str(collection_file), "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "2 docs" in capsys.readouterr().out


class TestEstimate:
    def test_prints_estimate_and_truth(self, collection_file, capsys):
        code = main(
            [
                "estimate",
                "--collection", str(collection_file),
                "--query", "rocket",
                "--threshold", "0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated" in out
        assert "true" in out
        assert "cli-db" in out

    def test_with_saved_representative(self, collection_file, tmp_path, capsys):
        rep_path = tmp_path / "rep.json"
        main(["represent", "--collection", str(collection_file),
              "--out", str(rep_path)])
        code = main(
            [
                "estimate",
                "--collection", str(collection_file),
                "--representative", str(rep_path),
                "--query", "sauce",
                "--method", "basic",
            ]
        )
        assert code == 0
        assert "basic" in capsys.readouterr().out

    def test_unknown_method_raises(self, collection_file):
        with pytest.raises(ValueError, match="unknown estimator"):
            main(
                [
                    "estimate",
                    "--collection", str(collection_file),
                    "--query", "rocket",
                    "--method", "bogus",
                ]
            )


class TestScalability:
    def test_prints_paper_rows(self, capsys):
        assert main(["scalability"]) == 0
        out = capsys.readouterr().out
        assert "WSJ" in out
        assert "3.85" in out
