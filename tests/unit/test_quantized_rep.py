"""Unit tests for one-byte quantized representatives (Tables 7-9 input)."""

import numpy as np
import pytest

from repro.representatives import (
    DatabaseRepresentative,
    TermStats,
    build_representative,
    quantize_representative,
)


class TestQuantizeRepresentative:
    def test_preserves_structure(self, small_representative):
        quantized = quantize_representative(small_representative)
        assert quantized.n_terms == small_representative.n_terms
        assert quantized.n_documents == small_representative.n_documents
        assert quantized.name == small_representative.name

    def test_small_value_perturbation(self, small_representative):
        quantized = quantize_representative(small_representative)
        max_probability = max(
            s.probability for __, s in small_representative.items()
        )
        for term, stats in small_representative.items():
            q = quantized.get(term)
            # Error bounded by one quantization interval of the field range.
            assert abs(q.probability - stats.probability) <= 1.0 / 256
            assert abs(q.mean - stats.mean) <= 1.0  # range bound, loose
        assert max_probability <= 1.0

    def test_mean_field_error_bounded_by_range(self, small_representative):
        means = np.array([s.mean for __, s in small_representative.items()])
        spread = means.max() - means.min()
        quantized = quantize_representative(small_representative)
        for term, stats in small_representative.items():
            assert abs(quantized.get(term).mean - stats.mean) <= spread / 256 + 1e-12

    def test_probabilities_stay_in_unit_interval(self, small_representative):
        quantized = quantize_representative(small_representative)
        for __, stats in quantized.items():
            assert 0.0 <= stats.probability <= 1.0

    def test_keeps_max_weight_presence(self, small_representative):
        assert quantize_representative(small_representative).has_max_weights

    def test_triplet_input_stays_triplet(self, small_representative):
        quantized = quantize_representative(small_representative.as_triplets())
        assert not quantized.has_max_weights

    def test_fewer_levels_coarser(self, small_representative):
        q256 = quantize_representative(small_representative, levels=256)
        q4 = quantize_representative(small_representative, levels=4)
        err256 = sum(
            abs(q256.get(t).mean - s.mean)
            for t, s in small_representative.items()
        )
        err4 = sum(
            abs(q4.get(t).mean - s.mean)
            for t, s in small_representative.items()
        )
        assert err4 >= err256

    def test_empty_representative(self):
        empty = DatabaseRepresentative("empty", 0, {})
        assert quantize_representative(empty).n_terms == 0

    def test_single_term(self):
        rep = DatabaseRepresentative(
            "one", 10, {"t": TermStats(0.1, 0.5, 0.2, 0.9)}
        )
        quantized = quantize_representative(rep)
        stats = quantized.get("t")
        # Single value per field: interval average recovers it exactly.
        assert stats.mean == pytest.approx(0.5)
        assert stats.std == pytest.approx(0.2)
        assert stats.max_weight == pytest.approx(0.9)
        assert stats.probability == pytest.approx(0.1, abs=1.0 / 256)
