"""Unit tests for repro.stats.normal, cross-checked against scipy."""

import math

import pytest

from repro.stats import (
    normal_cdf,
    normal_pdf,
    normal_quantile,
    truncated_normal_mean_above,
    truncated_normal_tail_mass,
)

scipy_stats = pytest.importorskip("scipy.stats")


class TestPdfCdf:
    def test_pdf_at_zero(self):
        assert normal_pdf(0.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))

    def test_pdf_symmetry(self):
        assert normal_pdf(1.7) == pytest.approx(normal_pdf(-1.7))

    def test_cdf_at_zero(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)

    @pytest.mark.parametrize("x", [-3.0, -1.0, -0.1, 0.0, 0.5, 1.96, 4.0])
    def test_cdf_matches_scipy(self, x):
        assert normal_cdf(x) == pytest.approx(scipy_stats.norm.cdf(x), abs=1e-12)

    def test_cdf_monotone(self):
        xs = [-2, -1, 0, 1, 2]
        values = [normal_cdf(x) for x in xs]
        assert values == sorted(values)


class TestQuantile:
    @pytest.mark.parametrize("p", [0.001, 0.02425, 0.125, 0.375, 0.5, 0.625,
                                   0.875, 0.931, 0.98, 0.999, 0.9999])
    def test_matches_scipy(self, p):
        assert normal_quantile(p) == pytest.approx(
            scipy_stats.norm.ppf(p), abs=1e-9
        )

    def test_paper_example_constants(self):
        # Example 3.3: c1 = 1.15 and c2 = 0.318 for the 4-subrange medians.
        assert normal_quantile(0.875) == pytest.approx(1.15, abs=5e-3)
        assert normal_quantile(0.625) == pytest.approx(0.318, abs=5e-3)

    def test_symmetry(self):
        assert normal_quantile(0.3) == pytest.approx(-normal_quantile(0.7))

    def test_median(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_inverse_of_cdf(self):
        for p in (0.01, 0.2, 0.5, 0.77, 0.999):
            assert normal_cdf(normal_quantile(p)) == pytest.approx(p, abs=1e-12)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.5, 2.0])
    def test_out_of_domain_raises(self, p):
        with pytest.raises(ValueError):
            normal_quantile(p)


class TestTruncated:
    def test_tail_mass_at_mean_is_half(self):
        assert truncated_normal_tail_mass(5.0, 5.0, 2.0) == pytest.approx(0.5)

    def test_tail_mass_degenerate(self):
        assert truncated_normal_tail_mass(1.0, 2.0, 0.0) == 1.0
        assert truncated_normal_tail_mass(3.0, 2.0, 0.0) == 0.0

    def test_tail_mass_decreasing_in_cutoff(self):
        masses = [truncated_normal_tail_mass(c, 0.0, 1.0) for c in (-1, 0, 1, 2)]
        assert masses == sorted(masses, reverse=True)

    def test_mean_above_exceeds_cutoff_and_mean(self):
        m = truncated_normal_mean_above(1.0, 0.0, 1.0)
        assert m > 1.0
        assert m > 0.0

    def test_mean_above_low_cutoff_close_to_mean(self):
        assert truncated_normal_mean_above(-50.0, 3.0, 1.0) == pytest.approx(3.0)

    def test_mean_above_matches_mills_ratio(self):
        # E[X | X > a] for standard normal = phi(a) / (1 - Phi(a)).
        a = 0.7
        expected = scipy_stats.norm.pdf(a) / scipy_stats.norm.sf(a)
        assert truncated_normal_mean_above(a, 0.0, 1.0) == pytest.approx(expected)

    def test_mean_above_degenerate(self):
        assert truncated_normal_mean_above(0.0, 2.0, 0.0) == 2.0

    def test_mean_above_far_tail_returns_cutoff(self):
        assert truncated_normal_mean_above(60.0, 0.0, 1.0) >= 60.0
