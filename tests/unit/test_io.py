"""Unit tests for corpus persistence (repro.corpus.io)."""

import gzip
import json

import pytest

from repro.corpus import (
    Collection,
    Document,
    Query,
    load_collection,
    load_queries,
    save_collection,
    save_queries,
)


@pytest.fixture
def sample_collection():
    return Collection.from_documents(
        "sample",
        [
            Document("d1", terms=["apple", "apple", "banana"]),
            Document("d2", terms=["cherry"]),
            Document("d3", terms=[]),
        ],
    )


class TestCollectionRoundtrip:
    def test_plain_roundtrip(self, sample_collection, tmp_path):
        path = tmp_path / "c.jsonl"
        save_collection(sample_collection, path)
        loaded = load_collection(path)
        assert loaded.name == "sample"
        assert loaded.n_documents == 3
        assert loaded.document_frequency("apple") == 1
        assert sorted(loaded.terms_of(0)) == ["apple", "apple", "banana"]

    def test_gzip_roundtrip(self, sample_collection, tmp_path):
        path = tmp_path / "c.jsonl.gz"
        save_collection(sample_collection, path)
        assert load_collection(path).n_documents == 3
        # File really is gzip.
        with gzip.open(path, "rt") as fh:
            header = json.loads(fh.readline())
        assert header["kind"] == "collection"

    def test_doc_ids_preserved(self, sample_collection, tmp_path):
        path = tmp_path / "c.jsonl"
        save_collection(sample_collection, path)
        loaded = load_collection(path)
        assert [loaded.doc_id(i) for i in range(3)] == ["d1", "d2", "d3"]

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "other"}) + "\n")
        with pytest.raises(ValueError, match="not a collection"):
            load_collection(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kind": "collection", "format": 99, "name": "x",
                        "n_documents": 0}) + "\n"
        )
        with pytest.raises(ValueError, match="format"):
            load_collection(path)

    def test_truncated_file_detected(self, sample_collection, tmp_path):
        path = tmp_path / "c.jsonl"
        save_collection(sample_collection, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop last document
        with pytest.raises(ValueError, match="promises"):
            load_collection(path)


class TestQueryRoundtrip:
    def test_roundtrip(self, tmp_path):
        queries = [
            Query.from_terms(["a", "b", "a"]),
            Query.from_terms(["solo"]),
        ]
        path = tmp_path / "q.jsonl"
        save_queries(queries, path)
        loaded = load_queries(path)
        assert loaded == queries

    def test_gzip_roundtrip(self, tmp_path):
        queries = [Query.from_terms(["x"])]
        path = tmp_path / "q.jsonl.gz"
        save_queries(queries, path)
        assert load_queries(path) == queries

    def test_empty_log(self, tmp_path):
        path = tmp_path / "q.jsonl"
        save_queries([], path)
        assert load_queries(path) == []

    def test_weights_preserved(self, tmp_path):
        queries = [Query(terms=("a", "b"), weights=(2.5, 1.0))]
        path = tmp_path / "q.jsonl"
        save_queries(queries, path)
        assert load_queries(path)[0].weights == (2.5, 1.0)
