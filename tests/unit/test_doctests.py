"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.corpus.synth.wordgen
import repro.text.tokenizer


@pytest.mark.parametrize(
    "module",
    [
        repro.text.tokenizer,
        repro.corpus.synth.wordgen,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0
