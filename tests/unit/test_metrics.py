"""Unit tests for the paper's evaluation criteria."""

import pytest

from repro.core import Usefulness
from repro.evaluation import MethodAccumulator


def u(nodoc, avgsim=0.0):
    return Usefulness(nodoc=nodoc, avgsim=avgsim)


class TestMethodAccumulator:
    def test_match_counted(self):
        acc = MethodAccumulator([0.1])
        acc.add([u(3, 0.5)], [u(2, 0.4)])
        (row,) = acc.metrics()
        assert row.useful_queries == 1
        assert row.match == 1
        assert row.mismatch == 0

    def test_miss_not_matched(self):
        acc = MethodAccumulator([0.1])
        acc.add([u(3, 0.5)], [u(0.4, 0.0)])  # estimate rounds to 0
        (row,) = acc.metrics()
        assert row.match == 0
        assert row.mismatch == 0

    def test_mismatch_counted(self):
        acc = MethodAccumulator([0.1])
        acc.add([u(0, 0.0)], [u(1.0, 0.2)])
        (row,) = acc.metrics()
        assert row.useful_queries == 0
        assert row.mismatch == 1

    def test_not_useful_not_estimated_ignored(self):
        acc = MethodAccumulator([0.1])
        acc.add([u(0, 0.0)], [u(0.0, 0.0)])
        (row,) = acc.metrics()
        assert (row.match, row.mismatch, row.useful_queries) == (0, 0, 0)

    def test_d_nodoc_average_over_useful_queries_only(self):
        acc = MethodAccumulator([0.1])
        acc.add([u(10, 0.5)], [u(7, 0.5)])    # error 3
        acc.add([u(4, 0.5)], [u(5, 0.5)])     # error 1
        acc.add([u(0, 0.0)], [u(2, 0.5)])     # not useful: excluded from d-N
        (row,) = acc.metrics()
        assert row.d_nodoc == pytest.approx(2.0)

    def test_d_avgsim(self):
        acc = MethodAccumulator([0.1])
        acc.add([u(2, 0.8)], [u(2, 0.6)])
        acc.add([u(1, 0.4)], [u(1, 0.4)])
        (row,) = acc.metrics()
        assert row.d_avgsim == pytest.approx(0.1)

    def test_zero_useful_yields_zero_errors(self):
        acc = MethodAccumulator([0.1])
        acc.add([u(0, 0.0)], [u(0, 0.0)])
        (row,) = acc.metrics()
        assert row.d_nodoc == 0.0
        assert row.d_avgsim == 0.0

    def test_multiple_thresholds_independent(self):
        acc = MethodAccumulator([0.1, 0.5])
        acc.add([u(5, 0.5), u(0, 0.0)], [u(5, 0.5), u(1, 0.6)])
        rows = acc.metrics()
        assert rows[0].match == 1
        assert rows[1].mismatch == 1

    def test_alignment_enforced(self):
        acc = MethodAccumulator([0.1, 0.2])
        with pytest.raises(ValueError, match="align"):
            acc.add([u(1, 0.1)], [u(1, 0.1)])

    def test_n_queries_tracked(self):
        acc = MethodAccumulator([0.1])
        for __ in range(5):
            acc.add([u(1, 0.1)], [u(1, 0.1)])
        assert acc.n_queries == 5

    def test_match_mismatch_cell_format(self):
        acc = MethodAccumulator([0.1])
        acc.add([u(2, 0.1)], [u(2, 0.1)])
        acc.add([u(0, 0.0)], [u(3, 0.1)])
        (row,) = acc.metrics()
        assert row.match_mismatch() == "1/1"


class TestZeroDenominatorConventions:
    """Regression tests pinning the documented zero-denominator edges."""

    def test_empty_accumulator_rows_are_defined(self):
        # No queries at all: every criterion must still be a finite number.
        acc = MethodAccumulator([0.1, 0.5])
        for row in acc.metrics():
            assert row.useful_queries == 0
            assert row.d_nodoc == 0.0
            assert row.d_avgsim == 0.0
            assert row.match_rate == 1.0

    def test_match_rate_vacuous_truth(self):
        # Zero useful queries: match_rate is 1.0 (nothing to miss), even
        # when mismatches occurred — mismatch stays an absolute count.
        acc = MethodAccumulator([0.1])
        acc.add([u(0, 0.0)], [u(2, 0.5)])
        (row,) = acc.metrics()
        assert row.useful_queries == 0
        assert row.mismatch == 1
        assert row.match_rate == 1.0

    def test_match_rate_normal_case(self):
        acc = MethodAccumulator([0.1])
        acc.add([u(3, 0.5)], [u(3, 0.5)])
        acc.add([u(2, 0.4)], [u(0.2, 0.1)])
        (row,) = acc.metrics()
        assert row.match_rate == pytest.approx(0.5)
