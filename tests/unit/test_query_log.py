"""Unit tests for the SIFT-style query-log generator."""

import numpy as np
import pytest

from repro.corpus.synth import NewsgroupModel, QueryLogModel


@pytest.fixture(scope="module")
def model():
    return NewsgroupModel(
        vocab_size=2000, topic_size=80, topic_band=(30, 900),
        mean_length=50, seed=17, group_sizes=[10, 8, 6],
    )


class TestQueryLogModel:
    def test_default_size_matches_paper(self, model):
        queries = QueryLogModel(model, seed=1).generate()
        assert len(queries) == 6234

    def test_lengths_at_most_six(self, model):
        queries = QueryLogModel(model, seed=1).generate(500)
        assert max(q.n_terms for q in queries) <= 6
        assert min(q.n_terms for q in queries) >= 1

    def test_single_term_share_near_paper(self, model):
        queries = QueryLogModel(model, seed=2).generate(4000)
        share = sum(q.is_single_term for q in queries) / len(queries)
        # Paper: 1,941 / 6,234 = 31.1%.
        assert 0.27 <= share <= 0.36

    def test_terms_resolve_in_corpus_vocabulary(self, model):
        collection = model.generate_group(0)
        # Query terms are drawn from the same id space the corpus uses, so a
        # healthy fraction must literally occur in a generated group.
        queries = QueryLogModel(model, seed=3).generate(200)
        resolved = sum(
            any(t in collection.vocabulary for t in q.terms) for q in queries
        )
        assert resolved > 50

    def test_deterministic_per_seed(self, model):
        a = QueryLogModel(model, seed=4).generate(50)
        b = QueryLogModel(model, seed=4).generate(50)
        assert a == b

    def test_different_seeds_differ(self, model):
        a = QueryLogModel(model, seed=4).generate(50)
        b = QueryLogModel(model, seed=5).generate(50)
        assert a != b

    def test_terms_distinct_within_query(self, model):
        for query in QueryLogModel(model, seed=6).generate(300):
            assert len(set(query.terms)) == query.n_terms

    def test_custom_length_distribution(self, model):
        log = QueryLogModel(model, length_probs=(1.0,), seed=7)
        queries = log.generate(40)
        assert all(q.is_single_term for q in queries)

    def test_length_probs_must_sum_to_one(self, model):
        with pytest.raises(ValueError, match="sum to 1"):
            QueryLogModel(model, length_probs=(0.5, 0.1))

    def test_negative_length_prob_rejected(self, model):
        with pytest.raises(ValueError):
            QueryLogModel(model, length_probs=(1.5, -0.5))

    def test_topical_fraction_validated(self, model):
        with pytest.raises(ValueError):
            QueryLogModel(model, topical_fraction=2.0)

    def test_length_histogram_roughly_matches(self, model):
        queries = QueryLogModel(model, seed=8).generate(6000)
        lengths = np.bincount([q.n_terms for q in queries], minlength=7)[1:]
        observed = lengths / lengths.sum()
        expected = np.array([0.311, 0.295, 0.190, 0.107, 0.058, 0.039])
        assert np.max(np.abs(observed - expected)) < 0.03
