"""Unit tests for incremental/mergeable representative maintenance."""

import math

import pytest

from repro.corpus import Collection, Document
from repro.engine import SearchEngine
from repro.representatives import (
    RepresentativeAccumulator,
    TermAccumulator,
    build_representative,
)


class TestTermAccumulator:
    def test_single_weight(self):
        acc = TermAccumulator()
        acc.add(0.5)
        stats = acc.to_stats(10)
        assert stats.probability == pytest.approx(0.1)
        assert stats.mean == pytest.approx(0.5)
        assert stats.std == 0.0
        assert stats.max_weight == pytest.approx(0.5)

    def test_mean_std_max(self):
        acc = TermAccumulator()
        for weight in (0.2, 0.4, 0.6):
            acc.add(weight)
        stats = acc.to_stats(3)
        assert stats.mean == pytest.approx(0.4)
        assert stats.std == pytest.approx(math.sqrt(2 / 3) * 0.2)
        assert stats.max_weight == pytest.approx(0.6)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            TermAccumulator().add(-0.1)

    def test_unseen_term_cannot_materialize(self):
        with pytest.raises(ValueError):
            TermAccumulator().to_stats(10)

    def test_merge_equals_sequential(self):
        a, b, c = TermAccumulator(), TermAccumulator(), TermAccumulator()
        for weight in (0.1, 0.5):
            a.add(weight)
        for weight in (0.3, 0.9):
            b.add(weight)
        for weight in (0.1, 0.5, 0.3, 0.9):
            c.add(weight)
        a.merge(b)
        assert a.df == c.df
        assert a.weight_sum == pytest.approx(c.weight_sum)
        assert a.weight_sumsq == pytest.approx(c.weight_sumsq)
        assert a.max_weight == pytest.approx(c.max_weight)

    def test_include_max_flag(self):
        acc = TermAccumulator()
        acc.add(0.7)
        assert acc.to_stats(5, include_max=False).max_weight is None

    def test_variance_never_negative(self):
        # Catastrophic cancellation guard: many identical weights.
        acc = TermAccumulator()
        for __ in range(1000):
            acc.add(0.3333333333333333)
        assert acc.to_stats(1000).std == 0.0


class TestRepresentativeAccumulator:
    @pytest.fixture
    def engine(self):
        return SearchEngine(
            Collection.from_documents(
                "db",
                [
                    Document("d1", terms=["a", "a", "b"]),
                    Document("d2", terms=["b", "c"]),
                    Document("d3", terms=["a"]),
                ],
            )
        )

    def _doc_weight_stream(self, engine):
        """Per-document {term: normalized weight} mappings from the index."""
        vocabulary = engine.collection.vocabulary
        docs = [dict() for __ in range(engine.n_documents)]
        for term_id, plist in engine.index.items():
            term = vocabulary.term_of(term_id)
            for doc_index, weight in zip(
                plist.doc_indices.tolist(), plist.weights.tolist()
            ):
                docs[doc_index][term] = weight
        return docs

    def test_streaming_equals_batch(self, engine):
        acc = RepresentativeAccumulator("db")
        for weights in self._doc_weight_stream(engine):
            acc.add_document(weights)
        incremental = acc.to_representative()
        batch = build_representative(engine)
        assert incremental.n_documents == batch.n_documents
        assert incremental.n_terms == batch.n_terms
        for term, stats in batch.items():
            other = incremental.get(term)
            assert other.probability == pytest.approx(stats.probability)
            assert other.mean == pytest.approx(stats.mean)
            assert other.std == pytest.approx(stats.std)
            assert other.max_weight == pytest.approx(stats.max_weight)

    def test_from_index_equals_batch(self, engine):
        acc = RepresentativeAccumulator.from_index(engine)
        incremental = acc.to_representative()
        batch = build_representative(engine)
        for term, stats in batch.items():
            other = incremental.get(term)
            assert other.probability == pytest.approx(stats.probability)
            assert other.mean == pytest.approx(stats.mean)
            assert other.std == pytest.approx(stats.std, abs=1e-12)
            assert other.max_weight == pytest.approx(stats.max_weight)

    def test_zero_weights_ignored(self):
        acc = RepresentativeAccumulator("db")
        acc.add_document({"a": 0.5, "b": 0.0})
        rep = acc.to_representative()
        assert "b" not in rep
        assert rep.get("a").probability == 1.0

    def test_merge_matches_merged_collection(self, small_model):
        g3 = small_model.generate_group(3)
        g4 = small_model.generate_group(4)
        acc3 = RepresentativeAccumulator.from_index(SearchEngine(g3))
        acc4 = RepresentativeAccumulator.from_index(SearchEngine(g4))
        merged_acc = RepresentativeAccumulator.merged("merged", [acc3, acc4])

        merged_collection = Collection.merged("merged", [g3, g4])
        batch = build_representative(SearchEngine(merged_collection))

        incremental = merged_acc.to_representative()
        assert incremental.n_documents == batch.n_documents
        assert incremental.n_terms == batch.n_terms
        for term, stats in batch.items():
            other = incremental.get(term)
            assert other.probability == pytest.approx(stats.probability)
            assert other.mean == pytest.approx(stats.mean)
            assert other.std == pytest.approx(stats.std, abs=1e-9)
            assert other.max_weight == pytest.approx(stats.max_weight)

    def test_merge_into_existing(self, engine):
        acc = RepresentativeAccumulator.from_index(engine)
        extra = RepresentativeAccumulator("extra")
        extra.add_document({"zz": 0.9})
        acc.merge(extra)
        rep = acc.to_representative()
        assert rep.n_documents == 4
        assert rep.get("zz").max_weight == pytest.approx(0.9)

    def test_repr(self, engine):
        acc = RepresentativeAccumulator.from_index(engine)
        assert "docs=3" in repr(acc)
