"""Live-fleet subsystem: incremental representative deltas.

The paper assumes representative propagation "can be done infrequently"
because the statistics tolerate staleness; this package makes being *right*
cheap instead.  Engines publish version-stamped
:class:`~repro.fleet.delta.RepresentativeDelta` objects describing exactly
which terms changed; brokers apply them bit-exactly to dict and columnar
representatives and evict only the affected cache entries.
"""

from repro.fleet.delta import (
    DELTA_FORMAT,
    DELTA_KIND,
    DeltaCompactedError,
    RepresentativeDelta,
    TermDeltaRecord,
    apply_delta,
    canonicalize,
    diff_representatives,
    rescale_probability,
)
from repro.fleet.live import LiveEngineServer

__all__ = [
    "DELTA_FORMAT",
    "DELTA_KIND",
    "DeltaCompactedError",
    "LiveEngineServer",
    "RepresentativeDelta",
    "TermDeltaRecord",
    "apply_delta",
    "canonicalize",
    "diff_representatives",
    "rescale_probability",
]
