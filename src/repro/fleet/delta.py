"""Representative deltas: versioned, bit-exact incremental updates.

A :class:`RepresentativeDelta` carries a corpus mutation from an engine to
the broker without re-shipping the whole representative.  Records are
*state-based*: a ``set`` record carries the term's **final** quadruplet, a
``del`` record retracts the term.  Application is therefore idempotent and
trivially bit-exact — the broker ends up holding exactly the statistics a
fresh snapshot would have produced, byte for byte.

Untouched terms and the probability rescale
-------------------------------------------
When only the document count changes, every present term's probability
``p = df / n`` changes even though the term's weight distribution did not.
Shipping a record per term would defeat the delta.  Instead the delta
carries both document counts and the receiver rescales in place::

    df = rint(p_old * n_old)      # exact: df is an integer < 2**51
    p_new = df / n_new            # identical to what a fresh snapshot computes

``p_old`` was originally produced as ``df / n_old`` in float64, so
``rint(p_old * n_old)`` recovers the integer ``df`` exactly, and ``df /
n_new`` is the very same division a full rebuild performs — the rescaled
probability is bit-identical, not merely close.  Mean, std and max weight
are per-document quantities (normalization is document-local under the
paper's Cosine model), so they are untouched by membership changes
elsewhere.  A term thus needs a record only when its *own* posting list
changed.

Canonical ordering
------------------
Delta-applied representatives list their terms in sorted term-string
order.  Estimators that reduce over the whole representative (the binary
independence baseline averages the per-term means) are sensitive to
iteration order in the last ulp, so the live pipeline fixes one canonical
order at both ends: engines publish canonically ordered snapshots
(:func:`canonicalize`) and :func:`apply_delta` re-emits sorted terms.

Wire format
-----------
``encode()`` produces canonical ASCII JSON (sorted keys, no whitespace).
Floats round-trip exactly: ``json`` serializes the shortest decimal string
that parses back to the same float64.  Records are ordered deletions-first,
each group sorted by term, so equal deltas encode to equal bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.representatives.representative import DatabaseRepresentative
from repro.representatives.term_stats import TermStats

__all__ = [
    "DELTA_FORMAT",
    "DELTA_KIND",
    "DeltaCompactedError",
    "RepresentativeDelta",
    "TermDeltaRecord",
    "apply_delta",
    "canonicalize",
    "diff_representatives",
    "rescale_probability",
]

DELTA_KIND = "representative.delta"
DELTA_FORMAT = 1


class DeltaCompactedError(LookupError):
    """The requested base version predates the engine's retained delta log.

    The caller must fall back to a full snapshot — exactly the degraded
    path :meth:`LiveEngineServer.sync_representative` takes automatically.
    """


def rescale_probability(probability: float, n_old: int, n_new: int) -> float:
    """Re-express ``df / n_old`` as ``df / n_new``, bit-exactly.

    ``rint`` recovers the integer document frequency exactly because
    ``df <= n_old`` is far below 2**51 and ``probability`` was itself
    computed as ``df / n_old`` in float64.
    """
    if n_old == n_new:
        return probability
    df = float(round(probability * n_old))
    return df / n_new if n_new else 0.0


@dataclass(frozen=True)
class TermDeltaRecord:
    """One term's change: ``set`` carries final stats, ``del`` retracts.

    ``stats`` is ``None`` exactly when ``op == "del"``.  A triplet-mode
    term is a ``set`` whose stats carry ``max_weight=None``.
    """

    op: str
    term: str
    stats: Optional[TermStats] = None

    def __post_init__(self):
        if self.op not in ("set", "del"):
            raise ValueError(f"op must be 'set' or 'del', got {self.op!r}")
        if (self.stats is None) != (self.op == "del"):
            raise ValueError(f"op {self.op!r} inconsistent with stats {self.stats!r}")

    def to_wire(self) -> list:
        if self.op == "del":
            return ["del", self.term]
        s = self.stats
        return ["set", self.term, s.probability, s.mean, s.std, s.max_weight]

    @classmethod
    def from_wire(cls, record: list) -> "TermDeltaRecord":
        if record[0] == "del":
            return cls(op="del", term=record[1])
        return cls(
            op="set",
            term=record[1],
            stats=TermStats(
                probability=record[2],
                mean=record[3],
                std=record[4],
                max_weight=record[5],
            ),
        )


def _canonical_records(
    records: Iterable[TermDeltaRecord],
) -> Tuple[TermDeltaRecord, ...]:
    """Deletions first, each group sorted by term; duplicate terms raise."""
    dels = sorted((r for r in records if r.op == "del"), key=lambda r: r.term)
    sets = sorted((r for r in records if r.op == "set"), key=lambda r: r.term)
    ordered = tuple(dels + sets)
    seen = set()
    for record in ordered:
        if record.term in seen:
            raise ValueError(f"duplicate record for term {record.term!r}")
        seen.add(record.term)
    return ordered


@dataclass(frozen=True)
class RepresentativeDelta:
    """A version-stamped change set for one engine's representative.

    Applies on top of version ``from_version`` (holding
    ``from_n_documents`` documents) and yields version ``to_version``
    (holding ``n_documents``).  Terms without a record rescale their
    probability via :func:`rescale_probability` and keep every other
    statistic untouched.
    """

    name: str
    from_version: int
    to_version: int
    from_n_documents: int
    n_documents: int
    records: Tuple[TermDeltaRecord, ...]

    def __post_init__(self):
        object.__setattr__(self, "records", _canonical_records(self.records))

    @property
    def terms(self) -> Tuple[str, ...]:
        """Every term this delta touches (sets and deletions)."""
        return tuple(record.term for record in self.records)

    @property
    def n_sets(self) -> int:
        return sum(1 for r in self.records if r.op == "set")

    @property
    def n_dels(self) -> int:
        return sum(1 for r in self.records if r.op == "del")

    @property
    def is_empty(self) -> bool:
        return not self.records and self.from_n_documents == self.n_documents

    def to_json_dict(self) -> dict:
        return {
            "kind": DELTA_KIND,
            "format": DELTA_FORMAT,
            "name": self.name,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "from_n_documents": self.from_n_documents,
            "n_documents": self.n_documents,
            "records": [record.to_wire() for record in self.records],
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "RepresentativeDelta":
        if payload.get("kind") != DELTA_KIND:
            raise ValueError("payload is not a representative delta")
        if payload.get("format") != DELTA_FORMAT:
            raise ValueError(f"unsupported delta format {payload.get('format')!r}")
        return cls(
            name=payload["name"],
            from_version=payload["from_version"],
            to_version=payload["to_version"],
            from_n_documents=payload["from_n_documents"],
            n_documents=payload["n_documents"],
            records=tuple(
                TermDeltaRecord.from_wire(record) for record in payload["records"]
            ),
        )

    def encode(self) -> bytes:
        """Canonical wire bytes: sorted-key, whitespace-free ASCII JSON."""
        return json.dumps(
            self.to_json_dict(),
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
        ).encode("ascii")

    @classmethod
    def decode(cls, data: bytes) -> "RepresentativeDelta":
        return cls.from_json_dict(json.loads(data.decode("ascii")))

    @property
    def nbytes(self) -> int:
        """Size of the canonical wire encoding."""
        return len(self.encode())

    def compose(self, later: "RepresentativeDelta") -> "RepresentativeDelta":
        """The single delta equivalent to applying ``self`` then ``later``.

        Earlier ``set`` records not re-touched by ``later`` are rescaled to
        the newer document count (the same rescale an untouched term would
        have received had the deltas been applied one by one), then
        ``later``'s records win term-by-term.
        """
        if later.name != self.name:
            raise ValueError(f"cannot compose {self.name!r} with {later.name!r}")
        if later.from_version != self.to_version:
            raise ValueError(
                f"version gap: {self.to_version} -> {later.from_version}"
            )
        if later.from_n_documents != self.n_documents:
            raise ValueError(
                f"document-count gap: {self.n_documents} -> "
                f"{later.from_n_documents}"
            )
        superseded = {record.term for record in later.records}
        merged: Dict[str, TermDeltaRecord] = {}
        for record in self.records:
            if record.term in superseded:
                # ``later`` carries this term's final state; rescaling the
                # earlier record would be dead work — and can even produce
                # an out-of-range probability when the term's document
                # frequency shrank along with the corpus.
                continue
            if record.op == "set":
                stats = record.stats
                record = TermDeltaRecord(
                    op="set",
                    term=record.term,
                    stats=TermStats(
                        probability=rescale_probability(
                            stats.probability,
                            self.n_documents,
                            later.n_documents,
                        ),
                        mean=stats.mean,
                        std=stats.std,
                        max_weight=stats.max_weight,
                    ),
                )
            merged[record.term] = record
        for record in later.records:
            merged[record.term] = record
        return RepresentativeDelta(
            name=self.name,
            from_version=self.from_version,
            to_version=later.to_version,
            from_n_documents=self.from_n_documents,
            n_documents=later.n_documents,
            records=tuple(merged.values()),
        )


def canonicalize(representative: DatabaseRepresentative) -> DatabaseRepresentative:
    """The same representative with terms in sorted-string order.

    The live pipeline's canonical iteration order — both the engine's
    published snapshots and every delta-applied representative use it, so
    order-sensitive whole-representative reductions (the binary baseline's
    database weight) agree to the last bit on both sides.
    """
    return DatabaseRepresentative(
        name=representative.name,
        n_documents=representative.n_documents,
        term_stats={
            term: stats
            for term, stats in sorted(
                representative.items(), key=lambda item: item[0]
            )
        },
    )


def diff_representatives(
    old: DatabaseRepresentative,
    new: DatabaseRepresentative,
    *,
    from_version: int,
    to_version: int,
) -> RepresentativeDelta:
    """The delta turning ``old`` into ``new`` (both for the same engine).

    A term present in both snapshots is skipped when its recovered integer
    document frequency and its mean/std/max-weight are identical — the
    receiver's probability rescale reproduces its new stats exactly.
    """
    if old.name != new.name:
        raise ValueError(f"cannot diff {old.name!r} against {new.name!r}")
    records: List[TermDeltaRecord] = []
    for term, old_stats in old.items():
        if new.get(term) is None:
            records.append(TermDeltaRecord(op="del", term=term))
    for term, new_stats in new.items():
        old_stats = old.get(term)
        if old_stats is not None:
            old_df = round(old_stats.probability * old.n_documents)
            new_df = round(new_stats.probability * new.n_documents)
            if (
                old_df == new_df
                and old_stats.mean == new_stats.mean
                and old_stats.std == new_stats.std
                and old_stats.max_weight == new_stats.max_weight
            ):
                continue
        records.append(TermDeltaRecord(op="set", term=term, stats=new_stats))
    return RepresentativeDelta(
        name=old.name,
        from_version=from_version,
        to_version=to_version,
        from_n_documents=old.n_documents,
        n_documents=new.n_documents,
        records=tuple(records),
    )


def apply_delta(
    representative: DatabaseRepresentative, delta: RepresentativeDelta
) -> DatabaseRepresentative:
    """Apply ``delta`` to a dict representative; returns the new snapshot.

    The result is bit-exact against a fresh canonical snapshot at
    ``delta.to_version``: touched terms take the final stats the delta
    carries, untouched terms rescale their probability exactly, and the
    output iterates in canonical sorted-term order.  Deleting an absent
    term is a no-op (state-based records are idempotent), but a mismatched
    base document count is an error — it means the caller is applying the
    delta to the wrong version.
    """
    if representative.name != delta.name:
        raise ValueError(
            f"delta for {delta.name!r} applied to {representative.name!r}"
        )
    if representative.n_documents != delta.from_n_documents:
        raise ValueError(
            f"delta expects a base of {delta.from_n_documents} documents, "
            f"got {representative.n_documents}"
        )
    removed = {r.term for r in delta.records if r.op == "del"}
    replaced = {r.term: r.stats for r in delta.records if r.op == "set"}
    n_old = delta.from_n_documents
    n_new = delta.n_documents
    merged: Dict[str, TermStats] = {}
    for term, stats in representative.items():
        if term in removed or term in replaced:
            continue
        if n_old != n_new:
            stats = TermStats(
                probability=rescale_probability(stats.probability, n_old, n_new),
                mean=stats.mean,
                std=stats.std,
                max_weight=stats.max_weight,
            )
        merged[term] = stats
    merged.update(replaced)
    if n_new == 0 and merged:
        raise ValueError("delta empties the database but terms survive")
    return DatabaseRepresentative(
        name=delta.name,
        n_documents=n_new,
        term_stats={term: merged[term] for term in sorted(merged)},
    )
