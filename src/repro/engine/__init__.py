"""Local search engine — the bottom level of the two-level architecture."""

from repro.engine.results import SearchHit
from repro.engine.search_engine import SearchEngine

__all__ = ["SearchEngine", "SearchHit"]
