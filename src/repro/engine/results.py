"""Result records returned by search engines and the metasearch broker."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["SearchHit"]


@dataclass(frozen=True, order=True)
class SearchHit:
    """One retrieved document.

    Ordering is by (similarity, doc_id) so sorted sequences of hits are
    deterministic even under similarity ties.  ``engine`` is filled in by
    the metasearch broker when results from several engines are merged.
    """

    similarity: float
    doc_id: str
    engine: Optional[str] = None

    def __repr__(self) -> str:
        origin = f", engine={self.engine!r}" if self.engine else ""
        return f"SearchHit({self.doc_id!r}, sim={self.similarity:.4f}{origin})"
