"""A local search engine over one collection.

The engine owns an inverted index and answers threshold and top-k queries
under the global (Cosine, by default) similarity function.  It is also the
source of ground truth for the evaluation: ``similarities`` computes the
exact similarity of every matching document, which is what the paper's
"true usefulness" columns are derived from.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.corpus.collection import Collection
from repro.corpus.query import Query
from repro.engine.results import SearchHit
from repro.index.inverted import InvertedIndex
from repro.vsm.weighting import WeightingScheme

__all__ = ["SearchEngine"]


class SearchEngine:
    """Threshold / top-k retrieval over a collection.

    Args:
        collection: The engine's database.
        weighting: Document weighting scheme (raw tf by default).
        normalize: Use Cosine (normalized) similarity; turning this off
            yields the plain dot product, which some related methods assume.
        normalizer: Explicit length-normalization strategy (e.g. pivoted
            normalization); overrides ``normalize`` when given.
        idf: Optional idf variant for document weights (None, "smooth",
            "ln") — see :class:`~repro.index.InvertedIndex`.
    """

    def __init__(
        self,
        collection: Collection,
        weighting: Optional[WeightingScheme] = None,
        normalize: bool = True,
        normalizer=None,
        idf: Optional[str] = None,
    ):
        self.collection = collection
        self.index = InvertedIndex(
            collection,
            weighting=weighting,
            normalize=normalize,
            normalizer=normalizer,
            idf=idf,
        )

    @classmethod
    def from_index(cls, index: InvertedIndex) -> "SearchEngine":
        """Wrap an already-built index (e.g. one loaded via
        :func:`~repro.index.store.load_index`) without re-indexing.

        The engine adopts the index's collection — for a loaded index
        that is a skeleton (ids and vocabulary, no term frequencies),
        which serves search and representative building identically to
        the original.
        """
        engine = cls.__new__(cls)
        engine.collection = index.collection
        engine.index = index
        return engine

    @property
    def name(self) -> str:
        """The engine is named after its collection."""
        return self.collection.name

    @property
    def n_documents(self) -> int:
        return len(self.collection)

    # -- similarity computation -------------------------------------------------

    def _query_components(self, query: Query) -> List[Tuple[int, float]]:
        """Map query terms to (term_id, normalized_weight); out-of-vocabulary
        terms are dropped from matching but still contribute to the query
        norm, exactly as the Cosine function dictates."""
        components = []
        for term, weight in query.normalized_items():
            tid = self.collection.vocabulary.id_of(term)
            if tid is not None:
                components.append((tid, weight))
        return components

    def similarities(self, query: Query) -> Tuple[np.ndarray, np.ndarray]:
        """Exact similarities of all documents matching >= 1 query term.

        Returns ``(doc_indices, sims)`` with ``doc_indices`` ascending.
        Documents sharing no term with the query have similarity 0 and are
        omitted.
        """
        components = self._query_components(query)
        if not components:
            return np.empty(0, dtype=np.int64), np.empty(0)
        accumulator = np.zeros(self.n_documents)
        touched = np.zeros(self.n_documents, dtype=bool)
        for tid, weight in components:
            plist = self.index.postings(tid)
            accumulator[plist.doc_indices] += weight * plist.weights
            touched[plist.doc_indices] = True
        doc_indices = np.nonzero(touched)[0]
        return doc_indices, accumulator[doc_indices]

    def search(self, query: Query, threshold: float = 0.0) -> List[SearchHit]:
        """Documents with similarity strictly above ``threshold``, best first."""
        doc_indices, sims = self.similarities(query)
        keep = sims > threshold
        hits = [
            SearchHit(
                similarity=float(sim),
                doc_id=self.collection.doc_id(int(idx)),
                engine=self.name,
            )
            for idx, sim in zip(doc_indices[keep], sims[keep])
        ]
        hits.sort(reverse=True)
        return hits

    def top_k(self, query: Query, k: int) -> List[SearchHit]:
        """The ``k`` most similar documents (fewer if the query matches fewer)."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k!r}")
        return self.search(query, threshold=0.0)[:k]

    def max_similarity(self, query: Query) -> float:
        """The engine's max_sim for the query (0 when nothing matches)."""
        __, sims = self.similarities(query)
        return float(sims.max()) if sims.size else 0.0

    def __repr__(self) -> str:
        return f"SearchEngine({self.name!r}, docs={self.n_documents})"
