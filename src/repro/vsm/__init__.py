"""Vector-space model substrate: vocabularies, sparse vectors, weighting.

The paper's global similarity function is the Cosine function over term
vectors (Section 1); this subpackage provides the vocabulary that maps term
strings to dense integer ids, sparse term vectors with dot/cosine products,
and the tf-based weighting schemes used to turn raw term frequencies into
document/query weights.
"""

from repro.vsm.normalization import (
    CosineNormalizer,
    Normalizer,
    NullNormalizer,
    PivotedNormalizer,
    get_normalizer,
)
from repro.vsm.similarity import cosine_similarity, dot_similarity
from repro.vsm.vector import SparseVector
from repro.vsm.vocabulary import Vocabulary
from repro.vsm.weighting import (
    AugmentedTfWeighting,
    BinaryWeighting,
    LogTfWeighting,
    RawTfWeighting,
    WeightingScheme,
    get_weighting,
)

__all__ = [
    "AugmentedTfWeighting",
    "BinaryWeighting",
    "CosineNormalizer",
    "LogTfWeighting",
    "Normalizer",
    "NullNormalizer",
    "PivotedNormalizer",
    "get_normalizer",
    "RawTfWeighting",
    "SparseVector",
    "Vocabulary",
    "WeightingScheme",
    "cosine_similarity",
    "dot_similarity",
    "get_weighting",
]
