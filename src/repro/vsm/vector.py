"""Sparse term vectors.

A :class:`SparseVector` is an immutable pair of parallel numpy arrays —
ascending term ids and their weights — which is the representation both the
inverted index and the exact-similarity code paths operate on.  Only
non-negative weights arise in this system (tf-derived), but the vector type
itself does not enforce that; the weighting schemes do.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

__all__ = ["SparseVector"]

# Largest-magnitude weight for which squaring stays comfortably inside the
# normal double range.  Outside it, sums of squares drift through subnormals
# (or overflow), so the norm is computed under an exact power-of-two rescale
# instead.  Inside it, the legacy arithmetic runs unchanged, bit-for-bit.
_NORM_SAFE_LO = 1e-140
_NORM_SAFE_HI = 1e140


class SparseVector:
    """Immutable sparse vector over integer term ids.

    Args:
        indices: 1-D integer array of term ids, strictly ascending.
        values: 1-D float array of the same length.
        checked: Internal flag; pass False only from constructors that
            already guarantee the invariants.
    """

    __slots__ = ("indices", "values")

    def __init__(self, indices, values, checked: bool = True):
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=float)
        if checked:
            if indices.ndim != 1 or values.ndim != 1:
                raise ValueError("indices and values must be 1-D")
            if indices.shape != values.shape:
                raise ValueError(
                    f"length mismatch: {indices.shape} vs {values.shape}"
                )
            if indices.size > 1 and not np.all(np.diff(indices) > 0):
                order = np.argsort(indices, kind="stable")
                indices = indices[order]
                values = values[order]
                if np.any(np.diff(indices) == 0):
                    raise ValueError("duplicate term ids in sparse vector")
        self.indices = indices
        self.values = values

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_mapping(cls, weights: Mapping[int, float]) -> "SparseVector":
        """Build from a ``{term_id: weight}`` mapping, dropping zeros."""
        items = sorted((i, v) for i, v in weights.items() if v != 0.0)
        if not items:
            return cls.empty()
        idx, val = zip(*items)
        return cls(np.array(idx, dtype=np.int64), np.array(val), checked=False)

    @classmethod
    def from_counts(cls, term_ids: Iterable[int]) -> "SparseVector":
        """Build a raw term-frequency vector from a token-id stream."""
        counts: Dict[int, float] = {}
        for tid in term_ids:
            counts[tid] = counts.get(tid, 0.0) + 1.0
        return cls.from_mapping(counts)

    @classmethod
    def empty(cls) -> "SparseVector":
        return cls(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=float), checked=False
        )

    # -- algebra -------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of non-zero components."""
        return int(self.indices.size)

    def norm(self) -> float:
        """Euclidean norm, the denominator of the Cosine function.

        Weights whose squares would leave the normal double range are
        rescaled by an exact power of two first, so subnormal underflow
        cannot erase (or grossly distort) the norm of a tiny vector.
        """
        if self.indices.size == 0:
            return 0.0
        m = float(np.max(np.abs(self.values)))
        if m == 0.0 or _NORM_SAFE_LO <= m <= _NORM_SAFE_HI:
            return float(math.sqrt(float(np.dot(self.values, self.values))))
        v, e = self._pow2_scaled(m)
        with np.errstate(over="ignore"):  # a true norm beyond DBL_MAX is inf
            return float(np.ldexp(math.sqrt(float(np.dot(v, v))), e))

    def _pow2_scaled(self, m: float) -> Tuple[np.ndarray, int]:
        """``values * 2**-e`` (an exact scaling) with the max magnitude
        brought into ``[0.5, 1)``, plus the exponent ``e``.

        ``np.ldexp`` shifts exponents elementwise — ``2**-e`` itself can
        exceed the double range when the weights are subnormal.
        """
        e = math.frexp(m)[1]
        return np.ldexp(self.values, -e), e

    def dot(self, other: "SparseVector") -> float:
        """Dot product with another sparse vector (sorted-merge in numpy)."""
        if self.nnz == 0 or other.nnz == 0:
            return 0.0
        # Locate shared indices via searchsorted on the smaller vector.
        a, b = (self, other) if self.nnz <= other.nnz else (other, self)
        pos = np.searchsorted(b.indices, a.indices)
        pos_clipped = np.minimum(pos, b.indices.size - 1)
        hits = b.indices[pos_clipped] == a.indices
        if not np.any(hits):
            return 0.0
        return float(np.dot(a.values[hits], b.values[pos_clipped[hits]]))

    def scaled(self, factor: float) -> "SparseVector":
        """A copy with every weight multiplied by ``factor``."""
        return SparseVector(self.indices, self.values * factor, checked=False)

    def normalized(self) -> "SparseVector":
        """Unit-norm copy; the zero vector normalizes to itself.

        Extreme weights take the same power-of-two rescale as
        :meth:`norm` and divide in the normal range — multiplying by the
        reciprocal of a subnormal norm would overflow to inf.
        """
        if self.indices.size == 0:
            return self
        m = float(np.max(np.abs(self.values)))
        if m == 0.0:
            return self
        if _NORM_SAFE_LO <= m <= _NORM_SAFE_HI:
            return self.scaled(1.0 / self.norm())
        v, _ = self._pow2_scaled(m)
        n = math.sqrt(float(np.dot(v, v)))
        return SparseVector(self.indices, v / n, checked=False)

    def to_mapping(self) -> Dict[int, float]:
        """Materialize as a ``{term_id: weight}`` dict."""
        return {int(i): float(v) for i, v in zip(self.indices, self.values)}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return bool(
            np.array_equal(self.indices, other.indices)
            and np.array_equal(self.values, other.values)
        )

    def __hash__(self):  # pragma: no cover - explicit unhashability
        raise TypeError("SparseVector is not hashable")

    def items(self) -> Iterable[Tuple[int, float]]:
        """Iterate ``(term_id, weight)`` pairs in ascending id order."""
        return zip(self.indices.tolist(), self.values.tolist())

    def __repr__(self) -> str:
        return f"SparseVector(nnz={self.nnz})"
