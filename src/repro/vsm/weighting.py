"""Term-weighting schemes: raw term frequency and friends.

The paper transforms documents and queries "into a vector of terms with
weights [17]" (Salton & McGill) and normalizes with the Cosine function.  The
classic weight before normalization is the raw term frequency; log and
augmented variants are provided for ablations, since the estimators only see
the resulting weight statistics and are agnostic to the scheme.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "WeightingScheme",
    "RawTfWeighting",
    "LogTfWeighting",
    "AugmentedTfWeighting",
    "BinaryWeighting",
    "get_weighting",
]


class WeightingScheme(ABC):
    """Maps raw term-frequency counts to unnormalized term weights."""

    name: str = "abstract"

    @abstractmethod
    def weights(self, tf: np.ndarray) -> np.ndarray:
        """Vector of weights for a vector of per-term frequencies ``tf``.

        ``tf`` entries are positive counts; implementations must be
        element-wise and monotone non-decreasing in ``tf``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RawTfWeighting(WeightingScheme):
    """Weight = term frequency; the default scheme of the reproduction."""

    name = "tf"

    def weights(self, tf: np.ndarray) -> np.ndarray:
        return np.asarray(tf, dtype=float)


class LogTfWeighting(WeightingScheme):
    """Weight = 1 + ln(tf); dampens bursty terms (SMART 'l')."""

    name = "logtf"

    def weights(self, tf: np.ndarray) -> np.ndarray:
        tf = np.asarray(tf, dtype=float)
        out = np.zeros_like(tf)
        positive = tf > 0
        out[positive] = 1.0 + np.log(tf[positive])
        return out


class AugmentedTfWeighting(WeightingScheme):
    """Weight = 0.5 + 0.5 * tf / max(tf) (SMART 'a')."""

    name = "augtf"

    def weights(self, tf: np.ndarray) -> np.ndarray:
        tf = np.asarray(tf, dtype=float)
        if tf.size == 0:
            return tf
        peak = tf.max()
        if peak <= 0.0:
            return np.zeros_like(tf)
        out = np.where(tf > 0, 0.5 + 0.5 * tf / peak, 0.0)
        return out


class BinaryWeighting(WeightingScheme):
    """Weight = 1 if the term occurs; the binary case of Yu et al. [18]."""

    name = "binary"

    def weights(self, tf: np.ndarray) -> np.ndarray:
        return (np.asarray(tf, dtype=float) > 0).astype(float)


_SCHEMES = {
    scheme.name: scheme
    for scheme in (
        RawTfWeighting(),
        LogTfWeighting(),
        AugmentedTfWeighting(),
        BinaryWeighting(),
    )
}


def get_weighting(name: str) -> WeightingScheme:
    """Look up a weighting scheme by its short name ('tf', 'logtf', ...)."""
    try:
        return _SCHEMES[name]
    except KeyError:
        known = ", ".join(sorted(_SCHEMES))
        raise ValueError(f"unknown weighting scheme {name!r}; known: {known}")
