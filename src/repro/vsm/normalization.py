"""Document-length normalization schemes.

The paper's experiments use Cosine normalization (divide by the Euclidean
norm), and its Section 3.1 guarantee argument notes that "the same argument
applies to other similarity functions such as [16]" — pivoted document
length normalization (Singhal, Buckley & Mitra, SIGIR 1996).  Both are
provided as :class:`Normalizer` strategies consumed by the inverted index;
the estimators are agnostic, since they only ever see the resulting
normalized-weight statistics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Normalizer",
    "CosineNormalizer",
    "NullNormalizer",
    "PivotedNormalizer",
    "get_normalizer",
]


class Normalizer(ABC):
    """Maps per-document vector norms to per-document weight divisors."""

    name: str = "abstract"

    @abstractmethod
    def divisors(self, norms: np.ndarray) -> np.ndarray:
        """Divisor for each document given its unnormalized weight norm.

        Implementations must return strictly positive divisors for
        documents with positive norm; zero-norm (empty) documents may map
        to any positive value since they have no weights to divide.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CosineNormalizer(Normalizer):
    """Classic Cosine: divisor = the document's Euclidean norm."""

    name = "cosine"

    def divisors(self, norms: np.ndarray) -> np.ndarray:
        out = np.asarray(norms, dtype=float).copy()
        out[out == 0.0] = 1.0
        return out


class NullNormalizer(Normalizer):
    """No normalization: raw dot-product similarity."""

    name = "none"

    def divisors(self, norms: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(norms, dtype=float))


class PivotedNormalizer(Normalizer):
    """Pivoted length normalization [Singhal et al., SIGIR 1996].

    divisor = (1 - slope) * pivot + slope * norm, with the pivot set to the
    collection's average norm.  Compared to Cosine this deflates the
    advantage of short documents; ``slope=1`` degenerates to Cosine (up to
    a constant factor) and ``slope=0`` to a constant divisor.

    Args:
        slope: The pivoted-normalization slope; the original paper found
            values around 0.2-0.3 effective.
    """

    name = "pivoted"

    def __init__(self, slope: float = 0.25):
        if not 0.0 <= slope <= 1.0:
            raise ValueError(f"slope must be in [0, 1], got {slope!r}")
        self.slope = slope

    def divisors(self, norms: np.ndarray) -> np.ndarray:
        norms = np.asarray(norms, dtype=float)
        positive = norms[norms > 0]
        pivot = float(positive.mean()) if positive.size else 1.0
        out = (1.0 - self.slope) * pivot + self.slope * norms
        out[out <= 0.0] = 1.0
        return out

    def __repr__(self) -> str:
        return f"PivotedNormalizer(slope={self.slope})"


def get_normalizer(name: str) -> Normalizer:
    """Look up a normalizer by name ('cosine', 'none', 'pivoted')."""
    schemes = {
        "cosine": CosineNormalizer,
        "none": NullNormalizer,
        "pivoted": PivotedNormalizer,
    }
    try:
        return schemes[name]()
    except KeyError:
        known = ", ".join(sorted(schemes))
        raise ValueError(f"unknown normalizer {name!r}; known: {known}")
