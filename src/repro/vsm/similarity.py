"""Similarity functions between sparse term vectors.

The paper's global similarity function is the Cosine function (dot product of
the two vectors divided by the product of their norms), which keeps every
similarity in [0, 1] for non-negative weights — the reason no threshold above
1 is ever needed in the evaluation (Section 4).
"""

from __future__ import annotations

from repro.vsm.vector import SparseVector

__all__ = ["dot_similarity", "cosine_similarity"]


def dot_similarity(query: SparseVector, document: SparseVector) -> float:
    """Plain inner product of the two weight vectors."""
    return query.dot(document)


def cosine_similarity(query: SparseVector, document: SparseVector) -> float:
    """Cosine of the angle between the vectors; 0 when either is empty."""
    denom = query.norm() * document.norm()
    if denom == 0.0:
        return 0.0
    return query.dot(document) / denom
