"""Similarity functions between sparse term vectors.

The paper's global similarity function is the Cosine function (dot product of
the two vectors divided by the product of their norms), which keeps every
similarity in [0, 1] for non-negative weights — the reason no threshold above
1 is ever needed in the evaluation (Section 4).
"""

from __future__ import annotations

from repro.vsm.vector import SparseVector

__all__ = ["dot_similarity", "cosine_similarity"]

# Norm products inside this range divide directly (the legacy arithmetic,
# unchanged bit-for-bit); outside it the cross products or the quotient
# would drift through subnormals, so the Cosine is taken on unit vectors.
_COSINE_SAFE_LO = 1e-140
_COSINE_SAFE_HI = 1e140


def dot_similarity(query: SparseVector, document: SparseVector) -> float:
    """Plain inner product of the two weight vectors."""
    return query.dot(document)


def cosine_similarity(query: SparseVector, document: SparseVector) -> float:
    """Cosine of the angle between the vectors; 0 when either is empty.

    Vectors with extreme weights (norm product outside the normal double
    range, where the direct quotient loses scale invariance to subnormal
    underflow) are normalized first and their unit vectors dotted.
    """
    query_norm = query.norm()
    document_norm = document.norm()
    if query_norm == 0.0 or document_norm == 0.0:
        return 0.0
    denom = query_norm * document_norm
    if _COSINE_SAFE_LO <= denom <= _COSINE_SAFE_HI:
        return query.dot(document) / denom
    return query.normalized().dot(document.normalized())
