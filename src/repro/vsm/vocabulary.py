"""Bidirectional term <-> integer-id mapping.

Each collection owns its own :class:`Vocabulary` — just as each local search
engine in the paper's architecture owns its own index — so term ids are only
meaningful within one collection.  Cross-engine components (representatives,
the metasearch broker) always speak in term *strings*.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["Vocabulary"]


class Vocabulary:
    """Append-only mapping of term strings to dense ids ``0..len-1``."""

    def __init__(self, terms: Optional[Iterable[str]] = None):
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        if terms is not None:
            for term in terms:
                self.add(term)

    def add(self, term: str) -> int:
        """Return the id of ``term``, assigning a fresh one if unseen."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._id_to_term)
            self._term_to_id[term] = term_id
            self._id_to_term.append(term)
        return term_id

    def id_of(self, term: str) -> Optional[int]:
        """The id of ``term``, or None if the term is out of vocabulary."""
        return self._term_to_id.get(term)

    def term_of(self, term_id: int) -> str:
        """The term string for ``term_id``; raises IndexError if unknown."""
        return self._id_to_term[term_id]

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)

    def __repr__(self) -> str:
        return f"Vocabulary({len(self)} terms)"
