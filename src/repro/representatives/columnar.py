"""Columnar representatives and the fleet-level store.

The dict-of-dataclasses :class:`~repro.representatives.DatabaseRepresentative`
is convenient for one engine but ruinous at fleet scale: every term costs a
dict slot, a frozen dataclass, and four boxed floats (~330 bytes measured),
and every estimate walks it term-by-term in Python.  This module holds the
same statistics in parallel numpy arrays keyed by a *shared broker
vocabulary*, in three layers:

* :class:`BrokerVocabulary` — interns term strings into dense integer ids
  shared by every engine the broker knows.  Ids are append-only, so an id
  handed out once stays valid for the life of the broker.
* :class:`ColumnarRepresentative` — one engine's representative as parallel
  sorted arrays (``term_ids``, ``p``, ``w``, ``sigma``, ``mw``), convertible
  losslessly to and from :class:`DatabaseRepresentative` and persistable as
  a binary ``.npz`` (memory-mappable member arrays, vs. today's JSON).
* :class:`FleetRepresentativeStore` — the broker-side fleet matrix: all
  engines' statistics packed into one term-major compressed sparse layout,
  so a query gathers an ``(engines, terms)`` block of statistics with a few
  array reads instead of ``engines x terms`` dict lookups.

The packed layout exploits the Zipf reality of representatives: in measured
builds ~60% of (engine, term) entries are singleton terms whose ``sigma``
is exactly ``+0.0`` and whose ``mw`` equals ``w`` bit-for-bit.  The store
therefore keeps only ``p`` and ``w`` densely and spills ``sigma``/``mw``
to a sparse side channel for the minority of entries that deviate from the
per-engine default — cutting resident bytes per entry well below the dict
representation while reconstructing every :class:`TermStats` bit-exactly.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.representatives.representative import DatabaseRepresentative
from repro.representatives.term_stats import TermStats

__all__ = [
    "BrokerVocabulary",
    "ColumnarRepresentative",
    "FleetRepresentativeRef",
    "FleetRepresentativeStore",
    "partition_round_robin",
]


def partition_round_robin(items: Sequence, n_shards: int) -> List[list]:
    """Deal ``items`` into ``n_shards`` slices round-robin, preserving
    relative order inside each slice (slice ``i`` gets ``items[i::n]``).

    The dealing order is deterministic, so shard workers and the
    coordinator agree on slice membership from the item list alone; empty
    slices are legal (more shards than items).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
    items = list(items)
    return [items[i::n_shards] for i in range(n_shards)]

#: .npz member schema version for :meth:`ColumnarRepresentative.save_npz`.
_FORMAT_VERSION = 1

#: Sentinel id for terms a vocabulary has never seen.
UNKNOWN_TERM = -1


def _encode_terms(terms: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Terms as one UTF-8 blob plus int64 offsets (no object arrays, so
    ``allow_pickle=False`` round-trips)."""
    encoded = [t.encode("utf-8") for t in terms]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    for i, raw in enumerate(encoded):
        offsets[i + 1] = offsets[i] + len(raw)
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
    return blob, offsets


def _decode_terms(blob: np.ndarray, offsets: np.ndarray) -> List[str]:
    raw = blob.tobytes()
    bounds = offsets.tolist()
    return [
        raw[bounds[i] : bounds[i + 1]].decode("utf-8")
        for i in range(len(bounds) - 1)
    ]


class BrokerVocabulary:
    """Append-only intern table mapping term strings to dense ids.

    One instance is shared by every engine of a fleet (and by the broker's
    term-polynomial cache), so equal terms across engines collapse to the
    same integer and fleet matrices can be indexed by term id.
    """

    def __init__(self):
        self._ids: Dict[str, int] = {}
        self._terms: List[str] = []

    def intern(self, term: str) -> int:
        """The term's id, allocating the next dense id on first sight."""
        tid = self._ids.get(term)
        if tid is None:
            tid = len(self._terms)
            self._ids[term] = tid
            self._terms.append(term)
        return tid

    def intern_many(self, terms: Sequence[str]) -> np.ndarray:
        return np.array([self.intern(t) for t in terms], dtype=np.int64)

    def id_of(self, term: str) -> int:
        """The term's id, or :data:`UNKNOWN_TERM` when never interned."""
        return self._ids.get(term, UNKNOWN_TERM)

    def ids_of(self, terms: Sequence[str]) -> np.ndarray:
        """Ids for ``terms`` without interning; unknown terms map to
        :data:`UNKNOWN_TERM` (so stray query vocabulary cannot grow the
        table)."""
        get = self._ids.get
        return np.array(
            [get(t, UNKNOWN_TERM) for t in terms], dtype=np.int64
        )

    def term_of(self, term_id: int) -> str:
        return self._terms[term_id]

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: str) -> bool:
        return term in self._ids

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of the intern table (strings, dict
        slots, list slots) — reported separately from the packed statistics
        because the vocabulary is shared fleet-wide."""
        import sys

        total = sys.getsizeof(self._ids) + sys.getsizeof(self._terms)
        for term in self._terms:
            total += sys.getsizeof(term) + 28  # str + boxed id
        return total

    def __repr__(self) -> str:
        return f"BrokerVocabulary(terms={len(self._terms)})"


class ColumnarRepresentative:
    """One engine's representative as parallel sorted numpy arrays.

    The arrays are parallel over the engine's distinct terms, sorted by
    ascending ``term_ids`` (ids from the attached vocabulary):

    * ``term_ids`` — int64 vocabulary ids, strictly ascending;
    * ``p`` / ``w`` / ``sigma`` — float64 probability, mean weight, std;
    * ``mw`` — float64 maximum weight, ``NaN`` where the representative
      withholds it (the triplet form).

    Conversion to and from :class:`DatabaseRepresentative` is lossless and
    bit-exact; the duck API (``get``/``items``/``n_documents``/...) matches
    the dict representative's, so estimators accept either.
    """

    __slots__ = ("name", "n_documents", "vocab", "term_ids", "p", "w", "sigma", "mw")

    def __init__(
        self,
        name: str,
        n_documents: int,
        vocab: BrokerVocabulary,
        term_ids: np.ndarray,
        p: np.ndarray,
        w: np.ndarray,
        sigma: np.ndarray,
        mw: np.ndarray,
    ):
        if n_documents < 0:
            raise ValueError(f"n_documents must be >= 0, got {n_documents!r}")
        term_ids = np.asarray(term_ids, dtype=np.int64)
        arrays = [np.asarray(a, dtype=np.float64) for a in (p, w, sigma, mw)]
        for arr in arrays:
            if arr.shape != term_ids.shape or arr.ndim != 1:
                raise ValueError("statistic arrays must parallel term_ids")
        if term_ids.size > 1 and not np.all(np.diff(term_ids) > 0):
            raise ValueError("term_ids must be strictly ascending")
        self.name = name
        self.n_documents = int(n_documents)
        self.vocab = vocab
        self.term_ids = term_ids
        self.p, self.w, self.sigma, self.mw = arrays
        for arr in (self.term_ids, self.p, self.w, self.sigma, self.mw):
            arr.setflags(write=False)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_representative(
        cls,
        representative: DatabaseRepresentative,
        vocab: Optional[BrokerVocabulary] = None,
    ) -> "ColumnarRepresentative":
        """Intern the dict representative's terms and columnarize it."""
        vocab = vocab if vocab is not None else BrokerVocabulary()
        terms = []
        stats_rows = []
        for term, stats in representative.items():
            terms.append(term)
            stats_rows.append(stats)
        ids = vocab.intern_many(terms)
        order = np.argsort(ids, kind="stable")
        ids = ids[order]
        n = len(stats_rows)
        p = np.empty(n)
        w = np.empty(n)
        sigma = np.empty(n)
        mw = np.empty(n)
        for out_i, src_i in enumerate(order.tolist()):
            stats = stats_rows[src_i]
            p[out_i] = stats.probability
            w[out_i] = stats.mean
            sigma[out_i] = stats.std
            mw[out_i] = (
                stats.max_weight if stats.max_weight is not None else np.nan
            )
        return cls(
            name=representative.name,
            n_documents=representative.n_documents,
            vocab=vocab,
            term_ids=ids,
            p=p,
            w=w,
            sigma=sigma,
            mw=mw,
        )

    def to_representative(self) -> DatabaseRepresentative:
        """The equivalent dict representative (canonical term-id order)."""
        term_stats = {}
        mw_list = self.mw.tolist()
        for i, tid in enumerate(self.term_ids.tolist()):
            raw_mw = mw_list[i]
            term_stats[self.vocab.term_of(tid)] = TermStats(
                probability=float(self.p[i]),
                mean=float(self.w[i]),
                std=float(self.sigma[i]),
                max_weight=None if raw_mw != raw_mw else raw_mw,
            )
        return DatabaseRepresentative(
            name=self.name, n_documents=self.n_documents, term_stats=term_stats
        )

    # -- duck API (DatabaseRepresentative-compatible) ------------------------

    def _index_of(self, term: str) -> int:
        tid = self.vocab.id_of(term)
        if tid == UNKNOWN_TERM:
            return -1
        i = int(np.searchsorted(self.term_ids, tid))
        if i < self.term_ids.size and self.term_ids[i] == tid:
            return i
        return -1

    def _stats_at(self, i: int) -> TermStats:
        raw_mw = float(self.mw[i])
        return TermStats(
            probability=float(self.p[i]),
            mean=float(self.w[i]),
            std=float(self.sigma[i]),
            max_weight=None if raw_mw != raw_mw else raw_mw,
        )

    def get(self, term: str) -> Optional[TermStats]:
        i = self._index_of(term)
        return self._stats_at(i) if i >= 0 else None

    def __contains__(self, term: str) -> bool:
        return self._index_of(term) >= 0

    def __len__(self) -> int:
        return int(self.term_ids.size)

    @property
    def n_terms(self) -> int:
        return int(self.term_ids.size)

    def items(self) -> Iterator[Tuple[str, TermStats]]:
        for i, tid in enumerate(self.term_ids.tolist()):
            yield self.vocab.term_of(tid), self._stats_at(i)

    @property
    def has_max_weights(self) -> bool:
        return not bool(np.isnan(self.mw).any())

    def document_frequency(self, term: str) -> float:
        i = self._index_of(term)
        return float(self.p[i]) * self.n_documents if i >= 0 else 0.0

    def as_triplets(self) -> "ColumnarRepresentative":
        """The triplet view: ``mw`` withheld for every term."""
        return ColumnarRepresentative(
            name=self.name,
            n_documents=self.n_documents,
            vocab=self.vocab,
            term_ids=self.term_ids,
            p=self.p,
            w=self.w,
            sigma=self.sigma,
            mw=np.full(self.mw.shape, np.nan),
        )

    @property
    def nbytes(self) -> int:
        """Resident bytes of the statistic arrays (the vocabulary is shared
        and accounted separately)."""
        return sum(
            a.nbytes for a in (self.term_ids, self.p, self.w, self.sigma, self.mw)
        )

    # -- persistence ---------------------------------------------------------

    def save_npz(self, path: Union[str, Path, io.IOBase]) -> None:
        """Write the representative as an *uncompressed* ``.npz``.

        Uncompressed members keep ``np.load(..., mmap_mode)``-style lazy
        reads cheap and make the statistics arrays page-mappable; terms go
        as a UTF-8 blob plus offsets so ``allow_pickle=False`` suffices.
        """
        terms = [self.vocab.term_of(t) for t in self.term_ids.tolist()]
        blob, offsets = _encode_terms(terms)
        np.savez(
            path,
            format_version=np.int64(_FORMAT_VERSION),
            kind=np.frombuffer(b"columnar-representative", dtype=np.uint8),
            name=np.frombuffer(self.name.encode("utf-8"), dtype=np.uint8),
            n_documents=np.int64(self.n_documents),
            term_blob=blob,
            term_offsets=offsets,
            p=self.p,
            w=self.w,
            sigma=self.sigma,
            mw=self.mw,
        )

    @classmethod
    def load_npz(
        cls,
        path: Union[str, Path, io.IOBase],
        vocab: Optional[BrokerVocabulary] = None,
    ) -> "ColumnarRepresentative":
        """Read a representative written by :meth:`save_npz`, interning its
        terms into ``vocab`` (a fresh private vocabulary when omitted)."""
        with np.load(path, allow_pickle=False) as data:
            version = int(data["format_version"])
            if version != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported representative format version {version}"
                )
            kind = data["kind"].tobytes().decode("utf-8")
            if kind != "columnar-representative":
                raise ValueError(f"not a columnar representative: {kind!r}")
            name = data["name"].tobytes().decode("utf-8")
            n_documents = int(data["n_documents"])
            terms = _decode_terms(data["term_blob"], data["term_offsets"])
            p = data["p"].copy()
            w = data["w"].copy()
            sigma = data["sigma"].copy()
            mw = data["mw"].copy()
        vocab = vocab if vocab is not None else BrokerVocabulary()
        ids = vocab.intern_many(terms)
        order = np.argsort(ids, kind="stable")
        return cls(
            name=name,
            n_documents=n_documents,
            vocab=vocab,
            term_ids=ids[order],
            p=p[order],
            w=w[order],
            sigma=sigma[order],
            mw=mw[order],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarRepresentative):
            return NotImplemented
        return (
            self.name == other.name
            and self.n_documents == other.n_documents
            and self.to_representative() == other.to_representative()
        )

    def __repr__(self) -> str:
        return (
            f"ColumnarRepresentative({self.name!r}, docs={self.n_documents}, "
            f"terms={self.n_terms}, max_weights={self.has_max_weights})"
        )


def _smallest_uint(max_value: int) -> np.dtype:
    for dtype in (np.uint8, np.uint16, np.uint32):
        if max_value <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    return np.dtype(np.int64)


class _PackedFleet:
    """The immutable packed form of a fleet: term-major compressed rows.

    For vocabulary ids ``0..V-1`` (``V`` frozen at pack time), the entries
    of term ``t`` live at ``starts[t]:starts[t+1]`` of the parallel entry
    arrays, with ``engine_idx`` ascending inside each slice:

    * ``engine_idx`` — smallest unsigned dtype that fits the fleet width;
    * ``p`` / ``w`` — dense float64 per entry;
    * ``extra_pos`` (sorted) + ``sigma_extra`` / ``mw_extra`` — the sparse
      side channel for entries whose ``sigma`` is not ``+0.0`` or whose
      ``mw`` differs from the engine's default (``w`` itself for engines
      publishing max weights, absent otherwise).  Everything not in the
      side channel reconstructs as ``sigma = +0.0`` and the default ``mw``
      — bit-identical to the source statistics by construction.
    """

    __slots__ = (
        "vocab_size",
        "starts",
        "engine_idx",
        "p",
        "w",
        "extra_pos",
        "sigma_extra",
        "mw_extra",
        "engine_rows",
    )

    def __init__(self, vocab_size, starts, engine_idx, p, w,
                 extra_pos, sigma_extra, mw_extra, engine_rows):
        self.vocab_size = vocab_size
        self.starts = starts
        self.engine_idx = engine_idx
        self.p = p
        self.w = w
        self.extra_pos = extra_pos
        self.sigma_extra = sigma_extra
        self.mw_extra = mw_extra
        #: per-engine row ranges are not stored; engine_rows counts entries.
        self.engine_rows = engine_rows

    @property
    def nbytes(self) -> int:
        return (
            self.starts.nbytes
            + self.engine_idx.nbytes
            + self.p.nbytes
            + self.w.nbytes
            + self.extra_pos.nbytes
            + self.sigma_extra.nbytes
            + self.mw_extra.nbytes
        )


class _EngineColumns:
    """Per-engine dense columns held only until the next pack."""

    __slots__ = ("name", "n_documents", "term_ids", "p", "w", "sigma", "mw",
                 "has_max_weights", "binary_mean_w", "n_terms")

    def __init__(self, name, n_documents, term_ids, p, w, sigma, mw,
                 has_max_weights, binary_mean_w):
        self.name = name
        self.n_documents = n_documents
        self.term_ids = term_ids
        self.p = p
        self.w = w
        self.sigma = sigma
        self.mw = mw
        self.has_max_weights = has_max_weights
        self.binary_mean_w = binary_mean_w
        self.n_terms = int(term_ids.size)


class FleetRepresentativeStore:
    """Every engine's representative, packed into fleet-wide term-major
    arrays keyed by a shared :class:`BrokerVocabulary`.

    ``add`` accepts dict or columnar representatives; the dense per-engine
    columns are folded into the packed layout lazily (on first read after a
    change) and then dropped, so resident memory is the compressed layout
    plus small per-engine metadata.  :meth:`gather` returns the
    ``(engines, query terms)`` statistics block the vectorized estimators
    consume; :meth:`materialize` reconstructs a single engine's
    representative bit-exactly on demand.
    """

    def __init__(self, vocab: Optional[BrokerVocabulary] = None):
        self.vocab = vocab if vocab is not None else BrokerVocabulary()
        self._names: List[str] = []
        self._by_name: Dict[str, int] = {}
        self._n_documents: List[int] = []
        self._has_mw_default: List[bool] = []
        self._binary_mean_w: List[float] = []
        self._n_terms: List[int] = []
        self._pending: Dict[int, _EngineColumns] = {}
        self._packed: Optional[_PackedFleet] = None
        # Derived per-engine arrays served on every grid call; rebuilt
        # lazily after a registration change instead of per read.
        self._docs_array: Optional[np.ndarray] = None
        self._mean_w_array: Optional[np.ndarray] = None

    # -- registration --------------------------------------------------------

    def _columns_from(self, representative) -> _EngineColumns:
        if isinstance(representative, ColumnarRepresentative):
            source = representative
            if source.vocab is not self.vocab:
                # Re-intern into the fleet vocabulary.
                terms = [source.vocab.term_of(t) for t in source.term_ids.tolist()]
                ids = self.vocab.intern_many(terms)
                order = np.argsort(ids, kind="stable")
                cols = (ids[order], source.p[order], source.w[order],
                        source.sigma[order], source.mw[order])
            else:
                cols = (source.term_ids, source.p, source.w, source.sigma,
                        source.mw)
            w = cols[2]
            mean_w = float(np.mean(w)) if w.size else 0.0
            return _EngineColumns(
                name=source.name,
                n_documents=source.n_documents,
                term_ids=cols[0], p=cols[1], w=cols[2],
                sigma=cols[3], mw=cols[4],
                has_max_weights=source.has_max_weights,
                binary_mean_w=mean_w,
            )
        # Dict representative: the binary estimator's database weight is
        # np.mean over *iteration order*, so compute it here, before the
        # order is lost to sorting, to stay bit-identical to the scalar path.
        means = [stats.mean for __, stats in representative.items()]
        binary_mean_w = float(np.mean(means)) if means else 0.0
        columnar = ColumnarRepresentative.from_representative(
            representative, self.vocab
        )
        return _EngineColumns(
            name=columnar.name,
            n_documents=columnar.n_documents,
            term_ids=columnar.term_ids, p=columnar.p, w=columnar.w,
            sigma=columnar.sigma, mw=columnar.mw,
            has_max_weights=columnar.has_max_weights,
            binary_mean_w=binary_mean_w,
        )

    def add(
        self,
        representative: Union[DatabaseRepresentative, ColumnarRepresentative],
    ) -> "FleetRepresentativeRef":
        """Add or replace an engine's representative (keyed by its name).

        Returns:
            A lightweight :class:`FleetRepresentativeRef` reading through
            this store — hand it to anything expecting a representative.
        """
        columns = self._columns_from(representative)
        name = columns.name
        index = self._by_name.get(name)
        if index is None:
            index = len(self._names)
            self._names.append(name)
            self._by_name[name] = index
            self._n_documents.append(columns.n_documents)
            self._has_mw_default.append(columns.has_max_weights)
            self._binary_mean_w.append(columns.binary_mean_w)
            self._n_terms.append(columns.n_terms)
        else:
            self._n_documents[index] = columns.n_documents
            self._has_mw_default[index] = columns.has_max_weights
            self._binary_mean_w[index] = columns.binary_mean_w
            self._n_terms[index] = columns.n_terms
        self._pending[index] = columns
        self._docs_array = None
        self._mean_w_array = None
        return FleetRepresentativeRef(name, self)

    def apply_delta(self, delta) -> None:
        """Apply a :class:`~repro.fleet.delta.RepresentativeDelta` in place.

        The engine's dense columns are reconstructed (bit-exactly, from the
        pending or packed layout), edited term-by-term — deletions drop
        rows, ``set`` records overwrite or insert rows in sorted term-id
        order, untouched rows rescale their probability exactly via the
        integer-df recovery — and parked as the engine's pending columns;
        the term-major CSR layout re-packs lazily on the next read, which
        is the store's amortized re-packing path.  The engine's binary
        mean weight is recomputed over canonical sorted-term-string order,
        matching what registering the engine's fresh canonical snapshot
        would have produced.
        """
        index = self._by_name.get(delta.name)
        if index is None:
            raise KeyError(delta.name)
        if self._n_documents[index] != delta.from_n_documents:
            raise ValueError(
                f"delta expects a base of {delta.from_n_documents} "
                f"documents, engine {delta.name!r} holds "
                f"{self._n_documents[index]}"
            )
        if self._packed is None and index not in self._pending:
            self._ensure_packed()
        cols = self._columns_at(index)
        n_old = delta.from_n_documents
        n_new = delta.n_documents

        set_records = [r for r in delta.records if r.op == "set"]
        set_ids = self.vocab.intern_many([r.term for r in set_records])
        touched = set(set_ids.tolist())
        for record in delta.records:
            if record.op == "del":
                tid = self.vocab.id_of(record.term)
                if tid != UNKNOWN_TERM:
                    touched.add(tid)

        if touched:
            touched_arr = np.array(sorted(touched), dtype=np.int64)
            keep = ~np.isin(cols.term_ids, touched_arr)
        else:
            keep = np.ones(cols.term_ids.shape, dtype=bool)
        kept_ids = cols.term_ids[keep]
        kept_p = cols.p[keep]
        if n_old != n_new:
            # df = rint(p * n_old) is exact (df is an integer < 2**51 and p
            # was computed as df / n_old in float64), so df / n_new is the
            # very division a fresh snapshot performs — bit-identical.
            kept_p = (
                np.rint(kept_p * n_old) / n_new
                if n_new
                else np.zeros_like(kept_p)
            )
        kept_w = cols.w[keep]
        kept_sigma = cols.sigma[keep]
        kept_mw = cols.mw[keep]

        n_sets = len(set_records)
        new_ids = np.empty(n_sets, dtype=np.int64)
        new_p = np.empty(n_sets)
        new_w = np.empty(n_sets)
        new_sigma = np.empty(n_sets)
        new_mw = np.empty(n_sets)
        for i, record in enumerate(set_records):
            stats = record.stats
            new_ids[i] = set_ids[i]
            new_p[i] = stats.probability
            new_w[i] = stats.mean
            new_sigma[i] = stats.std
            new_mw[i] = (
                stats.max_weight if stats.max_weight is not None else np.nan
            )

        merged_ids = np.concatenate([kept_ids, new_ids])
        order = np.argsort(merged_ids, kind="stable")
        merged_ids = merged_ids[order]
        merged_p = np.concatenate([kept_p, new_p])[order]
        merged_w = np.concatenate([kept_w, new_w])[order]
        merged_sigma = np.concatenate([kept_sigma, new_sigma])[order]
        merged_mw = np.concatenate([kept_mw, new_mw])[order]
        if n_new == 0 and merged_ids.size:
            raise ValueError("delta empties the database but terms survive")

        # The binary baseline's database weight reduces over the dict
        # snapshot's iteration order — canonical sorted-term-string order
        # on the live path — so recompute it in exactly that order.
        terms = [self.vocab.term_of(t) for t in merged_ids.tolist()]
        by_string = sorted(range(len(terms)), key=terms.__getitem__)
        means = [float(merged_w[i]) for i in by_string]
        binary_mean_w = float(np.mean(means)) if means else 0.0

        columns = _EngineColumns(
            name=delta.name,
            n_documents=n_new,
            term_ids=merged_ids,
            p=merged_p,
            w=merged_w,
            sigma=merged_sigma,
            mw=merged_mw,
            has_max_weights=not bool(np.isnan(merged_mw).any()),
            binary_mean_w=binary_mean_w,
        )
        self._n_documents[index] = n_new
        self._has_mw_default[index] = columns.has_max_weights
        self._binary_mean_w[index] = binary_mean_w
        self._n_terms[index] = columns.n_terms
        self._pending[index] = columns
        self._docs_array = None
        self._mean_w_array = None

    def remove(self, name: str) -> None:
        """Forget an engine (its packed entries are dropped on next pack)."""
        index = self._by_name.pop(name, None)
        if index is None:
            raise KeyError(name)
        # Rebuild dense columns for every other engine, then repack lazily.
        survivors = [
            self._pending.get(i) or self._columns_at(i)
            for i in range(len(self._names))
            if i != index
        ]
        self._names.pop(index)
        self._n_documents.pop(index)
        self._has_mw_default.pop(index)
        self._binary_mean_w.pop(index)
        self._n_terms.pop(index)
        self._by_name = {n: i for i, n in enumerate(self._names)}
        self._pending = {self._by_name[c.name]: c for c in survivors}
        self._packed = None
        self._docs_array = None
        self._mean_w_array = None

    # -- packing -------------------------------------------------------------

    def _columns_at(self, index: int) -> _EngineColumns:
        """Dense columns for one engine, reconstructed from the packed
        layout (used for materialize/repack; bit-exact)."""
        pending = self._pending.get(index)
        if pending is not None:
            return pending
        packed = self._packed
        if packed is None:
            raise KeyError(index)
        entry_mask = packed.engine_idx == index
        positions = np.flatnonzero(entry_mask)
        term_ids = (
            np.searchsorted(packed.starts, positions, side="right") - 1
        ).astype(np.int64)
        p = packed.p[positions]
        w = packed.w[positions]
        sigma = np.zeros(positions.size)
        if self._has_mw_default[index]:
            mw = w.copy()
        else:
            mw = np.full(positions.size, np.nan)
        if packed.extra_pos.size:
            where = np.searchsorted(packed.extra_pos, positions)
            where = np.clip(where, 0, packed.extra_pos.size - 1)
            hit = packed.extra_pos[where] == positions
            sigma[hit] = packed.sigma_extra[where[hit]]
            mw[hit] = packed.mw_extra[where[hit]]
        return _EngineColumns(
            name=self._names[index],
            n_documents=self._n_documents[index],
            term_ids=term_ids, p=p, w=w, sigma=sigma, mw=mw,
            has_max_weights=self._has_mw_default[index],
            binary_mean_w=self._binary_mean_w[index],
        )

    def _pack(self) -> _PackedFleet:
        """Fold every engine's columns into the term-major layout."""
        n_engines = len(self._names)
        all_columns = [self._columns_at(i) for i in range(n_engines)]
        vocab_size = len(self.vocab)
        total = sum(c.n_terms for c in all_columns)
        term_of_entry = np.empty(total, dtype=np.int64)
        engine_of_entry = np.empty(total, dtype=np.int64)
        p = np.empty(total)
        w = np.empty(total)
        sigma = np.empty(total)
        mw = np.empty(total)
        cursor = 0
        for i, cols in enumerate(all_columns):
            n = cols.n_terms
            sl = slice(cursor, cursor + n)
            term_of_entry[sl] = cols.term_ids
            engine_of_entry[sl] = i
            p[sl] = cols.p
            w[sl] = cols.w
            sigma[sl] = cols.sigma
            mw[sl] = cols.mw
            cursor += n
        order = np.lexsort((engine_of_entry, term_of_entry))
        term_of_entry = term_of_entry[order]
        engine_of_entry = engine_of_entry[order]
        p = p[order]
        w = w[order]
        sigma = sigma[order]
        mw = mw[order]

        starts = np.zeros(vocab_size + 1, dtype=np.int64)
        counts = np.bincount(term_of_entry, minlength=vocab_size)
        np.cumsum(counts, out=starts[1:])

        # Side channel: entries whose sigma is not +0.0 bit-for-bit, or
        # whose mw differs from the engine default (w for quadruplet
        # engines, absent/NaN for triplet engines).
        sigma_nonzero = sigma.view(np.int64) != 0
        has_default = np.asarray(self._has_mw_default, dtype=bool)
        entry_default_is_w = (
            has_default[engine_of_entry] if n_engines else
            np.zeros(0, dtype=bool)
        )
        mw_is_nan = np.isnan(mw)
        mw_nondefault = np.where(
            entry_default_is_w,
            mw_is_nan | (mw.view(np.int64) != w.view(np.int64)),
            ~mw_is_nan,
        )
        extra = sigma_nonzero | mw_nondefault
        extra_pos = np.flatnonzero(extra).astype(
            np.int32 if total <= np.iinfo(np.int32).max else np.int64
        )
        packed = _PackedFleet(
            vocab_size=vocab_size,
            starts=starts,
            engine_idx=engine_of_entry.astype(
                _smallest_uint(max(n_engines - 1, 0))
            ),
            p=p,
            w=w,
            extra_pos=extra_pos,
            sigma_extra=sigma[extra],
            mw_extra=mw[extra],
            engine_rows=np.bincount(engine_of_entry, minlength=n_engines),
        )
        return packed

    def _ensure_packed(self) -> _PackedFleet:
        if self._packed is None or self._pending:
            self._packed = self._pack()
            self._pending.clear()
        return self._packed

    # -- reads ---------------------------------------------------------------

    @property
    def engine_names(self) -> List[str]:
        """Engine names in registration (= row) order."""
        return list(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def index_of(self, name: str) -> int:
        return self._by_name[name]

    @property
    def n_documents(self) -> np.ndarray:
        if self._docs_array is None:
            arr = np.asarray(self._n_documents, dtype=np.int64)
            arr.flags.writeable = False
            self._docs_array = arr
        return self._docs_array

    @property
    def binary_mean_w(self) -> np.ndarray:
        """Per-engine mean of mean term weights (the binary-independence
        estimator's database weight), precomputed at add time over the
        source representative's own iteration order."""
        if self._mean_w_array is None:
            arr = np.asarray(self._binary_mean_w, dtype=np.float64)
            arr.flags.writeable = False
            self._mean_w_array = arr
        return self._mean_w_array

    def has_max_weights(self, name: str) -> bool:
        return self._has_mw_default[self._by_name[name]]

    def n_terms_of(self, name: str) -> int:
        return self._n_terms[self._by_name[name]]

    def gather(
        self, term_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The fleet's statistics for ``term_ids`` as ``(E, Q)`` arrays.

        Returns:
            ``(p, w, sigma, mw)``; rows follow :attr:`engine_names` order.
            Terms an engine lacks (or ids outside the packed vocabulary,
            including :data:`UNKNOWN_TERM`) read as ``p = 0`` — exactly the
            "unmatched" condition the estimators test — with ``sigma = 0``
            and ``mw = NaN``.
        """
        packed = self._ensure_packed()
        n_engines = len(self._names)
        term_ids = np.asarray(term_ids, dtype=np.int64)
        n_terms = term_ids.size
        p = np.zeros((n_engines, n_terms))
        w = np.zeros((n_engines, n_terms))
        sigma = np.zeros((n_engines, n_terms))
        mw = np.full((n_engines, n_terms), np.nan)
        has_default = np.asarray(self._has_mw_default, dtype=bool)
        for j, tid in enumerate(term_ids.tolist()):
            if tid < 0 or tid >= packed.vocab_size:
                continue
            lo = int(packed.starts[tid])
            hi = int(packed.starts[tid + 1])
            if lo == hi:
                continue
            rows = packed.engine_idx[lo:hi]
            p[rows, j] = packed.p[lo:hi]
            w_col = packed.w[lo:hi]
            w[rows, j] = w_col
            mw[rows, j] = np.where(has_default[rows], w_col, np.nan)
            if packed.extra_pos.size:
                first = int(np.searchsorted(packed.extra_pos, lo))
                last = int(np.searchsorted(packed.extra_pos, hi))
                if last > first:
                    positions = packed.extra_pos[first:last]
                    local = positions - lo
                    sigma[rows[local], j] = packed.sigma_extra[first:last]
                    mw[rows[local], j] = packed.mw_extra[first:last]
        return p, w, sigma, mw

    def term_stats(self, name: str, term: str) -> Optional[TermStats]:
        """One engine's stats for one term, reconstructed bit-exactly."""
        index = self._by_name[name]
        pending = self._pending.get(index)
        if pending is not None:
            tid = self.vocab.id_of(term)
            if tid == UNKNOWN_TERM:
                return None
            i = int(np.searchsorted(pending.term_ids, tid))
            if i >= pending.term_ids.size or pending.term_ids[i] != tid:
                return None
            raw_mw = float(pending.mw[i])
            return TermStats(
                probability=float(pending.p[i]),
                mean=float(pending.w[i]),
                std=float(pending.sigma[i]),
                max_weight=None if raw_mw != raw_mw else raw_mw,
            )
        packed = self._ensure_packed()
        tid = self.vocab.id_of(term)
        if tid == UNKNOWN_TERM or tid >= packed.vocab_size:
            return None
        lo = int(packed.starts[tid])
        hi = int(packed.starts[tid + 1])
        rows = packed.engine_idx[lo:hi]
        i = int(np.searchsorted(rows, index))
        if i >= rows.size or rows[i] != index:
            return None
        entry = lo + i
        std = 0.0
        if self._has_mw_default[index]:
            raw_mw: float = float(packed.w[entry])
        else:
            raw_mw = float("nan")
        if packed.extra_pos.size:
            at = int(np.searchsorted(packed.extra_pos, entry))
            if at < packed.extra_pos.size and packed.extra_pos[at] == entry:
                std = float(packed.sigma_extra[at])
                raw_mw = float(packed.mw_extra[at])
        return TermStats(
            probability=float(packed.p[entry]),
            mean=float(packed.w[entry]),
            std=std,
            max_weight=None if raw_mw != raw_mw else raw_mw,
        )

    def materialize(self, name: str) -> DatabaseRepresentative:
        """Reconstruct one engine's dict representative (bit-exact, in
        canonical term-id order).  O(total fleet entries) — a diagnostics
        and interop path, not a hot one."""
        self._ensure_packed()
        columns = self._columns_at(self._by_name[name])
        term_stats = {}
        mw_list = columns.mw.tolist()
        for i, tid in enumerate(columns.term_ids.tolist()):
            raw_mw = mw_list[i]
            term_stats[self.vocab.term_of(tid)] = TermStats(
                probability=float(columns.p[i]),
                mean=float(columns.w[i]),
                std=float(columns.sigma[i]),
                max_weight=None if raw_mw != raw_mw else raw_mw,
            )
        return DatabaseRepresentative(
            name=name,
            n_documents=columns.n_documents,
            term_stats=term_stats,
        )

    # -- slicing and persistence ---------------------------------------------

    def columnar_of(self, name: str) -> ColumnarRepresentative:
        """One engine's representative as a :class:`ColumnarRepresentative`
        sharing this store's vocabulary (bit-exact reconstruction)."""
        self._ensure_packed()
        cols = self._columns_at(self._by_name[name])
        return ColumnarRepresentative(
            name=cols.name,
            n_documents=cols.n_documents,
            vocab=self.vocab,
            term_ids=cols.term_ids,
            p=cols.p,
            w=cols.w,
            sigma=cols.sigma,
            mw=cols.mw,
        )

    def partition(self, n_shards: int) -> List[List[str]]:
        """Engine names dealt round-robin (registration order) into
        ``n_shards`` slices — the canonical shard assignment."""
        return partition_round_robin(self._names, n_shards)

    def slice_engines(
        self,
        names: Sequence[str],
        vocab: Optional[BrokerVocabulary] = None,
    ) -> "FleetRepresentativeStore":
        """A new store holding only ``names`` (a shard's slice).

        The slice gets its own (fresh or supplied) vocabulary; statistics
        reconstruct bit-exactly, including each engine's registration-time
        binary mean weight, which is copied rather than recomputed —
        ``np.mean`` over the sorted column order can differ in the last
        ulp from the mean over the source representative's iteration
        order, and shard estimates must match the fleet-wide broker
        bit-for-bit.
        """
        store = FleetRepresentativeStore(vocab)
        for name in names:
            source_index = self._by_name[name]
            store.add(self.columnar_of(name))
            store._binary_mean_w[store._by_name[name]] = self._binary_mean_w[
                source_index
            ]
        store._mean_w_array = None
        return store

    def save_npz(self, path: Union[str, Path, io.IOBase]) -> None:
        """Write the whole fleet (or slice) as one uncompressed ``.npz``.

        Entries are concatenated engine-major with per-engine offsets;
        term strings are stored once (the union of the slice's terms) and
        referenced by local index, so shared vocabulary across engines is
        not duplicated.  ``binary_mean_w`` rides along for the same
        bit-exactness reason as in :meth:`slice_engines`.
        """
        self._ensure_packed()
        columns = [self._columns_at(i) for i in range(len(self._names))]
        counts = np.array([c.n_terms for c in columns], dtype=np.int64)
        entry_starts = np.zeros(len(columns) + 1, dtype=np.int64)
        np.cumsum(counts, out=entry_starts[1:])
        if columns:
            term_ids = np.concatenate([c.term_ids for c in columns])
            p = np.concatenate([c.p for c in columns])
            w = np.concatenate([c.w for c in columns])
            sigma = np.concatenate([c.sigma for c in columns])
            mw = np.concatenate([c.mw for c in columns])
        else:
            term_ids = np.zeros(0, dtype=np.int64)
            p = w = sigma = mw = np.zeros(0)
        used = np.unique(term_ids)
        term_local = np.searchsorted(used, term_ids).astype(np.int64)
        term_blob, term_offsets = _encode_terms(
            [self.vocab.term_of(t) for t in used.tolist()]
        )
        name_blob, name_offsets = _encode_terms(self._names)
        np.savez(
            path,
            format_version=np.int64(_FORMAT_VERSION),
            kind=np.frombuffer(b"columnar-fleet", dtype=np.uint8),
            name_blob=name_blob,
            name_offsets=name_offsets,
            n_documents=np.asarray(self._n_documents, dtype=np.int64),
            binary_mean_w=np.asarray(self._binary_mean_w, dtype=np.float64),
            entry_starts=entry_starts,
            term_local=term_local,
            term_blob=term_blob,
            term_offsets=term_offsets,
            p=p,
            w=w,
            sigma=sigma,
            mw=mw,
        )

    @classmethod
    def load_npz(
        cls,
        path: Union[str, Path, io.IOBase],
        vocab: Optional[BrokerVocabulary] = None,
    ) -> "FleetRepresentativeStore":
        """Read a fleet bundle written by :meth:`save_npz`."""
        with np.load(path, allow_pickle=False) as data:
            version = int(data["format_version"])
            if version != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported fleet bundle format version {version}"
                )
            kind = data["kind"].tobytes().decode("utf-8")
            if kind != "columnar-fleet":
                raise ValueError(f"not a columnar fleet bundle: {kind!r}")
            names = _decode_terms(data["name_blob"], data["name_offsets"])
            n_documents = data["n_documents"].tolist()
            binary_mean_w = data["binary_mean_w"].tolist()
            entry_starts = data["entry_starts"].tolist()
            term_local = data["term_local"]
            terms = _decode_terms(data["term_blob"], data["term_offsets"])
            p = data["p"].copy()
            w = data["w"].copy()
            sigma = data["sigma"].copy()
            mw = data["mw"].copy()
        store = cls(vocab)
        for i, name in enumerate(names):
            lo, hi = entry_starts[i], entry_starts[i + 1]
            engine_terms = [terms[k] for k in term_local[lo:hi].tolist()]
            ids = store.vocab.intern_many(engine_terms)
            order = np.argsort(ids, kind="stable")
            store.add(
                ColumnarRepresentative(
                    name=name,
                    n_documents=int(n_documents[i]),
                    vocab=store.vocab,
                    term_ids=ids[order],
                    p=p[lo:hi][order],
                    w=w[lo:hi][order],
                    sigma=sigma[lo:hi][order],
                    mw=mw[lo:hi][order],
                )
            )
            store._binary_mean_w[i] = float(binary_mean_w[i])
        store._mean_w_array = None
        return store

    # -- sizing --------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Resident bytes of the packed statistics (excluding the shared
        vocabulary — see :attr:`vocab_nbytes`)."""
        packed = self._ensure_packed()
        pending = sum(
            c.term_ids.nbytes + c.p.nbytes + c.w.nbytes
            + c.sigma.nbytes + c.mw.nbytes
            for c in self._pending.values()
        )
        return packed.nbytes + pending

    @property
    def vocab_nbytes(self) -> int:
        return self.vocab.nbytes

    @property
    def total_entries(self) -> int:
        self._ensure_packed()
        return sum(self._n_terms)

    def __repr__(self) -> str:
        return (
            f"FleetRepresentativeStore(engines={len(self._names)}, "
            f"vocab={len(self.vocab)})"
        )


class FleetRepresentativeRef:
    """A representative facade reading through a fleet store.

    Registered engines in columnar brokers keep no per-engine dict
    representative; anything that walks a representative (the scalar
    estimators, diagnostics) goes through this reference, which answers
    from the packed fleet layout bit-exactly.
    """

    __slots__ = ("name", "_store")

    def __init__(self, name: str, store: FleetRepresentativeStore):
        self.name = name
        self._store = store

    @property
    def n_documents(self) -> int:
        return int(self._store._n_documents[self._store.index_of(self.name)])

    def get(self, term: str) -> Optional[TermStats]:
        return self._store.term_stats(self.name, term)

    def __contains__(self, term: str) -> bool:
        return self.get(term) is not None

    def __len__(self) -> int:
        return self._store.n_terms_of(self.name)

    @property
    def n_terms(self) -> int:
        return self._store.n_terms_of(self.name)

    @property
    def has_max_weights(self) -> bool:
        return self._store.has_max_weights(self.name)

    def document_frequency(self, term: str) -> float:
        stats = self.get(term)
        return stats.probability * self.n_documents if stats else 0.0

    def items(self) -> Iterator[Tuple[str, TermStats]]:
        return self._store.materialize(self.name).items()

    def materialize(self) -> DatabaseRepresentative:
        return self._store.materialize(self.name)

    def __repr__(self) -> str:
        return f"FleetRepresentativeRef({self.name!r})"
