"""Incremental and mergeable representative maintenance.

The paper's architecture notes that local updates "may need to be propagated
to the metadata that represent the contents of local databases" and that
this propagation can be infrequent and approximate.  This module makes it
*exact and cheap*: every statistic of the quadruplet representative —
probability, mean, standard deviation, maximum — is derivable from four
per-term sufficient statistics

```
(df, sum of weights, sum of squared weights, max weight)
```

which support O(1) per-posting document addition and O(terms) merging.
Merging also gives representative-level composition: the representative of
``D2 = G0 union G1`` is the merge of the groups' accumulators, no rebuild
needed — the operation behind the paper's D2/D3 construction.

Normalization note: a document's normalized weights depend only on that
document, so adding a document never changes other documents' statistics —
which is what makes exact incrementality possible under Cosine.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Union

from repro.engine.search_engine import SearchEngine
from repro.index.inverted import InvertedIndex
from repro.representatives.representative import DatabaseRepresentative
from repro.representatives.term_stats import TermStats

__all__ = ["TermAccumulator", "RepresentativeAccumulator"]


class TermAccumulator:
    """Sufficient statistics of one term's (normalized) weights.

    Internally uses Welford's streaming mean/M2 recurrence with Chan's
    parallel merge formula, so the variance is numerically stable no matter
    how many near-identical weights are folded in; the classic ``sum`` /
    ``sum of squares`` views remain available as derived properties.
    """

    __slots__ = ("df", "mean", "m2", "max_weight")

    def __init__(self, df=0, mean=0.0, m2=0.0, max_weight=0.0):
        self.df = df
        self.mean = mean
        self.m2 = m2
        self.max_weight = max_weight

    @property
    def weight_sum(self) -> float:
        """Sum of observed weights (derived view)."""
        return self.mean * self.df

    @property
    def weight_sumsq(self) -> float:
        """Sum of squared observed weights (derived view)."""
        return self.m2 + self.df * self.mean * self.mean

    def add(self, weight: float) -> None:
        """Fold in one more document carrying this term."""
        if weight < 0.0:
            raise ValueError(f"weight must be >= 0, got {weight!r}")
        self.df += 1
        delta = weight - self.mean
        self.mean += delta / self.df
        self.m2 += delta * (weight - self.mean)
        if weight > self.max_weight:
            self.max_weight = weight

    def merge(self, other: "TermAccumulator") -> None:
        """Fold in another accumulator (disjoint document sets assumed)."""
        if other.df == 0:
            return
        if self.df == 0:
            self.df = other.df
            self.mean = other.mean
            self.m2 = other.m2
            self.max_weight = other.max_weight
            return
        total = self.df + other.df
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.df * other.df / total
        self.mean += delta * other.df / total
        self.df = total
        if other.max_weight > self.max_weight:
            self.max_weight = other.max_weight

    def to_stats(self, n_documents: int, include_max: bool = True) -> TermStats:
        """Materialize the paper's quadruplet for a database of size ``n``."""
        if self.df <= 0:
            raise ValueError("cannot materialize stats for an unseen term")
        variance = max(self.m2 / self.df, 0.0)
        return TermStats(
            probability=self.df / n_documents if n_documents else 0.0,
            mean=self.mean,
            std=math.sqrt(variance),
            max_weight=self.max_weight if include_max else None,
        )

    def __repr__(self) -> str:
        return (
            f"TermAccumulator(df={self.df}, mean={self.mean:.4f}, "
            f"max={self.max_weight:.4f})"
        )


class RepresentativeAccumulator:
    """Builds and maintains a representative one document at a time.

    Typical engine-side use::

        acc = RepresentativeAccumulator("my-engine")
        for doc_weights in stream_of_documents:   # {term: normalized weight}
            acc.add_document(doc_weights)
        acc.to_representative().save("my-engine.rep.json")

    Broker-side composition::

        combined = RepresentativeAccumulator.merged("D2", [acc_g0, acc_g1])
    """

    def __init__(self, name: str):
        self.name = name
        self.n_documents = 0
        self._terms: Dict[str, TermAccumulator] = {}

    def add_document(self, weights: Dict[str, float]) -> None:
        """Fold one document's ``{term: normalized weight}`` mapping in.

        Zero weights are ignored — a zero-weight term is indistinguishable
        from an absent one in every statistic the representative stores.
        """
        self.n_documents += 1
        for term, weight in weights.items():
            if weight == 0.0:
                continue
            accumulator = self._terms.get(term)
            if accumulator is None:
                accumulator = self._terms[term] = TermAccumulator()
            accumulator.add(weight)

    def merge(self, other: "RepresentativeAccumulator") -> None:
        """Fold in another accumulator over a disjoint document set."""
        self.n_documents += other.n_documents
        for term, theirs in other._terms.items():
            mine = self._terms.get(term)
            if mine is None:
                mine = self._terms[term] = TermAccumulator()
            mine.merge(theirs)

    @classmethod
    def merged(
        cls, name: str, parts: Iterable["RepresentativeAccumulator"]
    ) -> "RepresentativeAccumulator":
        """A fresh accumulator equal to the union of ``parts``."""
        out = cls(name)
        for part in parts:
            out.merge(part)
        return out

    @classmethod
    def from_index(
        cls, source: Union[SearchEngine, InvertedIndex], name: str = None
    ) -> "RepresentativeAccumulator":
        """Seed an accumulator from an existing engine/index."""
        index = source.index if isinstance(source, SearchEngine) else source
        out = cls(name or index.collection.name)
        out.n_documents = index.n_documents
        vocabulary = index.collection.vocabulary
        for term_id, plist in index.items():
            accumulator = TermAccumulator()
            for weight in plist.weights.tolist():
                accumulator.add(weight)
            # df was already counted by the per-weight adds.
            out._terms[vocabulary.term_of(term_id)] = accumulator
        return out

    @property
    def n_terms(self) -> int:
        return len(self._terms)

    def to_representative(
        self, include_max: bool = True
    ) -> DatabaseRepresentative:
        """Materialize the current state as a representative."""
        return DatabaseRepresentative(
            name=self.name,
            n_documents=self.n_documents,
            term_stats={
                term: accumulator.to_stats(self.n_documents, include_max)
                for term, accumulator in self._terms.items()
            },
        )

    def __repr__(self) -> str:
        return (
            f"RepresentativeAccumulator({self.name!r}, "
            f"docs={self.n_documents}, terms={self.n_terms})"
        )
