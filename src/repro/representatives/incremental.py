"""Incremental and mergeable representative maintenance.

The paper's architecture notes that local updates "may need to be propagated
to the metadata that represent the contents of local databases" and that
this propagation can be infrequent and approximate.  This module makes it
*exact and cheap*: every statistic of the quadruplet representative —
probability, mean, standard deviation, maximum — is derivable from four
per-term sufficient statistics

```
(df, sum of weights, sum of squared weights, max weight)
```

which support O(1) per-posting document addition and O(terms) merging.
Merging also gives representative-level composition: the representative of
``D2 = G0 union G1`` is the merge of the groups' accumulators, no rebuild
needed — the operation behind the paper's D2/D3 construction.

Normalization note: a document's normalized weights depend only on that
document, so adding a document never changes other documents' statistics —
which is what makes exact incrementality possible under Cosine.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Set, Union

from repro.engine.search_engine import SearchEngine
from repro.index.inverted import InvertedIndex
from repro.representatives.representative import DatabaseRepresentative
from repro.representatives.term_stats import TermStats

__all__ = ["TermAccumulator", "RepresentativeAccumulator", "TOP_K"]

# Largest weights retained per term so removal can restore the maximum
# without touching the posting list.  Deleting more than TOP_K of a term's
# top weights between refreshes marks the maximum stale (lazy recompute).
TOP_K = 8


class TermAccumulator:
    """Sufficient statistics of one term's (normalized) weights.

    Internally uses Welford's streaming mean/M2 recurrence with Chan's
    parallel merge formula, so the variance is numerically stable no matter
    how many near-identical weights are folded in; the classic ``sum`` /
    ``sum of squares`` views remain available as derived properties.

    Removal subtracts from the derived sum / sum-of-squares (signed
    sufficient statistics); the maximum is maintained through a small
    per-term top-k of the largest weights.  When every retained top weight
    has been removed after the top-k overflowed, the maximum becomes
    *stale* — :meth:`to_stats` refuses to serve it until
    :meth:`refresh_max` re-seeds it from the term's surviving weights.
    """

    __slots__ = ("df", "mean", "m2", "max_weight", "_topk", "_truncated")

    def __init__(self, df=0, mean=0.0, m2=0.0, max_weight=0.0):
        self.df = df
        self.mean = mean
        self.m2 = m2
        self.max_weight = max_weight
        # _topk: ascending list of the largest weights seen (multiplicity
        # preserved), capped at TOP_K.  _truncated: some weight has been
        # pushed out, so an emptied _topk no longer implies max == 0.
        self._topk: List[float] = [max_weight] if df > 0 else []
        self._truncated = df > 1

    @property
    def weight_sum(self) -> float:
        """Sum of observed weights (derived view)."""
        return self.mean * self.df

    @property
    def weight_sumsq(self) -> float:
        """Sum of squared observed weights (derived view)."""
        return self.m2 + self.df * self.mean * self.mean

    def add(self, weight: float) -> None:
        """Fold in one more document carrying this term."""
        if weight < 0.0:
            raise ValueError(f"weight must be >= 0, got {weight!r}")
        self.df += 1
        delta = weight - self.mean
        self.mean += delta / self.df
        self.m2 += delta * (weight - self.mean)
        if weight > self.max_weight:
            self.max_weight = weight
        bisect.insort(self._topk, weight)
        if len(self._topk) > TOP_K:
            del self._topk[0]
            self._truncated = True

    def remove(self, weight: float) -> None:
        """Retract one document's weight (signed-statistics subtraction).

        The weight must be one previously folded in; removing below the
        top-k band leaves the maximum untouched, removing within it
        restores the maximum from the surviving top-k, and exhausting a
        truncated top-k marks the maximum stale (see :attr:`max_is_exact`).
        """
        if weight < 0.0:
            raise ValueError(f"weight must be >= 0, got {weight!r}")
        if self.df <= 0:
            raise ValueError("cannot remove from an unseen term")
        if self.df == 1:
            self.reset()
            return
        total = self.weight_sum - weight
        total_sq = self.weight_sumsq - weight * weight
        self.df -= 1
        self.mean = total / self.df
        self.m2 = max(total_sq - self.df * self.mean * self.mean, 0.0)
        index = bisect.bisect_left(self._topk, weight)
        if index < len(self._topk) and self._topk[index] == weight:
            del self._topk[index]
        if self._topk:
            self.max_weight = self._topk[-1]
        elif not self._truncated:
            self.max_weight = 0.0

    def reset(self) -> None:
        """Return to the never-seen state."""
        self.df = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.max_weight = 0.0
        self._topk = []
        self._truncated = False

    @property
    def max_is_exact(self) -> bool:
        """False when removals exhausted a truncated top-k — the stored
        maximum is then an upper bound, not the true maximum."""
        return bool(self._topk) or not self._truncated

    def refresh_max(self, weights: Iterable[float]) -> None:
        """Re-seed the top-k (and the maximum) from the term's surviving
        weights — the lazy recompute resolving a stale maximum."""
        ordered = sorted(weights)
        if len(ordered) != self.df:
            raise ValueError(
                f"refresh expects {self.df} weights, got {len(ordered)}"
            )
        self._topk = ordered[-TOP_K:]
        self._truncated = len(ordered) > TOP_K
        self.max_weight = self._topk[-1] if self._topk else 0.0

    def merge(self, other: "TermAccumulator") -> None:
        """Fold in another accumulator (disjoint document sets assumed)."""
        if other.df == 0:
            return
        if self.df == 0:
            self.df = other.df
            self.mean = other.mean
            self.m2 = other.m2
            self.max_weight = other.max_weight
            self._topk = list(other._topk)
            self._truncated = other._truncated
            return
        total = self.df + other.df
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.df * other.df / total
        self.mean += delta * other.df / total
        self.df = total
        if other.max_weight > self.max_weight:
            self.max_weight = other.max_weight
        combined = sorted(self._topk + other._topk)
        self._truncated = (
            self._truncated or other._truncated or len(combined) > TOP_K
        )
        self._topk = combined[-TOP_K:]

    def to_stats(self, n_documents: int, include_max: bool = True) -> TermStats:
        """Materialize the paper's quadruplet for a database of size ``n``."""
        if self.df <= 0:
            raise ValueError("cannot materialize stats for an unseen term")
        if include_max and not self.max_is_exact:
            raise ValueError(
                "maximum weight is stale after removals; call refresh_max"
            )
        variance = max(self.m2 / self.df, 0.0)
        return TermStats(
            probability=self.df / n_documents if n_documents else 0.0,
            mean=self.mean,
            std=math.sqrt(variance),
            max_weight=self.max_weight if include_max else None,
        )

    def __repr__(self) -> str:
        return (
            f"TermAccumulator(df={self.df}, mean={self.mean:.4f}, "
            f"max={self.max_weight:.4f})"
        )


class RepresentativeAccumulator:
    """Builds and maintains a representative one document at a time.

    Typical engine-side use::

        acc = RepresentativeAccumulator("my-engine")
        for doc_weights in stream_of_documents:   # {term: normalized weight}
            acc.add_document(doc_weights)
        acc.to_representative().save("my-engine.rep.json")

    Broker-side composition::

        combined = RepresentativeAccumulator.merged("D2", [acc_g0, acc_g1])
    """

    def __init__(self, name: str):
        self.name = name
        self.n_documents = 0
        self._terms: Dict[str, TermAccumulator] = {}
        self._stale_max: Set[str] = set()

    def add_document(self, weights: Dict[str, float]) -> None:
        """Fold one document's ``{term: normalized weight}`` mapping in.

        Zero weights are ignored — a zero-weight term is indistinguishable
        from an absent one in every statistic the representative stores.
        """
        self.n_documents += 1
        for term, weight in weights.items():
            if weight == 0.0:
                continue
            accumulator = self._terms.get(term)
            if accumulator is None:
                accumulator = self._terms[term] = TermAccumulator()
            accumulator.add(weight)
            if term in self._stale_max and accumulator.max_is_exact:
                self._stale_max.discard(term)

    def remove_document(self, weights: Dict[str, float]) -> None:
        """Retract one previously added document's weight mapping.

        Terms whose maximum became stale (the removed document sat in a
        truncated top-k's retained band, and the band is now empty) are
        recorded in :attr:`stale_max_terms`; resolve them lazily with
        :meth:`refresh_term_max` before materializing a quadruplet.
        """
        if self.n_documents <= 0:
            raise ValueError("cannot remove from an empty accumulator")
        for term, weight in weights.items():
            if weight != 0.0 and term not in self._terms:
                raise KeyError(f"unknown term {term!r}")
        self.n_documents -= 1
        for term, weight in weights.items():
            if weight == 0.0:
                continue
            accumulator = self._terms[term]
            accumulator.remove(weight)
            if accumulator.df == 0:
                del self._terms[term]
                self._stale_max.discard(term)
            elif not accumulator.max_is_exact:
                self._stale_max.add(term)

    @property
    def stale_max_terms(self) -> Set[str]:
        """Terms whose stored maximum no longer reflects the live corpus."""
        return set(self._stale_max)

    def refresh_term_max(self, term: str, weights: Iterable[float]) -> None:
        """Re-seed ``term``'s maximum from its surviving weights (the lazy
        recompute for a member of :attr:`stale_max_terms`)."""
        accumulator = self._terms.get(term)
        if accumulator is None:
            raise KeyError(f"unknown term {term!r}")
        accumulator.refresh_max(weights)
        self._stale_max.discard(term)

    def merge(self, other: "RepresentativeAccumulator") -> None:
        """Fold in another accumulator over a disjoint document set."""
        self.n_documents += other.n_documents
        for term, theirs in other._terms.items():
            mine = self._terms.get(term)
            if mine is None:
                mine = self._terms[term] = TermAccumulator()
            mine.merge(theirs)
            if mine.max_is_exact:
                self._stale_max.discard(term)
            else:
                self._stale_max.add(term)

    @classmethod
    def merged(
        cls, name: str, parts: Iterable["RepresentativeAccumulator"]
    ) -> "RepresentativeAccumulator":
        """A fresh accumulator equal to the union of ``parts``."""
        out = cls(name)
        for part in parts:
            out.merge(part)
        return out

    @classmethod
    def from_index(
        cls, source: Union[SearchEngine, InvertedIndex], name: str = None
    ) -> "RepresentativeAccumulator":
        """Seed an accumulator from an existing engine/index."""
        index = source.index if isinstance(source, SearchEngine) else source
        out = cls(name or index.collection.name)
        out.n_documents = index.n_documents
        vocabulary = index.collection.vocabulary
        for term_id, plist in index.items():
            accumulator = TermAccumulator()
            for weight in plist.weights.tolist():
                accumulator.add(weight)
            # df was already counted by the per-weight adds.
            out._terms[vocabulary.term_of(term_id)] = accumulator
        return out

    @property
    def n_terms(self) -> int:
        return len(self._terms)

    def to_representative(
        self, include_max: bool = True
    ) -> DatabaseRepresentative:
        """Materialize the current state as a representative."""
        return DatabaseRepresentative(
            name=self.name,
            n_documents=self.n_documents,
            term_stats={
                term: accumulator.to_stats(self.n_documents, include_max)
                for term, accumulator in self._terms.items()
            },
        )

    def __repr__(self) -> str:
        return (
            f"RepresentativeAccumulator({self.name!r}, "
            f"docs={self.n_documents}, terms={self.n_terms})"
        )
