"""Database representatives: the compact per-term statistics a metasearch
engine keeps about each local search engine.

The paper's full representative stores a quadruplet per distinct term —
``(p, w, sigma, mw)``: occurrence probability, mean and standard deviation of
the term's normalized weights over the documents containing it, and the
maximum normalized weight.  Builders derive these from an engine's inverted
index; :mod:`repro.representatives.quantized` applies the one-byte
approximation of Section 3.2; :mod:`repro.representatives.sizing` reproduces
the scalability accounting.
"""

from repro.representatives.algebra import merge_representatives
from repro.representatives.builder import build_representative
from repro.representatives.columnar import (
    BrokerVocabulary,
    ColumnarRepresentative,
    FleetRepresentativeRef,
    FleetRepresentativeStore,
    partition_round_robin,
)
from repro.representatives.empirical import (
    EmpiricalRepresentative,
    EmpiricalTermStats,
    build_empirical_representative,
)
from repro.representatives.incremental import (
    RepresentativeAccumulator,
    TermAccumulator,
)
from repro.representatives.quantized import quantize_representative
from repro.representatives.representative import DatabaseRepresentative
from repro.representatives.sizing import (
    PAPER_COLLECTION_STATS,
    CollectionSizing,
    representative_size_bytes,
    sizing_for_collection,
)
from repro.representatives.subrange import SubrangeScheme
from repro.representatives.term_stats import TermStats

__all__ = [
    "BrokerVocabulary",
    "CollectionSizing",
    "ColumnarRepresentative",
    "DatabaseRepresentative",
    "FleetRepresentativeRef",
    "FleetRepresentativeStore",
    "EmpiricalRepresentative",
    "EmpiricalTermStats",
    "PAPER_COLLECTION_STATS",
    "RepresentativeAccumulator",
    "SubrangeScheme",
    "TermAccumulator",
    "TermStats",
    "build_empirical_representative",
    "build_representative",
    "merge_representatives",
    "partition_round_robin",
    "quantize_representative",
    "representative_size_bytes",
    "sizing_for_collection",
]
