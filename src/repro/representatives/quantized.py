"""One-byte approximation of a representative (Section 3.2, Tables 7-9).

Each numeric field of the representative — probability, mean weight,
standard deviation, maximum normalized weight — is independently passed
through a 256-level :class:`~repro.stats.quantization.OneByteQuantizer`
fitted on that field's values across all terms of the database.
Probabilities use the fixed interval [0, 1] as the paper prescribes; the
other fields use their observed range.  The result is a plain
:class:`DatabaseRepresentative` holding the approximated values, so every
estimator runs on it unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.representatives.representative import DatabaseRepresentative
from repro.representatives.term_stats import TermStats
from repro.stats.quantization import OneByteQuantizer

__all__ = ["quantize_representative"]


def _quantize_field(
    values: np.ndarray, levels: int, low: Optional[float] = None, high: Optional[float] = None
) -> np.ndarray:
    quantizer = OneByteQuantizer(levels=levels, low=low, high=high)
    return quantizer.fit_roundtrip(values)


def quantize_representative(
    representative: DatabaseRepresentative, levels: int = 256
) -> DatabaseRepresentative:
    """Return a copy of ``representative`` with every number one-byte coded.

    Args:
        representative: The exact representative to approximate.
        levels: Quantization levels; 256 is the paper's one-byte scheme, and
            ablation benchmarks sweep smaller values.
    """
    terms = [term for term, __ in representative.items()]
    if not terms:
        return DatabaseRepresentative(
            name=representative.name,
            n_documents=representative.n_documents,
            term_stats={},
        )
    stats = [representative.get(term) for term in terms]
    probabilities = _quantize_field(
        np.array([s.probability for s in stats]), levels, low=0.0, high=1.0
    )
    means = _quantize_field(np.array([s.mean for s in stats]), levels)
    stds = _quantize_field(np.array([s.std for s in stats]), levels)
    has_max = all(s.max_weight is not None for s in stats)
    if has_max:
        max_weights = _quantize_field(
            np.array([s.max_weight for s in stats]), levels
        )
    quantized = {}
    for i, term in enumerate(terms):
        quantized[term] = TermStats(
            probability=float(np.clip(probabilities[i], 0.0, 1.0)),
            mean=float(max(means[i], 0.0)),
            std=float(max(stds[i], 0.0)),
            max_weight=float(max(max_weights[i], 0.0)) if has_max else None,
        )
    return DatabaseRepresentative(
        name=representative.name,
        n_documents=representative.n_documents,
        term_stats=quantized,
    )
