"""Exact algebra over finished representatives.

A metasearch broker often holds only the *published* representatives of its
engines, not their indexes.  Because the quadruplet ``(p, w, sigma, mw)``
over a database of known size ``n`` is equivalent to the sufficient
statistics ``(df, sum, sum of squares, max)``, representatives of disjoint
databases can be merged *exactly* without touching a document — the
operation behind the paper's D2/D3 construction, and the enabler of the
"more than two levels" generalization its introduction mentions
(:mod:`repro.metasearch.hierarchy`).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.representatives.representative import DatabaseRepresentative
from repro.representatives.term_stats import TermStats

__all__ = ["merge_representatives"]


def _merge_two_stats(
    a: TermStats, n_a: int, b: TermStats, n_b: int
) -> TermStats:
    df_a = a.probability * n_a
    df_b = b.probability * n_b
    df = df_a + df_b
    if df <= 0.0:
        return TermStats(probability=0.0, mean=0.0, std=0.0, max_weight=0.0)
    mean = (a.mean * df_a + b.mean * df_b) / df
    # Recover each side's second moment from (mean, std), combine, re-center.
    second = (
        (a.std * a.std + a.mean * a.mean) * df_a
        + (b.std * b.std + b.mean * b.mean) * df_b
    ) / df
    variance = max(second - mean * mean, 0.0)
    if a.max_weight is None or b.max_weight is None:
        max_weight = None
    else:
        max_weight = max(a.max_weight, b.max_weight)
    return TermStats(
        probability=df / (n_a + n_b),
        mean=mean,
        std=math.sqrt(variance),
        max_weight=max_weight,
    )


def merge_representatives(
    name: str, representatives: Iterable[DatabaseRepresentative]
) -> DatabaseRepresentative:
    """Exact representative of the disjoint union of several databases.

    Every statistic of the result equals what a batch build over the merged
    collection would produce (up to floating-point noise), provided the
    source databases share no documents.  Term sets are unioned; a term
    missing from one side simply contributes ``df = 0`` there.

    Args:
        name: Name for the merged representative.
        representatives: The per-database representatives to combine.
    """
    parts = list(representatives)
    merged_n = sum(part.n_documents for part in parts)
    merged_stats = {}
    for part in parts:
        for term, stats in part.items():
            current = merged_stats.get(term)
            if current is None:
                # Seed with this part's stats re-based onto the documents
                # seen so far (df unchanged, probability re-derived later).
                merged_stats[term] = (stats, part.n_documents)
            else:
                existing, n_existing = current
                combined = _merge_two_stats(
                    existing, n_existing, stats, part.n_documents
                )
                # Track how many documents the combined stats cover so the
                # next merge re-derives df correctly.
                merged_stats[term] = (
                    TermStats(
                        probability=combined.probability,
                        mean=combined.mean,
                        std=combined.std,
                        max_weight=combined.max_weight,
                    ),
                    n_existing + part.n_documents,
                )
    final = {}
    for term, (stats, n_covered) in merged_stats.items():
        df = stats.probability * n_covered
        final[term] = TermStats(
            probability=df / merged_n if merged_n else 0.0,
            mean=stats.mean,
            std=stats.std,
            max_weight=stats.max_weight,
        )
    return DatabaseRepresentative(
        name=name, n_documents=merged_n, term_stats=final
    )
