"""Building representatives from a local engine's index.

The statistics are computed over the *normalized* document weights — with
the Cosine similarity in effect, the contribution of term ``t`` to
``sim(q, d)`` is the query weight times ``d``'s normalized weight for ``t``,
so that is the distribution the estimators must summarize (the paper's
"maximum normalized weight" makes this explicit).
"""

from __future__ import annotations

from typing import Union

from repro.engine.search_engine import SearchEngine
from repro.index.inverted import InvertedIndex
from repro.representatives.representative import DatabaseRepresentative
from repro.representatives.term_stats import TermStats

__all__ = ["build_representative"]


def build_representative(
    source: Union[SearchEngine, InvertedIndex],
    include_max_weight: bool = True,
) -> DatabaseRepresentative:
    """Summarize an engine (or raw index) into a database representative.

    Args:
        source: The engine/index to summarize; its weighting and
            normalization settings determine the weight space.
        include_max_weight: Store the quadruplet (Tables 1-9) when True, the
            triplet (Tables 10-12) when False.

    Returns:
        A :class:`DatabaseRepresentative` keyed by term string.
    """
    index = source.index if isinstance(source, SearchEngine) else source
    n = index.n_documents
    vocabulary = index.collection.vocabulary
    term_stats = {}
    for term_id, plist in index.items():
        weights = plist.weights
        stats = TermStats(
            probability=plist.document_frequency / n if n else 0.0,
            mean=float(weights.mean()),
            std=float(weights.std(ddof=0)),
            max_weight=float(weights.max()) if include_max_weight else None,
        )
        term_stats[vocabulary.term_of(term_id)] = stats
    return DatabaseRepresentative(
        name=index.collection.name, n_documents=n, term_stats=term_stats
    )
