"""Subrange schemes — how a term's weight distribution is discretized.

Section 3.1 of the paper partitions the (descending) weights of a term into
subranges and represents each subrange by its median weight, approximated
under a normal assumption as ``w + c * sigma`` with ``c`` a standard-normal
quantile.  A :class:`SubrangeScheme` is the declarative description of such a
partition: the median percentiles (measured from the *bottom* of the
distribution, so percentile 98 is a high weight) with the probability mass of
each subrange, plus whether a singleton top subrange holds the maximum
normalized weight with probability ``1/n``.

Two canonical schemes:

* :meth:`SubrangeScheme.equal` — ``k`` equal subranges; ``equal(4)`` is the
  four-subrange construction of the paper's exposition (Example 3.3:
  ``c = +-1.15, +-0.318``).
* :meth:`SubrangeScheme.paper_six` — the six-subrange configuration of the
  experiments: the singleton max-weight subrange plus medians at the 98,
  93.1, 70, 37.5 and 12.5 percentiles.  The masses are recovered from the
  medians by walking boundaries down from the top (see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.stats.normal import normal_quantile

__all__ = ["SubrangeScheme"]


@dataclass(frozen=True)
class SubrangeScheme:
    """A discretization of a term-weight distribution.

    Attributes:
        median_percentiles: Median of each subrange, in percent from the
            bottom of the weight distribution, strictly descending.
        masses: Fraction of the term's occurrence probability assigned to
            each subrange; parallel to ``median_percentiles``; sums to 1.
        include_max: Prepend a singleton subrange holding the maximum
            normalized weight with probability ``1/n`` (deducted from the
            top subrange's mass).
    """

    median_percentiles: Tuple[float, ...]
    masses: Tuple[float, ...]
    include_max: bool = True

    def __post_init__(self):
        if len(self.median_percentiles) != len(self.masses):
            raise ValueError("median_percentiles and masses must align")
        if not self.median_percentiles:
            raise ValueError("a scheme needs at least one subrange")
        for pct in self.median_percentiles:
            if not 0.0 < pct < 100.0:
                raise ValueError(f"percentile must be in (0, 100), got {pct!r}")
        if any(
            a <= b
            for a, b in zip(self.median_percentiles, self.median_percentiles[1:])
        ):
            raise ValueError("median percentiles must be strictly descending")
        if any(m <= 0.0 for m in self.masses):
            raise ValueError("all masses must be positive")
        total = sum(self.masses)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"masses must sum to 1, got {total!r}")

    @property
    def n_subranges(self) -> int:
        """Number of subranges, counting the max-weight singleton."""
        return len(self.masses) + (1 if self.include_max else 0)

    def normal_offsets(self) -> Tuple[float, ...]:
        """The ``c_j`` constants: standard-normal quantiles of the medians.

        These are term-independent, as the paper stresses — one lookup table
        serves every term.
        """
        return tuple(normal_quantile(p / 100.0) for p in self.median_percentiles)

    # -- canonical schemes ---------------------------------------------------------

    @classmethod
    def equal(cls, k: int, include_max: bool = False) -> "SubrangeScheme":
        """``k`` equal-mass subranges with medians at their midpoints.

        ``equal(4)`` gives medians 87.5/62.5/37.5/12.5 — the construction of
        the paper's Section 3.1 figure and Example 3.3.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k!r}")
        medians = tuple(100.0 * (2 * (k - j) - 1) / (2 * k) for j in range(k))
        masses = (1.0 / k,) * k
        return cls(
            median_percentiles=medians, masses=masses, include_max=include_max
        )

    @classmethod
    def paper_six(cls) -> "SubrangeScheme":
        """The six-subrange configuration of the paper's experiments.

        One singleton subrange holds the maximum normalized weight; the
        other five have medians at the 98, 93.1, 70, 37.5 and 12.5
        percentiles.  Masses follow from the medians being subrange
        midpoints: boundaries 100 / 96 / 90.2 / 49.8 / 25.2 / 0 give masses
        4%, 5.8%, 40.4%, 24.6% and 25.2% — narrow subranges at the top,
        where weights matter most for high thresholds, exactly the rationale
        the paper states.
        """
        return cls(
            median_percentiles=(98.0, 93.1, 70.0, 37.5, 12.5),
            masses=(0.040, 0.058, 0.404, 0.246, 0.252),
            include_max=True,
        )

    def __repr__(self) -> str:
        medians = ", ".join(f"{p:g}" for p in self.median_percentiles)
        return (
            f"SubrangeScheme(medians=[{medians}], include_max={self.include_max})"
        )
