"""Empirical-percentile subrange representatives.

Section 3.1 approximates each subrange's median weight under a normal
assumption "since it is expensive to find and to store w_m1, w_m2, ...".
This module implements the expensive alternative the paper declined: store
the *actual* empirical percentiles of each term's weight distribution.  It
exists to quantify what the normal approximation costs — the
``bench_ablation_empirical`` benchmark runs both against ground truth.

Storage cost: with the paper's six-subrange scheme this is 4 bytes for the
term plus (1 probability + 5 medians + 1 max) * 4 = 32 bytes/term, versus
20 for the quadruplet — the trade the paper alludes to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.engine.search_engine import SearchEngine
from repro.index.inverted import InvertedIndex
from repro.representatives.subrange import SubrangeScheme
from repro.stats.descriptive import percentile_sorted

__all__ = [
    "EmpiricalTermStats",
    "EmpiricalRepresentative",
    "build_empirical_representative",
]


@dataclass(frozen=True)
class EmpiricalTermStats:
    """One term's empirical subrange summary.

    Attributes:
        probability: Fraction of documents containing the term.
        medians: The actual weight percentiles at the scheme's median
            positions, parallel to the scheme's subranges.
        max_weight: The exact maximum normalized weight.
    """

    probability: float
    medians: Tuple[float, ...]
    max_weight: float

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability!r}")
        if any(m < 0.0 for m in self.medians):
            raise ValueError("medians must be >= 0")
        if self.max_weight < 0.0:
            raise ValueError(f"max_weight must be >= 0, got {self.max_weight!r}")


class EmpiricalRepresentative:
    """Representative carrying true percentile medians per term.

    Duck-type compatible with :class:`DatabaseRepresentative` for the
    estimator interface (``get``, ``n_documents``, ``n_terms``) but bound to
    the :class:`SubrangeScheme` it was built for.
    """

    def __init__(
        self,
        name: str,
        n_documents: int,
        scheme: SubrangeScheme,
        term_stats: Dict[str, EmpiricalTermStats],
    ):
        self.name = name
        self.n_documents = n_documents
        self.scheme = scheme
        self._term_stats = dict(term_stats)

    def get(self, term: str) -> Optional[EmpiricalTermStats]:
        return self._term_stats.get(term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_stats

    @property
    def n_terms(self) -> int:
        return len(self._term_stats)

    def __repr__(self) -> str:
        return (
            f"EmpiricalRepresentative({self.name!r}, docs={self.n_documents}, "
            f"terms={self.n_terms}, scheme={self.scheme!r})"
        )


def build_empirical_representative(
    source: Union[SearchEngine, InvertedIndex],
    scheme: Optional[SubrangeScheme] = None,
) -> EmpiricalRepresentative:
    """Summarize an engine with exact percentile medians per term."""
    index = source.index if isinstance(source, SearchEngine) else source
    scheme = scheme or SubrangeScheme.paper_six()
    n = index.n_documents
    vocabulary = index.collection.vocabulary
    term_stats = {}
    for term_id, plist in index.items():
        weights = np.sort(plist.weights)
        medians = tuple(
            percentile_sorted(weights, pct) for pct in scheme.median_percentiles
        )
        term_stats[vocabulary.term_of(term_id)] = EmpiricalTermStats(
            probability=plist.document_frequency / n if n else 0.0,
            medians=medians,
            max_weight=float(weights[-1]),
        )
    return EmpiricalRepresentative(
        name=index.collection.name,
        n_documents=n,
        scheme=scheme,
        term_stats=term_stats,
    )
