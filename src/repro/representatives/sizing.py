"""Scalability accounting for database representatives (Section 3.2).

The paper argues the method scales because a representative needs only a few
numbers per distinct term: 4 bytes for the term plus 4 bytes per number —
20 bytes/term for the quadruplet — dropping to 8 bytes/term when each number
is one-byte coded.  This module computes those sizes for any collection and
carries the paper's published WSJ/FR/DOE statistics so the Section 3.2 table
can be regenerated both for the paper's collections and for ours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.corpus.collection import Collection

__all__ = [
    "CollectionSizing",
    "PAPER_COLLECTION_STATS",
    "representative_size_bytes",
    "sizing_for_collection",
]

TERM_BYTES = 4          # the paper charges 4 bytes per term string
NUMBER_BYTES = 4        # full-precision number
QUANTIZED_NUMBER_BYTES = 1
QUADRUPLET_FIELDS = 4   # p, w, sigma, mw
# The paper reports sizes in "pages of 2 KB"; its published numbers
# (156298 terms * 20 B = 1563 pages) only reproduce with decimal kilobytes,
# so a page is 2000 bytes here.
PAGE_BYTES = 2000


def representative_size_bytes(
    n_terms: int,
    n_fields: int = QUADRUPLET_FIELDS,
    bytes_per_number: int = NUMBER_BYTES,
) -> int:
    """Bytes needed to store a representative with ``n_terms`` terms.

    ``bytes_per_number=4`` gives the paper's 20 bytes/term; 1 gives the
    quantized 8 bytes/term.
    """
    if n_terms < 0 or n_fields < 0 or bytes_per_number < 0:
        raise ValueError("sizes must be non-negative")
    return n_terms * (TERM_BYTES + n_fields * bytes_per_number)


@dataclass(frozen=True)
class CollectionSizing:
    """One row of the Section 3.2 scalability table.

    Attributes:
        name: Collection name.
        collection_pages: Collection size in 2 KB pages.
        n_distinct_terms: Vocabulary size.
        representative_pages: Full-precision representative size in pages.
        quantized_pages: One-byte-coded representative size in pages.
    """

    name: str
    collection_pages: float
    n_distinct_terms: int
    representative_pages: float
    quantized_pages: float

    @property
    def percent(self) -> float:
        """Representative size as a percentage of the collection size."""
        if self.collection_pages == 0:
            return 0.0
        return 100.0 * self.representative_pages / self.collection_pages

    @property
    def quantized_percent(self) -> float:
        """Same for the one-byte representation (the 1.5-3% claim)."""
        if self.collection_pages == 0:
            return 0.0
        return 100.0 * self.quantized_pages / self.collection_pages


def _sizing(name: str, collection_pages: float, n_terms: int) -> CollectionSizing:
    full = representative_size_bytes(n_terms) / PAGE_BYTES
    quantized = (
        representative_size_bytes(n_terms, bytes_per_number=QUANTIZED_NUMBER_BYTES)
        / PAGE_BYTES
    )
    return CollectionSizing(
        name=name,
        collection_pages=collection_pages,
        n_distinct_terms=n_terms,
        representative_pages=full,
        quantized_pages=quantized,
    )


def sizing_for_collection(collection: Collection) -> CollectionSizing:
    """Compute the scalability row for one of our collections."""
    return _sizing(
        collection.name, collection.size_in_pages(PAGE_BYTES), collection.n_terms
    )


def _paper_row(name: str, pages: int, n_terms: int) -> CollectionSizing:
    return _sizing(name, float(pages), n_terms)


#: The TREC collection statistics published in the paper's Section 3.2 table:
#: (collection, size in 2 KB pages, number of distinct terms).  Kept so the
#: table can be regenerated exactly and our size formula validated against
#: the paper's own arithmetic (1563/1263/1862 pages; 3.85/3.79/7.40%).
PAPER_COLLECTION_STATS: Tuple[CollectionSizing, ...] = (
    _paper_row("WSJ", 40605, 156298),
    _paper_row("FR", 33315, 126258),
    _paper_row("DOE", 25152, 186225),
)
