"""The database representative object.

A :class:`DatabaseRepresentative` is the only thing a metasearch engine
knows about a local search engine: the document count and one
:class:`~repro.representatives.term_stats.TermStats` per distinct term,
keyed by term *string* (term ids are private to each engine).  It supports
JSON persistence so representatives can be exported by engine operators and
imported by brokers, as the architecture in the paper's introduction
envisions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.representatives.term_stats import TermStats

__all__ = ["DatabaseRepresentative"]


class DatabaseRepresentative:
    """Per-term statistics plus the database size.

    Args:
        name: Name of the search engine / database this summarizes.
        n_documents: Number of documents in the database (``n``).
        term_stats: Mapping term -> :class:`TermStats`.
    """

    def __init__(self, name: str, n_documents: int, term_stats: Dict[str, TermStats]):
        if n_documents < 0:
            raise ValueError(f"n_documents must be >= 0, got {n_documents!r}")
        self.name = name
        self.n_documents = n_documents
        self._term_stats = dict(term_stats)

    # -- lookups ---------------------------------------------------------------

    def get(self, term: str) -> Optional[TermStats]:
        """Stats for ``term``, or None when the database never saw it."""
        return self._term_stats.get(term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_stats

    def __len__(self) -> int:
        return len(self._term_stats)

    @property
    def n_terms(self) -> int:
        """Number of distinct terms the representative covers."""
        return len(self._term_stats)

    def items(self) -> Iterator[Tuple[str, TermStats]]:
        return iter(self._term_stats.items())

    @property
    def has_max_weights(self) -> bool:
        """True when every term carries a stored maximum normalized weight
        (the quadruplet representation of Tables 1-9)."""
        return all(s.max_weight is not None for s in self._term_stats.values())

    def document_frequency(self, term: str) -> float:
        """``p * n`` — the expected document frequency of ``term``."""
        stats = self._term_stats.get(term)
        return stats.probability * self.n_documents if stats else 0.0

    # -- derived views -----------------------------------------------------------

    def as_triplets(self) -> "DatabaseRepresentative":
        """The triplet representative of Tables 10-12: ``mw`` withheld."""
        return DatabaseRepresentative(
            name=self.name,
            n_documents=self.n_documents,
            term_stats={t: s.without_max_weight() for t, s in self._term_stats.items()},
        )

    # -- persistence ---------------------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "kind": "representative",
            "name": self.name,
            "n_documents": self.n_documents,
            "terms": {
                term: [s.probability, s.mean, s.std, s.max_weight]
                for term, s in self._term_stats.items()
            },
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "DatabaseRepresentative":
        if payload.get("kind") != "representative":
            raise ValueError("payload is not a representative")
        stats = {
            term: TermStats(
                probability=values[0],
                mean=values[1],
                std=values[2],
                max_weight=values[3],
            )
            for term, values in payload["terms"].items()
        }
        return cls(
            name=payload["name"],
            n_documents=payload["n_documents"],
            term_stats=stats,
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the representative as JSON."""
        Path(path).write_text(json.dumps(self.to_json_dict()), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "DatabaseRepresentative":
        """Read a representative written by :meth:`save`."""
        return cls.from_json_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )

    def __eq__(self, other: object) -> bool:
        """Value equality — two representatives holding the same name, size
        and per-term statistics are the same summary, however they were
        obtained (built, loaded, or decoded off the wire)."""
        if not isinstance(other, DatabaseRepresentative):
            return NotImplemented
        return (
            self.name == other.name
            and self.n_documents == other.n_documents
            and self._term_stats == other._term_stats
        )

    def __repr__(self) -> str:
        return (
            f"DatabaseRepresentative({self.name!r}, docs={self.n_documents}, "
            f"terms={self.n_terms}, max_weights={self.has_max_weights})"
        )
