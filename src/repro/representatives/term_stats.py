"""Per-term statistics stored in a database representative."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TermStats"]


@dataclass(frozen=True)
class TermStats:
    """The paper's quadruplet for one term (triplet when ``max_weight`` is
    withheld, pair when ``std`` is additionally irrelevant).

    Attributes:
        probability: ``p`` — fraction of the database's documents containing
            the term.
        mean: ``w`` — average (normalized) weight of the term over the
            documents containing it.
        std: ``sigma`` — population standard deviation of those weights.
        max_weight: ``mw`` — maximum normalized weight; None in the triplet
            representation of the Tables 10-12 experiments, where it must be
            estimated from ``mean`` and ``std``.
    """

    probability: float
    mean: float
    std: float
    max_weight: Optional[float] = None

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability!r}")
        if self.mean < 0.0:
            raise ValueError(f"mean weight must be >= 0, got {self.mean!r}")
        if self.std < 0.0:
            raise ValueError(f"std must be >= 0, got {self.std!r}")
        if self.max_weight is not None and self.max_weight < 0.0:
            raise ValueError(f"max_weight must be >= 0, got {self.max_weight!r}")

    def without_max_weight(self) -> "TermStats":
        """The triplet view of this term (drops ``mw``)."""
        return TermStats(
            probability=self.probability, mean=self.mean, std=self.std, max_weight=None
        )
