"""Evaluation harness reproducing Section 4 of the paper.

:mod:`repro.evaluation.experiment` runs (query, threshold) sweeps comparing
estimated usefulness against exact usefulness; :mod:`repro.evaluation.metrics`
defines the paper's three criteria (match/mismatch, d-N, d-S);
:mod:`repro.evaluation.tables` renders results in the layout of the paper's
tables; :mod:`repro.evaluation.selection` scores metasearch engine-selection
quality against the exhaustive oracle; :mod:`repro.evaluation.harness` is
the golden-query evaluation harness — stratified committed query sets,
rank-aware scoring (MRR/NDCG/Kendall tau) of any broker backend against
the exact oracle, structural tripwires, and floor-gated reports.
"""

from repro.evaluation.experiment import (
    ExperimentResult,
    MethodSpec,
    run_usefulness_experiment,
)
from repro.evaluation.metrics import MethodAccumulator, ThresholdMetrics
from repro.evaluation.report import (
    markdown_comparison,
    markdown_error_table,
    markdown_match_table,
)
from repro.evaluation.selection import (
    SelectionQuality,
    evaluate_selection,
    selection_quality_from_sets,
)
from repro.evaluation.tables import (
    format_combined_table,
    format_error_table,
    format_match_table,
    format_sizing_table,
)

__all__ = [
    "ExperimentResult",
    "MethodAccumulator",
    "MethodSpec",
    "SelectionQuality",
    "ThresholdMetrics",
    "evaluate_selection",
    "format_combined_table",
    "format_error_table",
    "format_match_table",
    "format_sizing_table",
    "markdown_comparison",
    "markdown_error_table",
    "markdown_match_table",
    "run_usefulness_experiment",
    "selection_quality_from_sets",
]
