"""Engine-selection quality against the exhaustive oracle.

Section 3.1 of the paper argues that, with the max-weight subrange, the
estimator identifies exactly the right engines for single-term queries.
This module measures that operationally for any broker and query log:
per-query precision/recall of the selected engine set versus the engines
that truly hold above-threshold documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.corpus.query import Query
from repro.metasearch.broker import MetasearchBroker

__all__ = ["SelectionQuality", "evaluate_selection"]


@dataclass(frozen=True)
class SelectionQuality:
    """Aggregate selection accuracy over a query log.

    Attributes:
        n_queries: Queries evaluated.
        exact: Queries where selected set == true set.
        missed_engines: Total truly-useful engines not selected (recall
            losses — the harmful direction, per the paper).
        extra_engines: Total selected engines that were not useful
            (precision losses — wasted traffic).
        true_engine_total: Total size of the oracle sets (for rates).
        selected_engine_total: Total size of the selected sets.
    """

    n_queries: int
    exact: int
    missed_engines: int
    extra_engines: int
    true_engine_total: int
    selected_engine_total: int

    @property
    def exact_rate(self) -> float:
        return self.exact / self.n_queries if self.n_queries else 0.0

    @property
    def recall(self) -> float:
        """Fraction of truly useful engine invocations preserved."""
        if self.true_engine_total == 0:
            return 1.0
        return 1.0 - self.missed_engines / self.true_engine_total

    @property
    def precision(self) -> float:
        """Fraction of issued invocations that were actually useful."""
        if self.selected_engine_total == 0:
            return 1.0
        return 1.0 - self.extra_engines / self.selected_engine_total


def evaluate_selection(
    broker: MetasearchBroker,
    queries: Sequence[Query],
    threshold: float,
) -> SelectionQuality:
    """Score the broker's selection against the oracle for every query."""
    exact = 0
    missed = 0
    extra = 0
    true_total = 0
    selected_total = 0
    for query in queries:
        selected = set(broker.select(query, threshold))
        truth = set(broker.true_selection(query, threshold))
        if selected == truth:
            exact += 1
        missed += len(truth - selected)
        extra += len(selected - truth)
        true_total += len(truth)
        selected_total += len(selected)
    return SelectionQuality(
        n_queries=len(queries),
        exact=exact,
        missed_engines=missed,
        extra_engines=extra,
        true_engine_total=true_total,
        selected_engine_total=selected_total,
    )
