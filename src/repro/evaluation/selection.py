"""Engine-selection quality against the exhaustive oracle.

Section 3.1 of the paper argues that, with the max-weight subrange, the
estimator identifies exactly the right engines for single-term queries.
This module measures that operationally for any broker and query log:
per-query precision/recall of the selected engine set versus the engines
that truly hold above-threshold documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Sequence, Tuple

from repro.corpus.query import Query
from repro.metasearch.broker import MetasearchBroker

__all__ = [
    "SelectionQuality",
    "evaluate_selection",
    "selection_quality_from_sets",
]


@dataclass(frozen=True)
class SelectionQuality:
    """Aggregate selection accuracy over a query log.

    Every rate is defined on its zero-denominator edge, and the defined
    behavior is pinned by regression tests: an empty query log (or one
    whose oracle sets are all empty) scores *perfect*, not zero — there
    was nothing to miss and nothing was wasted.  This is the vacuous-truth
    convention the rank metrics in
    :mod:`repro.evaluation.harness.ranking` share.

    Attributes:
        n_queries: Queries evaluated.
        exact: Queries where selected set == true set.
        missed_engines: Total truly-useful engines not selected (recall
            losses — the harmful direction, per the paper).
        extra_engines: Total selected engines that were not useful
            (precision losses — wasted traffic).
        true_engine_total: Total size of the oracle sets (for rates).
        selected_engine_total: Total size of the selected sets.
    """

    n_queries: int
    exact: int
    missed_engines: int
    extra_engines: int
    true_engine_total: int
    selected_engine_total: int

    @property
    def exact_rate(self) -> float:
        """Fraction of queries selected exactly right (1.0 on an empty
        log: every one of zero queries was exact)."""
        if self.n_queries == 0:
            return 1.0
        return self.exact / self.n_queries

    @property
    def recall(self) -> float:
        """Fraction of truly useful engine invocations preserved (1.0
        when the oracle sets are empty — nothing could be missed)."""
        if self.true_engine_total == 0:
            return 1.0
        return 1.0 - self.missed_engines / self.true_engine_total

    @property
    def precision(self) -> float:
        """Fraction of issued invocations that were actually useful (1.0
        when nothing was selected — nothing was wasted)."""
        if self.selected_engine_total == 0:
            return 1.0
        return 1.0 - self.extra_engines / self.selected_engine_total

    @property
    def f1(self) -> float:
        """Harmonic mean of micro precision and recall (0.0 only when
        both are 0, which the 1.0-on-empty conventions make unreachable
        for empty inputs)."""
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)


def selection_quality_from_sets(
    pairs: Iterable[Tuple[AbstractSet[str], AbstractSet[str]]],
) -> SelectionQuality:
    """Accumulate :class:`SelectionQuality` from ``(selected, truth)``
    engine-set pairs — the shared core of :func:`evaluate_selection` and
    the golden-set harness, which brings its own oracle."""
    n_queries = exact = missed = extra = true_total = selected_total = 0
    for selected, truth in pairs:
        selected, truth = set(selected), set(truth)
        n_queries += 1
        if selected == truth:
            exact += 1
        missed += len(truth - selected)
        extra += len(selected - truth)
        true_total += len(truth)
        selected_total += len(selected)
    return SelectionQuality(
        n_queries=n_queries,
        exact=exact,
        missed_engines=missed,
        extra_engines=extra,
        true_engine_total=true_total,
        selected_engine_total=selected_total,
    )


def evaluate_selection(
    broker: MetasearchBroker,
    queries: Sequence[Query],
    threshold: float,
) -> SelectionQuality:
    """Score the broker's selection against the oracle for every query."""
    return selection_quality_from_sets(
        (
            set(broker.select(query, threshold)),
            set(broker.true_selection(query, threshold)),
        )
        for query in queries
    )
