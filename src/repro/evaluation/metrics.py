"""The paper's evaluation criteria.

For each threshold ``T`` and database ``D`` (Section 4):

* ``U`` — number of queries that identify ``D`` as useful under the *true*
  NoDoc (at least one document with similarity above ``T``).
* ``match`` — of those ``U`` queries, how many also identify ``D`` as useful
  under the *estimated* NoDoc (estimates rounded to integers).
* ``mismatch`` — queries that identify ``D`` as useful under the estimate
  but not in reality.
* ``d-N`` — mean absolute difference between true and estimated NoDoc over
  the ``U`` truly-useful queries.
* ``d-S`` — mean absolute difference between true and estimated AvgSim over
  the same queries.

:class:`MethodAccumulator` ingests per-query (truth, estimate) pairs and
produces :class:`ThresholdMetrics` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.types import Usefulness

__all__ = ["ThresholdMetrics", "MethodAccumulator"]


@dataclass(frozen=True)
class ThresholdMetrics:
    """Aggregated evaluation numbers for one (method, threshold) cell.

    Zero-denominator convention (pinned by regression tests): when no
    query is truly useful (``useful_queries == 0``) there are no error
    samples, so ``d_nodoc``/``d_avgsim`` are reported as 0.0 — "no
    measured error", not "perfect" — and :attr:`match_rate` is 1.0, the
    vacuous-truth reading (all zero opportunities were matched).
    ``mismatch`` stays an absolute count; it has no natural denominator
    at a threshold where nothing is useful.
    """

    threshold: float
    useful_queries: int  # U
    match: int
    mismatch: int
    d_nodoc: float  # d-N
    d_avgsim: float  # d-S

    def match_mismatch(self) -> str:
        """The paper's "match/mismatch" cell, e.g. ``'1423/13'``."""
        return f"{self.match}/{self.mismatch}"

    @property
    def match_rate(self) -> float:
        """Fraction of truly useful queries the estimate also identified
        as useful (1.0 when there were none to identify)."""
        if self.useful_queries == 0:
            return 1.0
        return self.match / self.useful_queries


class MethodAccumulator:
    """Streaming accumulator of the five criteria across a query log.

    One accumulator per estimation method; ``add`` is called once per query
    with the parallel truth/estimate lists over the experiment's thresholds.
    """

    def __init__(self, thresholds: Sequence[float]):
        self.thresholds = tuple(thresholds)
        n = len(self.thresholds)
        self._useful = np.zeros(n, dtype=np.int64)
        self._match = np.zeros(n, dtype=np.int64)
        self._mismatch = np.zeros(n, dtype=np.int64)
        self._abs_nodoc_err = np.zeros(n)
        self._abs_avgsim_err = np.zeros(n)
        self._n_queries = 0

    @property
    def n_queries(self) -> int:
        """Number of queries ingested so far."""
        return self._n_queries

    def add(
        self, truths: Sequence[Usefulness], estimates: Sequence[Usefulness]
    ) -> None:
        """Ingest one query's truth and estimates (parallel to thresholds)."""
        if len(truths) != len(self.thresholds) or len(estimates) != len(
            self.thresholds
        ):
            raise ValueError("truths/estimates must align with thresholds")
        self._n_queries += 1
        for i, (truth, estimate) in enumerate(zip(truths, estimates)):
            truly_useful = truth.nodoc >= 1.0
            estimated_useful = estimate.identifies_useful
            if truly_useful:
                self._useful[i] += 1
                if estimated_useful:
                    self._match[i] += 1
                self._abs_nodoc_err[i] += abs(truth.nodoc - estimate.nodoc)
                self._abs_avgsim_err[i] += abs(truth.avgsim - estimate.avgsim)
            elif estimated_useful:
                self._mismatch[i] += 1

    def metrics(self) -> List[ThresholdMetrics]:
        """The finished per-threshold rows."""
        rows = []
        for i, threshold in enumerate(self.thresholds):
            useful = int(self._useful[i])
            rows.append(
                ThresholdMetrics(
                    threshold=threshold,
                    useful_queries=useful,
                    match=int(self._match[i]),
                    mismatch=int(self._mismatch[i]),
                    d_nodoc=(self._abs_nodoc_err[i] / useful) if useful else 0.0,
                    d_avgsim=(self._abs_avgsim_err[i] / useful) if useful else 0.0,
                )
            )
        return rows
