"""Markdown rendering of experiment results.

Turns :class:`~repro.evaluation.experiment.ExperimentResult` objects into
GitHub-flavoured markdown tables — the format EXPERIMENTS.md and project
reports are written in — and can diff a result against the paper's
published rows from :mod:`repro.evaluation.paper_reference`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.evaluation.experiment import ExperimentResult
from repro.evaluation.paper_reference import PaperRow

__all__ = ["markdown_match_table", "markdown_error_table", "markdown_comparison"]


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    out = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for __ in headers) + "|",
    ]
    for row in rows:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def markdown_match_table(
    result: ExperimentResult, methods: Optional[Sequence[str]] = None
) -> str:
    """Tables 1/3/5 layout as markdown."""
    methods = list(methods) if methods is not None else list(result.methods)
    headers = ["T", "U"] + [result.labels[m] for m in methods]
    rows = []
    useful = result.useful_counts()
    for i, threshold in enumerate(result.thresholds):
        row = [f"{threshold:.1f}", str(useful[i])]
        row.extend(result.metrics[m][i].match_mismatch() for m in methods)
        rows.append(row)
    return _md_table(headers, rows)


def markdown_error_table(
    result: ExperimentResult, methods: Optional[Sequence[str]] = None
) -> str:
    """Tables 2/4/6 layout as markdown."""
    methods = list(methods) if methods is not None else list(result.methods)
    headers = ["T", "U"]
    for key in methods:
        headers.extend([f"{result.labels[key]} d-N", f"{result.labels[key]} d-S"])
    rows = []
    useful = result.useful_counts()
    for i, threshold in enumerate(result.thresholds):
        row = [f"{threshold:.1f}", str(useful[i])]
        for key in methods:
            cell = result.metrics[key][i]
            row.extend([f"{cell.d_nodoc:.2f}", f"{cell.d_avgsim:.3f}"])
        rows.append(row)
    return _md_table(headers, rows)


def markdown_comparison(
    result: ExperimentResult,
    paper_rows: Sequence[PaperRow],
    method: str,
    paper_method: Optional[str] = None,
) -> str:
    """Side-by-side markdown of one method vs the paper's published rows.

    Thresholds are matched by value; a reproduction threshold absent from
    the published table renders with empty paper columns.
    """
    paper_method = paper_method or method
    by_threshold = {row.threshold: row for row in paper_rows}
    headers = [
        "T",
        "ours m/mis", "ours d-N", "ours d-S",
        "paper m/mis", "paper d-N", "paper d-S",
    ]
    rows = []
    for i, threshold in enumerate(result.thresholds):
        cell = result.metrics[method][i]
        row = [
            f"{threshold:.1f}",
            cell.match_mismatch(),
            f"{cell.d_nodoc:.2f}",
            f"{cell.d_avgsim:.3f}",
        ]
        published = by_threshold.get(threshold)
        if published is not None and paper_method in published.cells:
            p = published.cells[paper_method]
            row.extend(
                [f"{p.match}/{p.mismatch}", f"{p.d_nodoc:.2f}", f"{p.d_avgsim:.3f}"]
            )
        elif published is not None and len(published.cells) == 1:
            p = next(iter(published.cells.values()))
            row.extend(
                [f"{p.match}/{p.mismatch}", f"{p.d_nodoc:.2f}", f"{p.d_avgsim:.3f}"]
            )
        else:
            row.extend(["", "", ""])
        rows.append(row)
    return _md_table(headers, rows)
