"""Stratified golden query sets over a deterministic evaluation fleet.

A golden set is not one query log but several *strata*, each isolating a
regime where estimation quality behaves differently (the axes ROADMAP and
the paper's Section 4 discussion call out):

* ``single_term`` — the paper's guarantee cases: with the max-weight
  subrange, single-term selection should be exact.
* ``long`` — 5-6 term queries, where the generating-function expansion
  is deepest and estimators diverge most.
* ``no_above_threshold`` — queries whose true maximum similarity sits
  below the threshold on *every* engine: the right answer is to select
  nothing, the regime where mismatches (wasted traffic) live.
* ``near_threshold`` — queries with at least one engine whose true
  maximum similarity falls inside a narrow band around the threshold:
  rounding and tie behavior decide selection.
* ``drifted`` — queries drawn from a *drifted* twin of the corpus model
  (same vocabulary, different topical cores): the vocabulary-mismatch
  regime a churning corpus produces between query log and snapshot.

Everything is a pure function of one ``seed``: the fleet, every stratum's
query stream, and the filters (which consult the exact oracle on the
fleet's engines) are all derived from it, so a committed golden set is
byte-reproducible with ``generate_golden_strata(seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.collection import Collection
from repro.corpus.query import Query
from repro.corpus.synth.newsgroups import NewsgroupModel
from repro.corpus.synth.queries import QueryLogModel
from repro.engine.search_engine import SearchEngine

__all__ = [
    "DEFAULT_N_ENGINES",
    "DEFAULT_SEED",
    "GoldenStratum",
    "STRATUM_NAMES",
    "build_eval_fleet",
    "generate_golden_strata",
]

GOLDEN_FORMAT = 1
DEFAULT_SEED = 1999
DEFAULT_N_ENGINES = 6
DEFAULT_QUERIES_PER_STRATUM = 32

# The evaluation fleet reuses the quick small-scale corpus the fleet/stats
# CLI demos run on, truncated to the requested engine count.
_EVAL_GROUP_SIZES = [60, 50, 40, 30, 25, 20, 15, 12]

STRATUM_NAMES = (
    "single_term",
    "long",
    "no_above_threshold",
    "near_threshold",
    "drifted",
)


@dataclass(frozen=True)
class GoldenStratum:
    """One committed stratum: its queries plus how to score them.

    Attributes:
        name: Stratum identifier (one of :data:`STRATUM_NAMES` for the
            built-in sets; custom sets may add their own).
        description: One-line regime description for reports.
        seed: The master seed the stratum was derived from.
        threshold: Similarity threshold the stratum is scored at.
        diagnostic_threshold: Strictly higher threshold the monotonicity
            tripwire re-estimates at (NoDoc must not increase).
        queries: The committed queries.
    """

    name: str
    description: str
    seed: int
    threshold: float
    diagnostic_threshold: float
    queries: Tuple[Query, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.diagnostic_threshold > self.threshold:
            raise ValueError(
                f"diagnostic_threshold {self.diagnostic_threshold!r} must "
                f"exceed threshold {self.threshold!r}"
            )

    @property
    def n_queries(self) -> int:
        return len(self.queries)


def build_eval_fleet(
    seed: int = DEFAULT_SEED, n_engines: int = DEFAULT_N_ENGINES
) -> List[Collection]:
    """The deterministic evaluation fleet: ``n_engines`` small topical
    collections from the quick synthetic corpus, all derived from ``seed``."""
    model = _eval_model(seed, n_engines)
    return [model.generate_group(g) for g in range(n_engines)]


def _eval_model(seed: int, n_engines: int) -> NewsgroupModel:
    if not 1 <= n_engines <= len(_EVAL_GROUP_SIZES):
        raise ValueError(
            f"n_engines must be in [1, {len(_EVAL_GROUP_SIZES)}], got {n_engines!r}"
        )
    return NewsgroupModel(
        vocab_size=4000,
        topic_size=120,
        topic_band=(50, 1500),
        mean_length=80,
        seed=seed,
        group_sizes=_EVAL_GROUP_SIZES[:n_engines],
    )


def _drifted_model(seed: int, n_engines: int) -> NewsgroupModel:
    """The drifted twin: same shape and vocabulary, different topical
    cores (a distinct master seed re-draws every group's topic terms)."""
    model = _eval_model(seed, n_engines)
    return NewsgroupModel(
        vocab_size=model.vocab_size,
        topic_size=model.topic_size,
        topic_band=model.topic_band,
        mean_length=model.mean_length,
        seed=seed + 104729,  # a fixed large offset; any disjoint stream works
        group_sizes=list(model.group_sizes),
    )


def _query_stream(
    model: NewsgroupModel,
    length_probs: Sequence[float],
    seed: int,
    n_candidates: int,
) -> List[Query]:
    return QueryLogModel(
        model, length_probs=length_probs, seed=seed
    ).generate(n_candidates)


def _max_similarity(engines: Sequence[SearchEngine], query: Query) -> float:
    return max(engine.max_similarity(query) for engine in engines)


def _take(candidates: Sequence[Query], keep, n: int, stratum: str) -> Tuple[Query, ...]:
    chosen: List[Query] = []
    for query in candidates:
        if keep(query):
            chosen.append(query)
            if len(chosen) == n:
                return tuple(chosen)
    raise RuntimeError(
        f"stratum {stratum!r}: only {len(chosen)}/{n} queries passed the "
        f"filter in {len(candidates)} candidates — widen the candidate "
        "budget or loosen the filter"
    )


def generate_golden_strata(
    seed: int = DEFAULT_SEED,
    n_engines: int = DEFAULT_N_ENGINES,
    n_queries: int = DEFAULT_QUERIES_PER_STRATUM,
    engines: Optional[Sequence[SearchEngine]] = None,
) -> Dict[str, GoldenStratum]:
    """Generate every built-in stratum, keyed by name.

    Args:
        seed: Master seed; fleet and queries both derive from it.
        n_engines: Evaluation fleet width.
        n_queries: Queries per stratum.
        engines: Pre-built engines over :func:`build_eval_fleet` output
            (rebuilt here when omitted — passing them just saves work).
    """
    model = _eval_model(seed, n_engines)
    if engines is None:
        engines = [SearchEngine(c) for c in build_eval_fleet(seed, n_engines)]
    budget = max(40 * n_queries, 1000)

    strata: Dict[str, GoldenStratum] = {}

    single = _take(
        _query_stream(model, (1.0,), seed + 1, budget),
        lambda q: _max_similarity(engines, q) > 0.0,
        n_queries,
        "single_term",
    )
    strata["single_term"] = GoldenStratum(
        name="single_term",
        description="single-term queries (the paper's selection guarantee)",
        seed=seed,
        threshold=0.25,
        diagnostic_threshold=0.4,
        queries=single,
    )

    long_queries = _take(
        _query_stream(model, (0.0, 0.0, 0.0, 0.0, 0.45, 0.55), seed + 2, budget),
        lambda q: _max_similarity(engines, q) > 0.0,
        n_queries,
        "long",
    )
    strata["long"] = GoldenStratum(
        name="long",
        description="5-6 term queries (deepest expansions)",
        seed=seed,
        threshold=0.15,
        diagnostic_threshold=0.3,
        queries=long_queries,
    )

    t_none = 0.5
    none_above = _take(
        _query_stream(model, (0.1, 0.3, 0.3, 0.3), seed + 3, budget),
        lambda q: 0.0 < _max_similarity(engines, q) <= t_none,
        n_queries,
        "no_above_threshold",
    )
    strata["no_above_threshold"] = GoldenStratum(
        name="no_above_threshold",
        description="no engine truly above threshold (select-nothing regime)",
        seed=seed,
        threshold=t_none,
        diagnostic_threshold=0.7,
        queries=none_above,
    )

    t_near, band = 0.25, 0.06
    near = _take(
        _query_stream(model, (0.35, 0.35, 0.3), seed + 4, budget),
        lambda q: any(
            abs(engine.max_similarity(q) - t_near) <= band for engine in engines
        ),
        n_queries,
        "near_threshold",
    )
    strata["near_threshold"] = GoldenStratum(
        name="near_threshold",
        description=f"true max similarity within ±{band} of the threshold",
        seed=seed,
        threshold=t_near,
        diagnostic_threshold=0.4,
        queries=near,
    )

    drifted = tuple(
        _query_stream(
            _drifted_model(seed, n_engines), (0.25, 0.3, 0.25, 0.2), seed + 5,
            n_queries,
        )
    )
    strata["drifted"] = GoldenStratum(
        name="drifted",
        description="queries from a drifted topical model (vocabulary mismatch)",
        seed=seed,
        threshold=0.2,
        diagnostic_threshold=0.35,
        queries=drifted,
    )

    return strata
