"""Versioned JSON persistence for golden query sets.

One file per stratum plus a ``manifest.json`` naming the fleet the sets
were generated against.  Serialization is *canonical* — sorted keys,
two-space indent, trailing newline — so regenerating with the same seed
reproduces the committed files byte for byte, which the regression test
asserts (a silent generator change cannot slip past review as a diff-less
commit).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.corpus.query import Query
from repro.evaluation.harness.strata import (
    DEFAULT_N_ENGINES,
    DEFAULT_SEED,
    GOLDEN_FORMAT,
    GoldenStratum,
    generate_golden_strata,
)

__all__ = [
    "canonical_json_bytes",
    "load_golden_strata",
    "manifest_payload",
    "stratum_payload",
    "stratum_from_payload",
    "write_golden_strata",
]


def canonical_json_bytes(payload: dict) -> bytes:
    """The one true byte encoding of a golden payload."""
    return (
        json.dumps(payload, indent=2, sort_keys=True, ensure_ascii=True) + "\n"
    ).encode("ascii")


def stratum_payload(stratum: GoldenStratum) -> dict:
    return {
        "format": GOLDEN_FORMAT,
        "stratum": stratum.name,
        "description": stratum.description,
        "seed": stratum.seed,
        "threshold": stratum.threshold,
        "diagnostic_threshold": stratum.diagnostic_threshold,
        "queries": [
            {"terms": list(q.terms), "weights": list(q.weights)}
            for q in stratum.queries
        ],
    }


def stratum_from_payload(payload: dict) -> GoldenStratum:
    if payload.get("format") != GOLDEN_FORMAT:
        raise ValueError(
            f"unsupported golden format {payload.get('format')!r} "
            f"(expected {GOLDEN_FORMAT})"
        )
    return GoldenStratum(
        name=str(payload["stratum"]),
        description=str(payload["description"]),
        seed=int(payload["seed"]),
        threshold=float(payload["threshold"]),
        diagnostic_threshold=float(payload["diagnostic_threshold"]),
        queries=tuple(
            Query(terms=tuple(q["terms"]), weights=tuple(float(w) for w in q["weights"]))
            for q in payload["queries"]
        ),
    )


def manifest_payload(
    strata: Dict[str, GoldenStratum],
    seed: int,
    n_engines: int,
) -> dict:
    return {
        "format": GOLDEN_FORMAT,
        "seed": seed,
        "n_engines": n_engines,
        "strata": sorted(strata),
    }


def write_golden_strata(
    directory: Union[str, Path],
    seed: int = DEFAULT_SEED,
    n_engines: int = DEFAULT_N_ENGINES,
    strata: Dict[str, GoldenStratum] = None,
) -> Dict[str, Path]:
    """Generate (unless given) and write every stratum plus the manifest;
    returns the written paths keyed by stratum name (manifest under
    ``"manifest"``)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if strata is None:
        strata = generate_golden_strata(seed, n_engines)
    written: Dict[str, Path] = {}
    for name, stratum in sorted(strata.items()):
        path = directory / f"{name}.json"
        path.write_bytes(canonical_json_bytes(stratum_payload(stratum)))
        written[name] = path
    manifest = directory / "manifest.json"
    manifest.write_bytes(
        canonical_json_bytes(manifest_payload(strata, seed, n_engines))
    )
    written["manifest"] = manifest
    return written


def load_golden_strata(directory: Union[str, Path]) -> Dict[str, GoldenStratum]:
    """Load every committed stratum named by the directory's manifest."""
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="ascii"))
    if manifest.get("format") != GOLDEN_FORMAT:
        raise ValueError(
            f"unsupported golden manifest format {manifest.get('format')!r}"
        )
    strata = {}
    for name in manifest["strata"]:
        payload = json.loads((directory / f"{name}.json").read_text(encoding="ascii"))
        stratum = stratum_from_payload(payload)
        if stratum.name != name:
            raise ValueError(
                f"{name}.json declares stratum {stratum.name!r}"
            )
        strata[name] = stratum
    return strata


def golden_manifest(directory: Union[str, Path]) -> dict:
    """The parsed manifest (fleet seed and width the sets were built for)."""
    return json.loads(
        (Path(directory) / "manifest.json").read_text(encoding="ascii")
    )
