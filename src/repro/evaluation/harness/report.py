"""Timestamped markdown + JSON eval reports, and the floor gate.

Modeled on :mod:`repro.evaluation.report` (markdown tables) and the
benchmark JSON artifacts: ``write_report`` emits
``results/eval_<config>.json`` (the machine artifact CI uploads and
gates on) and ``results/eval_<config>.md`` (the human summary), both
stamped with the same UTC timestamp.

``check_floors`` is the regression gate: a committed floors file maps
``strata -> estimator -> metric -> floor`` and every present metric in a
report must meet its floor (tripwire counters are ceilings at 0 via the
``tripwires_ok`` pseudo-metric).  It returns violations instead of
raising so CI can print all of them before failing.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.evaluation.harness.runner import EvalResult

__all__ = ["check_floors", "render_markdown", "utc_timestamp", "write_report"]

_METRIC_COLUMNS = (
    "precision",
    "recall",
    "f1",
    "exact_set_rate",
    "mrr",
    "ndcg",
    "kendall_tau",
)


def utc_timestamp() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    out = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for __ in headers) + "|",
    ]
    for row in rows:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def _fmt(value) -> str:
    if value is None:
        return "n/a"
    return f"{value:.3f}"


def render_markdown(result: EvalResult) -> str:
    """The human-readable report: one metric table and one tripwire
    summary per stratum, plus the inter-estimator agreement band."""
    payload = result.payload
    lines = [
        f"# Engine-selection evaluation — `{payload['config']}`",
        "",
        f"Generated {payload['generated_at']} · seed {payload['seed']} · "
        f"{len(payload['engines'])} engines · estimators: "
        + ", ".join(f"`{e}`" for e in payload["estimators"]),
        "",
    ]
    for name in sorted(payload["strata"]):
        stratum = payload["strata"][name]
        lines.append(f"## {name}")
        lines.append("")
        lines.append(
            f"{stratum['description']} — {stratum['n_queries']} queries at "
            f"threshold {stratum['threshold']:g} "
            f"({stratum['oracle']['useful_queries']} with a truly useful "
            f"engine, mean truth-set size "
            f"{stratum['oracle']['mean_truth_set_size']:.2f})"
        )
        lines.append("")
        headers = ["estimator"] + list(_METRIC_COLUMNS) + ["tripwires"]
        rows = []
        for estimator in sorted(stratum["estimators"]):
            scores = stratum["estimators"][estimator]
            wires = scores["tripwires"]
            status = (
                "ok"
                if wires["ok"]
                else "FAIL ("
                + ", ".join(
                    f"{key}={wires[key]}"
                    for key in (
                        "monotonicity_violations",
                        "degenerate_rankings",
                        "missed_all",
                    )
                    if wires[key]
                )
                + ")"
            )
            rows.append(
                [f"`{estimator}`"]
                + [_fmt(scores[m]) for m in _METRIC_COLUMNS]
                + [status]
            )
        lines.append(_md_table(headers, rows))
        agreement = stratum["agreement"]
        lines.append("")
        lines.append(
            f"Inter-estimator agreement: mean pairwise tau-b "
            f"{agreement['mean_pairwise_tau']:.3f}"
            + (
                f"; below floor: {', '.join(agreement['below_floor'])}"
                if agreement["below_floor"]
                else ""
            )
        )
        lines.append("")
    return "\n".join(lines)


def write_report(
    result: EvalResult, out_dir: Union[str, Path]
) -> Dict[str, Path]:
    """Write ``eval_<config>.{md,json}``; returns the two paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if not result.payload.get("generated_at"):
        result.payload["generated_at"] = utc_timestamp()
    json_path = out_dir / f"eval_{result.config}.json"
    md_path = out_dir / f"eval_{result.config}.md"
    json_path.write_text(
        json.dumps(result.payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    md_path.write_text(render_markdown(result) + "\n", encoding="utf-8")
    return {"json": json_path, "md": md_path}


def check_floors(
    payload: dict, floors: dict
) -> List[str]:
    """Violations of a committed floors file against a report payload.

    Floors format::

        {"strata": {stratum: {estimator: {metric: floor, ...}}}}

    ``metric`` is any numeric key of the estimator's scores; the
    pseudo-metric ``tripwires_ok`` (floor ``true``) requires the
    tripwires to be clean.  A floored metric that is ``null`` in the
    report (e.g. MRR with no relevant queries) is a violation — the
    floor asserts the metric exists.  Unknown strata/estimators/metrics
    are violations too: a floor that silently stops binding is how
    regressions slip through.
    """
    violations: List[str] = []
    for stratum_name, per_estimator in floors.get("strata", {}).items():
        stratum = payload.get("strata", {}).get(stratum_name)
        if stratum is None:
            violations.append(f"{stratum_name}: stratum missing from report")
            continue
        for estimator, metric_floors in per_estimator.items():
            scores = stratum["estimators"].get(estimator)
            if scores is None:
                violations.append(
                    f"{stratum_name}/{estimator}: estimator missing from report"
                )
                continue
            for metric, floor in metric_floors.items():
                if metric == "tripwires_ok":
                    if bool(floor) and not scores["tripwires"]["ok"]:
                        violations.append(
                            f"{stratum_name}/{estimator}: tripwires fired "
                            f"{scores['tripwires']}"
                        )
                    continue
                value = scores.get(metric)
                if value is None:
                    violations.append(
                        f"{stratum_name}/{estimator}/{metric}: "
                        f"missing or null (floor {floor})"
                    )
                elif value < floor:
                    violations.append(
                        f"{stratum_name}/{estimator}/{metric}: "
                        f"{value:.4f} < floor {floor}"
                    )
    return violations


def load_floors(path: Union[str, Path]) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))
