"""The harness core: score any broker backend over golden strata.

A *backend* is anything with the broker's ``estimate_batch(queries,
thresholds) -> List[List[EstimatedUsefulness]]`` surface — the in-process
dict broker, the columnar broker, or the sharded
:class:`~repro.serving.coordinator.ShardedFleet` — which is exactly what
makes the harness a differential quality gate: every configuration is
scored against the same exact oracle with the same metrics, so two
backends claiming bit-exactness must produce *identical* reports.

Per (stratum, estimator) the harness computes:

* selected-set quality versus the oracle set (macro precision / recall /
  F1 and exact-set rate per query, plus the micro
  :class:`~repro.evaluation.selection.SelectionQuality` counts),
* rank quality of the usefulness ordering (MRR of the first truly
  useful engine, NDCG with true NoDoc as graded gain, Kendall tau-b
  against the oracle ordering),
* the structural tripwires of
  :mod:`repro.evaluation.harness.diagnostics`.

The oracle is computed once per stratum from the engines' exhaustive
similarity scan (:func:`repro.core.truth.true_usefulness`), never from
any backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.truth import true_usefulness
from repro.engine.search_engine import SearchEngine
from repro.evaluation.harness.diagnostics import (
    agreement_matrix,
    run_tripwires,
)
from repro.evaluation.harness.ranking import (
    kendall_tau_b,
    mean,
    mrr,
    ndcg,
    set_f1,
    set_precision,
    set_recall,
)
from repro.evaluation.harness.strata import GoldenStratum
from repro.evaluation.selection import (
    SelectionQuality,
    selection_quality_from_sets,
)
from repro.metasearch.selection import SelectionPolicy, ThresholdPolicy

__all__ = [
    "EVAL_FORMAT",
    "EvalResult",
    "StratumOracle",
    "compute_oracle",
    "run_evaluation",
]

EVAL_FORMAT = 1


@dataclass(frozen=True)
class StratumOracle:
    """Exact per-query ground truth for one stratum.

    Attributes:
        nodoc_rows: Per query, true NoDoc by engine name.
        avgsim_rows: Per query, true AvgSim by engine name.
        truth_sets: Per query, the engines truly holding at least one
            document above the threshold.
        rankings: Per query, engine names best-first under the broker's
            total order ``(-nodoc, -avgsim, name)``.
    """

    nodoc_rows: List[Dict[str, float]]
    avgsim_rows: List[Dict[str, float]]
    truth_sets: List[frozenset]
    rankings: List[List[str]]


def compute_oracle(
    engines: Sequence[SearchEngine], stratum: GoldenStratum
) -> StratumOracle:
    """Exhaustive truth for every (query, engine) of the stratum."""
    nodoc_rows: List[Dict[str, float]] = []
    avgsim_rows: List[Dict[str, float]] = []
    truth_sets: List[frozenset] = []
    rankings: List[List[str]] = []
    for query in stratum.queries:
        nodoc: Dict[str, float] = {}
        avgsim: Dict[str, float] = {}
        for engine in engines:
            truth = true_usefulness(engine, query, stratum.threshold)
            nodoc[engine.name] = truth.nodoc
            avgsim[engine.name] = truth.avgsim
        nodoc_rows.append(nodoc)
        avgsim_rows.append(avgsim)
        truth_sets.append(
            frozenset(name for name, n in nodoc.items() if n >= 1.0)
        )
        rankings.append(
            sorted(nodoc, key=lambda n: (-nodoc[n], -avgsim[n], n))
        )
    return StratumOracle(
        nodoc_rows=nodoc_rows,
        avgsim_rows=avgsim_rows,
        truth_sets=truth_sets,
        rankings=rankings,
    )


@dataclass
class EvalResult:
    """A finished evaluation: the JSON-able report plus per-query detail.

    ``payload`` is everything the report writer serializes.  ``detail``
    keeps the per-query rankings and selected sets (``detail[stratum]
    [estimator]``) for differential tests — deliberately *not* part of
    the JSON, which stays an aggregate artifact.
    """

    payload: dict
    detail: Dict[str, Dict[str, dict]] = field(default_factory=dict)

    @property
    def config(self) -> str:
        return self.payload["config"]

    def comparable(self) -> dict:
        """The payload minus run identity (config label, timestamp) — two
        backends claiming exactness must agree on this, byte for byte."""
        return {
            k: v
            for k, v in self.payload.items()
            if k not in ("config", "generated_at")
        }


def _score_estimator(
    backend,
    stratum: GoldenStratum,
    oracle: StratumOracle,
    policy: SelectionPolicy,
) -> tuple:
    """Score one backend over one stratum; returns (scores, detail,
    nodoc_rows) where nodoc_rows feeds the agreement matrix."""
    queries = list(stratum.queries)
    low_rows = backend.estimate_batch(queries, stratum.threshold)
    high_rows = backend.estimate_batch(queries, stratum.diagnostic_threshold)

    rankings: List[List[str]] = []
    selected_sets: List[frozenset] = []
    nodoc_rows: List[Dict[str, float]] = []
    rounded_rows: List[Dict[str, int]] = []
    high_nodoc_rows: List[Dict[str, float]] = []
    for row, high_row in zip(low_rows, high_rows):
        rankings.append([e.engine for e in row])
        selected_sets.append(frozenset(policy.select(row)))
        nodoc_rows.append({e.engine: e.usefulness.nodoc for e in row})
        rounded_rows.append(
            {e.engine: e.usefulness.nodoc_rounded for e in row}
        )
        high_nodoc_rows.append(
            {e.engine: e.usefulness.nodoc for e in high_row}
        )

    precisions = [
        set_precision(sel, truth)
        for sel, truth in zip(selected_sets, oracle.truth_sets)
    ]
    recalls = [
        set_recall(sel, truth)
        for sel, truth in zip(selected_sets, oracle.truth_sets)
    ]
    f1s = [
        set_f1(sel, truth)
        for sel, truth in zip(selected_sets, oracle.truth_sets)
    ]
    exact = sum(
        1 for sel, truth in zip(selected_sets, oracle.truth_sets) if sel == truth
    )
    micro: SelectionQuality = selection_quality_from_sets(
        zip(selected_sets, oracle.truth_sets)
    )
    rank_mrr = mrr(rankings, oracle.truth_sets)
    ndcgs = [
        ndcg(ranking, gains)
        for ranking, gains in zip(rankings, oracle.nodoc_rows)
    ]
    taus = [
        kendall_tau_b(est, truth)
        for est, truth in zip(nodoc_rows, oracle.nodoc_rows)
    ]
    tripwires = run_tripwires(
        nodoc_rows, high_nodoc_rows, rounded_rows, oracle.nodoc_rows
    )
    scores = {
        "precision": mean(precisions),
        "recall": mean(recalls),
        "f1": mean(f1s),
        "exact_set_rate": exact / len(queries) if queries else 1.0,
        "micro_precision": micro.precision,
        "micro_recall": micro.recall,
        "mrr": rank_mrr,
        "ndcg": mean(ndcgs),
        "kendall_tau": mean(taus),
        "tripwires": tripwires.as_dict(),
    }
    detail = {
        "rankings": rankings,
        "selected": [sorted(s) for s in selected_sets],
        "nodoc": nodoc_rows,
    }
    return scores, detail, nodoc_rows


def run_evaluation(
    backends: Mapping[str, object],
    engines: Sequence[SearchEngine],
    strata: Mapping[str, GoldenStratum],
    *,
    config: str,
    seed: Optional[int] = None,
    policy: Optional[SelectionPolicy] = None,
    generated_at: str = "",
) -> EvalResult:
    """Score every backend (one per estimator name) over every stratum.

    Args:
        backends: Estimator name -> backend exposing ``estimate_batch``.
            Each backend must rank the same engines as ``engines``.
        engines: The fleet the oracle is computed on.
        strata: Golden strata keyed by name.
        config: Label for the backend configuration under test
            (``dict`` / ``columnar`` / ``sharded`` / custom).
        seed: The golden seed, echoed into the report.
        policy: Selection policy; the paper's threshold criterion by
            default.
        generated_at: Timestamp string stamped into the report (callers
            pass it so two runs can be compared with it stripped).
    """
    policy = policy or ThresholdPolicy()
    strata_payload: Dict[str, dict] = {}
    detail: Dict[str, Dict[str, dict]] = {}
    for name in sorted(strata):
        stratum = strata[name]
        oracle = compute_oracle(engines, stratum)
        estimator_scores: Dict[str, dict] = {}
        stratum_detail: Dict[str, dict] = {}
        nodoc_by_estimator: Dict[str, List[Dict[str, float]]] = {}
        for estimator_name in sorted(backends):
            scores, est_detail, nodoc_rows = _score_estimator(
                backends[estimator_name], stratum, oracle, policy
            )
            estimator_scores[estimator_name] = scores
            stratum_detail[estimator_name] = est_detail
            nodoc_by_estimator[estimator_name] = nodoc_rows
        strata_payload[name] = {
            "description": stratum.description,
            "threshold": stratum.threshold,
            "diagnostic_threshold": stratum.diagnostic_threshold,
            "n_queries": stratum.n_queries,
            "oracle": {
                "useful_queries": sum(
                    1 for s in oracle.truth_sets if s
                ),
                "mean_truth_set_size": mean(
                    [float(len(s)) for s in oracle.truth_sets]
                ),
            },
            "estimators": estimator_scores,
            "agreement": agreement_matrix(nodoc_by_estimator),
        }
        detail[name] = stratum_detail
    payload = {
        "kind": "eval_report",
        "format": EVAL_FORMAT,
        "config": config,
        "generated_at": generated_at,
        "seed": seed,
        "engines": sorted(engine.name for engine in engines),
        "estimators": sorted(backends),
        "strata": strata_payload,
    }
    return EvalResult(payload=payload, detail=detail)
