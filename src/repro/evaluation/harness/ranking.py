"""Rank-aware scoring of an engine ordering against the exact oracle.

The paper's Section 4 criteria stop at per-database match counts; scoring
engine *selection* as a ranking task needs the standard IR battery instead
(Sirotkin, *On Search Engine Evaluation Metrics*): precision/recall of the
selected set, reciprocal rank of the first truly useful engine, NDCG of
the usefulness ordering with the true NoDoc as graded gain, and
Kendall's tau-b between the estimated and oracle orderings.

Everything here is a pure function over names and score mappings — no
broker, no engines — so the same metrics score any backend and stay
trivially property-testable.  Conventions for the degenerate inputs are
pinned deliberately (and covered by regression + Hypothesis tests):

* An empty oracle set cannot be missed: ``recall``/``precision`` of two
  empty sets are 1.0, and a query with no truly useful engine has no
  reciprocal rank (``None`` — excluded from MRR, never counted as 0).
* An all-zero gain vector admits only perfect rankings: ``ndcg`` is 1.0.
* ``kendall_tau_b`` is 0.0 when either side is entirely tied (the
  correlation is undefined; 0 is the *no-signal* reading, which is what
  the degenerate-ranking tripwires want to see).
"""

from __future__ import annotations

import math
from typing import AbstractSet, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "kendall_tau_b",
    "mean",
    "mrr",
    "ndcg",
    "reciprocal_rank",
    "set_f1",
    "set_precision",
    "set_recall",
]


def set_precision(selected: AbstractSet[str], truth: AbstractSet[str]) -> float:
    """Fraction of selected engines that are truly useful (1.0 on empty)."""
    if not selected:
        return 1.0
    return len(selected & truth) / len(selected)


def set_recall(selected: AbstractSet[str], truth: AbstractSet[str]) -> float:
    """Fraction of truly useful engines that were selected (1.0 on empty)."""
    if not truth:
        return 1.0
    return len(selected & truth) / len(truth)


def set_f1(selected: AbstractSet[str], truth: AbstractSet[str]) -> float:
    """Harmonic mean of set precision and recall (0.0 when both are 0)."""
    p = set_precision(selected, truth)
    r = set_recall(selected, truth)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def reciprocal_rank(
    ranking: Sequence[str], relevant: AbstractSet[str]
) -> Optional[float]:
    """1/rank of the first relevant name in ``ranking``.

    Returns ``None`` when ``relevant`` is empty or none of its names
    appear — the query contributes nothing to MRR rather than a zero.
    """
    if not relevant:
        return None
    for i, name in enumerate(ranking):
        if name in relevant:
            return 1.0 / (i + 1)
    return None


def mrr(
    rankings: Sequence[Sequence[str]], relevants: Sequence[AbstractSet[str]]
) -> Optional[float]:
    """Mean reciprocal rank over the queries that have a relevant engine."""
    if len(rankings) != len(relevants):
        raise ValueError("rankings and relevants must be parallel")
    values = [
        rr
        for ranking, relevant in zip(rankings, relevants)
        if (rr := reciprocal_rank(ranking, relevant)) is not None
    ]
    return mean(values) if values else None


def _dcg(gains: Sequence[float]) -> float:
    return sum(g / math.log2(i + 2) for i, g in enumerate(gains))


def ndcg(ranking: Sequence[str], gains: Mapping[str, float]) -> float:
    """Normalized discounted cumulative gain of ``ranking``.

    ``gains`` maps each name to its graded relevance (the oracle's true
    NoDoc here); names absent from the mapping gain 0.  The ideal ordering
    is the gains sorted descending.  All-zero gains yield 1.0: no ordering
    of worthless engines can be wrong.
    """
    if any(g < 0 for g in gains.values()):
        raise ValueError("gains must be non-negative")
    achieved = _dcg([float(gains.get(name, 0.0)) for name in ranking])
    ideal = _dcg(sorted((float(g) for g in gains.values()), reverse=True))
    if ideal == 0.0:
        return 1.0
    # Ranking a strict subset of the gained names can only lose gain, so
    # the ratio stays in [0, 1].
    return achieved / ideal


def kendall_tau_b(
    scores_a: Mapping[str, float], scores_b: Mapping[str, float]
) -> float:
    """Kendall's tau-b between two scorings of the same names.

    Tie-corrected: pairs tied in exactly one scoring count against the
    correlation's denominator, pairs tied in both count in neither.  When
    either side is entirely tied (or there are fewer than two names) the
    statistic is undefined and 0.0 is returned.
    """
    names = sorted(scores_a)
    if sorted(scores_b) != names:
        raise ValueError("scorings must cover the same names")
    n = len(names)
    if n < 2:
        return 0.0
    concordant = discordant = ties_a = ties_b = 0
    for i in range(n):
        for j in range(i + 1, n):
            da = scores_a[names[i]] - scores_a[names[j]]
            db = scores_b[names[i]] - scores_b[names[j]]
            if da == 0.0 and db == 0.0:
                continue
            if da == 0.0:
                ties_a += 1
            elif db == 0.0:
                ties_b += 1
            elif (da > 0.0) == (db > 0.0):
                concordant += 1
            else:
                discordant += 1
    denom_a = concordant + discordant + ties_a
    denom_b = concordant + discordant + ties_b
    if denom_a == 0 or denom_b == 0:
        return 0.0
    return (concordant - discordant) / math.sqrt(denom_a * denom_b)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (callers that need to
    distinguish emptiness check first — see :func:`mrr`)."""
    if not values:
        return 0.0
    return float(sum(values) / len(values))
