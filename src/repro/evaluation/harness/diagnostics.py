"""Structural-health diagnostics — the regression tripwires.

Score-*shape* checks that hold for any correct estimator regardless of its
accuracy, so a violation is a bug (or a quality collapse), never a tuning
matter:

* **Threshold monotonicity** — ``NoDoc(T)`` counts documents above ``T``,
  so re-estimating at a strictly higher threshold must never *raise* any
  engine's estimate.  Checked per (query, engine) pair against the
  stratum's ``diagnostic_threshold``.
* **Degenerate rankings** — a query where the estimator hands every
  engine the *same* (NoDoc, AvgSim) while the oracle distinguishes them
  carries no ranking signal; a spike of those is how a silently broken
  backend looks.
* **Missed-all** — queries with a non-empty oracle set where the
  estimator's rounded NoDoc is zero on every engine: total recall loss,
  the harmful direction per the paper.
* **Inter-estimator agreement** — mean pairwise Kendall tau-b between
  the estimators' NoDoc scorings.  The five methods disagree on
  magnitudes but broadly agree on order; a pair falling out of band
  flags one of them drifting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.evaluation.harness.ranking import kendall_tau_b, mean

__all__ = [
    "AGREEMENT_FLOOR",
    "EstimatorTripwires",
    "agreement_matrix",
    "run_tripwires",
]

# Mean pairwise tau below this marks an estimator pair as out of band in
# reports; the committed floors file is the gate that fails CI.
AGREEMENT_FLOOR = 0.0

_MONOTONICITY_SLACK = 1e-9


@dataclass(frozen=True)
class EstimatorTripwires:
    """Tripwire counters for one (stratum, estimator) cell."""

    monotonicity_violations: int
    degenerate_rankings: int
    missed_all: int

    @property
    def ok(self) -> bool:
        return (
            self.monotonicity_violations == 0
            and self.degenerate_rankings == 0
            and self.missed_all == 0
        )

    def as_dict(self) -> dict:
        return {
            "monotonicity_violations": self.monotonicity_violations,
            "degenerate_rankings": self.degenerate_rankings,
            "missed_all": self.missed_all,
            "ok": self.ok,
        }


def run_tripwires(
    low_rows: Sequence[Mapping[str, float]],
    high_rows: Sequence[Mapping[str, float]],
    rounded_rows: Sequence[Mapping[str, int]],
    oracle_rows: Sequence[Mapping[str, float]],
) -> EstimatorTripwires:
    """Evaluate the per-estimator tripwires over one stratum.

    Args:
        low_rows: Per-query estimated NoDoc by engine at the stratum
            threshold.
        high_rows: Same queries re-estimated at the (strictly higher)
            diagnostic threshold, parallel to ``low_rows``.
        rounded_rows: Per-query *rounded* estimated NoDoc by engine (the
            selection integers), parallel to ``low_rows``.
        oracle_rows: Per-query true NoDoc by engine.
    """
    if not (len(low_rows) == len(high_rows) == len(rounded_rows) == len(oracle_rows)):
        raise ValueError("tripwire inputs must be parallel per query")
    monotonicity = 0
    degenerate = 0
    missed_all = 0
    for low, high, rounded, oracle in zip(
        low_rows, high_rows, rounded_rows, oracle_rows
    ):
        for engine, nodoc_low in low.items():
            if high[engine] > nodoc_low + _MONOTONICITY_SLACK:
                monotonicity += 1
        estimates = sorted(low.values())
        truths = sorted(oracle.values())
        if (
            len(estimates) > 1
            and estimates[0] == estimates[-1]
            and truths[0] != truths[-1]
        ):
            degenerate += 1
        if any(t >= 1.0 for t in oracle.values()) and all(
            r == 0 for r in rounded.values()
        ):
            missed_all += 1
    return EstimatorTripwires(
        monotonicity_violations=monotonicity,
        degenerate_rankings=degenerate,
        missed_all=missed_all,
    )


def agreement_matrix(
    scores_by_estimator: Mapping[str, Sequence[Mapping[str, float]]],
) -> Dict[str, object]:
    """Mean per-query Kendall tau-b for every estimator pair.

    ``scores_by_estimator`` maps estimator name to its per-query NoDoc
    scorings (parallel across estimators).  Returns ``{"pairs": {"a|b":
    tau}, "mean_pairwise_tau": float, "below_floor": [...]}``.
    """
    names = sorted(scores_by_estimator)
    pairs: Dict[str, float] = {}
    below: List[str] = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            rows_a, rows_b = scores_by_estimator[a], scores_by_estimator[b]
            if len(rows_a) != len(rows_b):
                raise ValueError(f"estimators {a!r}/{b!r} scored different queries")
            tau = mean(
                [kendall_tau_b(ra, rb) for ra, rb in zip(rows_a, rows_b)]
            )
            key = f"{a}|{b}"
            pairs[key] = tau
            if tau < AGREEMENT_FLOOR:
                below.append(key)
    return {
        "pairs": pairs,
        "mean_pairwise_tau": mean(list(pairs.values())),
        "below_floor": sorted(below),
    }
