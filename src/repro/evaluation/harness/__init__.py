"""Engine-selection evaluation harness over golden query sets.

The standing quality wall for every broker backend: stratified, seeded,
*committed* query sets (:mod:`~repro.evaluation.harness.strata`,
:mod:`~repro.evaluation.harness.golden`), rank-aware scoring of the
usefulness ordering against the exact oracle
(:mod:`~repro.evaluation.harness.ranking`,
:mod:`~repro.evaluation.harness.runner`), structural-health tripwires
(:mod:`~repro.evaluation.harness.diagnostics`), and timestamped
markdown + JSON reports with a committed-floor regression gate
(:mod:`~repro.evaluation.harness.report`).

Run it from the CLI::

    repro-usefulness eval --config columnar --out-dir results
"""

from repro.evaluation.harness.diagnostics import (
    AGREEMENT_FLOOR,
    EstimatorTripwires,
    agreement_matrix,
    run_tripwires,
)
from repro.evaluation.harness.golden import (
    canonical_json_bytes,
    golden_manifest,
    load_golden_strata,
    manifest_payload,
    stratum_from_payload,
    stratum_payload,
    write_golden_strata,
)
from repro.evaluation.harness.ranking import (
    kendall_tau_b,
    mrr,
    ndcg,
    reciprocal_rank,
    set_f1,
    set_precision,
    set_recall,
)
from repro.evaluation.harness.report import (
    check_floors,
    load_floors,
    render_markdown,
    write_report,
)
from repro.evaluation.harness.runner import (
    EvalResult,
    StratumOracle,
    compute_oracle,
    run_evaluation,
)
from repro.evaluation.harness.strata import (
    DEFAULT_N_ENGINES,
    DEFAULT_SEED,
    GoldenStratum,
    STRATUM_NAMES,
    build_eval_fleet,
    generate_golden_strata,
)

__all__ = [
    "AGREEMENT_FLOOR",
    "DEFAULT_N_ENGINES",
    "DEFAULT_SEED",
    "EstimatorTripwires",
    "EvalResult",
    "GoldenStratum",
    "STRATUM_NAMES",
    "StratumOracle",
    "agreement_matrix",
    "build_eval_fleet",
    "canonical_json_bytes",
    "check_floors",
    "compute_oracle",
    "generate_golden_strata",
    "golden_manifest",
    "kendall_tau_b",
    "load_floors",
    "load_golden_strata",
    "manifest_payload",
    "mrr",
    "ndcg",
    "reciprocal_rank",
    "render_markdown",
    "run_evaluation",
    "run_tripwires",
    "set_f1",
    "set_precision",
    "set_recall",
    "stratum_from_payload",
    "stratum_payload",
    "write_golden_strata",
    "write_report",
]
