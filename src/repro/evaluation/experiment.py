"""The usefulness-estimation experiment runner.

One experiment = one database (engine + truth) x one query log x one
threshold grid x several estimation methods.  Each method pairs an estimator
with the representative it is allowed to see — that is how the paper's
quantized (Tables 7-9) and triplet (Tables 10-12) conditions are expressed:
same estimator, degraded representative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.base import UsefulnessEstimator
from repro.core.truth import true_usefulness_many
from repro.corpus.query import Query
from repro.engine.search_engine import SearchEngine
from repro.evaluation.metrics import MethodAccumulator, ThresholdMetrics

__all__ = ["MethodSpec", "ExperimentResult", "run_usefulness_experiment"]

#: The paper's threshold grid (Section 4: Cosine keeps similarities in
#: [0, 1], so no threshold above 1 — and nothing interesting below 0.1).
PAPER_THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)


@dataclass
class MethodSpec:
    """One estimation method under evaluation.

    Attributes:
        key: Machine name (column key in results).
        estimator: The estimator instance.
        representative: The representative this method consults.
        label: Human-readable column header; defaults to the estimator's.
    """

    key: str
    estimator: UsefulnessEstimator
    representative: object
    label: str = ""

    def __post_init__(self):
        if not self.label:
            self.label = self.estimator.label


@dataclass
class ExperimentResult:
    """Outcome of one experiment: per-method, per-threshold metrics."""

    database: str
    n_documents: int
    n_queries: int
    thresholds: Sequence[float]
    methods: List[str] = field(default_factory=list)
    labels: Dict[str, str] = field(default_factory=dict)
    metrics: Dict[str, List[ThresholdMetrics]] = field(default_factory=dict)

    def useful_counts(self) -> List[int]:
        """The U column — identical across methods, taken from the first."""
        first = self.metrics[self.methods[0]]
        return [row.useful_queries for row in first]

    def method_metrics(self, key: str) -> List[ThresholdMetrics]:
        return self.metrics[key]


def run_usefulness_experiment(
    engine: SearchEngine,
    queries: Sequence[Query],
    methods: Sequence[MethodSpec],
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ExperimentResult:
    """Run the full truth-vs-estimates sweep for one database.

    Args:
        engine: The database's search engine (source of ground truth).
        queries: The query log.
        methods: The estimation methods to compare.
        thresholds: Similarity thresholds (the paper's grid by default).
        progress: Optional callback ``(done, total)`` invoked every 500
            queries, for long interactive runs.

    Returns:
        An :class:`ExperimentResult` with one metrics row per method and
        threshold.
    """
    if not methods:
        raise ValueError("at least one method is required")
    keys = [m.key for m in methods]
    if len(set(keys)) != len(keys):
        raise ValueError("method keys must be unique")
    accumulators = {m.key: MethodAccumulator(thresholds) for m in methods}
    total = len(queries)
    for i, query in enumerate(queries):
        truths = true_usefulness_many(engine, query, thresholds)
        for method in methods:
            estimates = method.estimator.estimate_many(
                query, method.representative, thresholds
            )
            accumulators[method.key].add(truths, estimates)
        if progress is not None and (i + 1) % 500 == 0:
            progress(i + 1, total)
    return ExperimentResult(
        database=engine.name,
        n_documents=engine.n_documents,
        n_queries=total,
        thresholds=tuple(thresholds),
        methods=keys,
        labels={m.key: m.label for m in methods},
        metrics={key: accumulators[key].metrics() for key in keys},
    )
