"""The paper's published experimental numbers (Tables 1-12).

Stored so the benchmark harness can print the original results next to the
reproduction's and EXPERIMENTS.md can be regenerated.  Absolute values are
not expected to match — the paper ran on the (unavailable) Stanford
newsgroup snapshots, we run on the synthetic stand-in — but the *shape*
comparisons (method ordering, error ratios, robustness deltas) are.

Data layout: per database, per threshold row:
``(T, U, (match, mismatch, d_n, d_s) per method ...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "PAPER_METHODS",
    "PaperCell",
    "PaperRow",
    "paper_table",
    "PAPER_TABLES_1_TO_6",
    "PAPER_TABLES_7_TO_9",
    "PAPER_TABLES_10_TO_12",
]

PAPER_METHODS = ("gloss-hc", "prev", "subrange")


@dataclass(frozen=True)
class PaperCell:
    """One method's published numbers at one threshold."""

    match: int
    mismatch: int
    d_nodoc: float
    d_avgsim: float


@dataclass(frozen=True)
class PaperRow:
    """One threshold row of a published table."""

    threshold: float
    useful: int
    cells: Dict[str, PaperCell]


def _rows(raw) -> Tuple[PaperRow, ...]:
    rows = []
    for entry in raw:
        threshold, useful, *cells = entry
        rows.append(
            PaperRow(
                threshold=threshold,
                useful=useful,
                cells={
                    method: PaperCell(*cell)
                    for method, cell in zip(PAPER_METHODS, cells)
                },
            )
        )
    return tuple(rows)


# Tables 1+2 (D1), 3+4 (D2), 5+6 (D3): per method (match, mismatch, d-N, d-S).
PAPER_TABLES_1_TO_6: Dict[str, Tuple[PaperRow, ...]] = {
    "D1": _rows(
        [
            (0.1, 1475, (296, 35, 16.87, 0.121), (767, 14, 9.29, 0.078), (1423, 13, 7.05, 0.017)),
            (0.2, 440, (24, 3, 17.61, 0.242), (180, 0, 8.91, 0.159), (421, 2, 7.34, 0.029)),
            (0.3, 162, (5, 1, 20.28, 0.354), (49, 2, 9.79, 0.261), (153, 3, 7.69, 0.042)),
            (0.4, 56, (1, 0, 17.14, 0.470), (20, 1, 8.57, 0.325), (52, 0, 9.48, 0.054)),
            (0.5, 30, (0, 0, 3.87, 0.586), (11, 0, 3.70, 0.401), (24, 0, 3.77, 0.130)),
            (0.6, 12, (0, 0, 1.50, 0.692), (0, 0, 1.50, 0.692), (6, 0, 0.92, 0.323)),
        ]
    ),
    "D2": _rows(
        [
            (0.1, 2506, (779, 102, 26.96, 0.112), (1299, 148, 20.31, 0.082), (2352, 215, 12.04, 0.026)),
            (0.2, 1110, (30, 7, 19.56, 0.252), (321, 41, 9.80, 0.191), (1002, 80, 8.35, 0.047)),
            (0.3, 500, (4, 2, 13.00, 0.347), (104, 14, 7.64, 0.282), (401, 28, 7.02, 0.088)),
            (0.4, 135, (1, 0, 11.13, 0.458), (27, 1, 6.49, 0.374), (97, 1, 4.58, 0.152)),
            (0.5, 54, (0, 0, 5.43, 0.550), (9, 1, 3.67, 0.463), (38, 1, 4.61, 0.187)),
            (0.6, 14, (0, 0, 3.07, 0.664), (4, 0, 2.21, 0.492), (8, 0, 2.50, 0.291)),
        ]
    ),
    "D3": _rows(
        [
            (0.1, 2582, (760, 135, 17.44, 0.114), (1379, 192, 13.96, 0.081), (2410, 276, 8.02, 0.026)),
            (0.2, 1125, (46, 23, 12.47, 0.245), (277, 55, 7.16, 0.198), (966, 76, 5.72, 0.054)),
            (0.3, 393, (6, 5, 10.92, 0.354), (76, 12, 6.76, 0.297), (310, 21, 5.55, 0.095)),
            (0.4, 133, (0, 1, 7.18, 0.460), (17, 6, 4.89, 0.405), (93, 7, 3.85, 0.158)),
            (0.5, 48, (0, 0, 3.77, 0.558), (8, 0, 2.81, 0.472), (30, 0, 2.50, 0.226)),
            (0.6, 15, (0, 0, 2.20, 0.659), (3, 0, 3.20, 0.534), (6, 0, 1.80, 0.409)),
        ]
    ),
}


def _single_method_rows(raw) -> Tuple[PaperRow, ...]:
    rows = []
    for threshold, match, mismatch, d_n, d_s in raw:
        rows.append(
            PaperRow(
                threshold=threshold,
                useful=-1,  # the single-method tables do not restate U
                cells={"subrange": PaperCell(match, mismatch, d_n, d_s)},
            )
        )
    return tuple(rows)


# Tables 7-9: subrange method on one-byte-quantized representatives.
PAPER_TABLES_7_TO_9: Dict[str, Tuple[PaperRow, ...]] = {
    "D1": _single_method_rows(
        [
            (0.1, 1423, 13, 6.79, 0.017),
            (0.2, 421, 2, 7.64, 0.030),
            (0.3, 153, 3, 7.69, 0.042),
            (0.4, 52, 0, 9.50, 0.055),
            (0.5, 24, 0, 3.77, 0.130),
            (0.6, 6, 0, 0.92, 0.323),
        ]
    ),
    "D2": _single_method_rows(
        [
            (0.1, 2353, 214, 12.19, 0.026),
            (0.2, 1002, 79, 8.35, 0.047),
            (0.3, 401, 29, 7.03, 0.088),
            (0.4, 97, 1, 4.59, 0.152),
            (0.5, 38, 1, 4.59, 0.187),
            (0.6, 8, 0, 2.50, 0.291),
        ]
    ),
    "D3": _single_method_rows(
        [
            (0.1, 2411, 280, 8.03, 0.027),
            (0.2, 966, 76, 5.74, 0.054),
            (0.3, 310, 21, 5.56, 0.095),
            (0.4, 93, 7, 3.85, 0.158),
            (0.5, 30, 0, 2.52, 0.225),
            (0.6, 6, 0, 1.80, 0.409),
        ]
    ),
}

# Tables 10-12: subrange method with the maximum weight *estimated* (99.9
# percentile of the normal approximation) instead of stored.
#
# Table 10 (D1) is damaged in our source scan of the paper: only isolated
# cell fragments ("189/0", "24/0", d-N 7.97/9.98, d-S 0.154/0.293) survive
# and their row assignment is ambiguous, so no published rows are recorded
# rather than guessing.  Tables 11 and 12 are intact.
PAPER_TABLES_10_TO_12: Dict[str, Tuple[PaperRow, ...]] = {
    "D1": (),
    "D2": _single_method_rows(
        [
            (0.1, 1691, 175, 12.55, 0.062),
            (0.2, 442, 47, 8.96, 0.165),
            (0.3, 117, 10, 7.56, 0.272),
            (0.4, 34, 1, 4.85, 0.353),
            (0.5, 12, 3, 4.91, 0.439),
            (0.6, 5, 1, 2.29, 0.440),
        ]
    ),
    "D3": _single_method_rows(
        [
            (0.1, 1851, 205, 8.50, 0.058),
            (0.2, 291, 50, 6.43, 0.194),
            (0.3, 76, 15, 6.19, 0.294),
            (0.4, 30, 3, 4.23, 0.365),
            (0.5, 10, 0, 2.85, 0.446),
            (0.6, 3, 0, 2.00, 0.536),
        ]
    ),
}


def paper_table(table_id: str) -> Optional[Tuple[PaperRow, ...]]:
    """Published rows for a table id like 'table1', 'table7', 'table12'.

    Returns None for ids outside 1-12.
    """
    mapping = {
        "table1": PAPER_TABLES_1_TO_6["D1"],
        "table2": PAPER_TABLES_1_TO_6["D1"],
        "table3": PAPER_TABLES_1_TO_6["D2"],
        "table4": PAPER_TABLES_1_TO_6["D2"],
        "table5": PAPER_TABLES_1_TO_6["D3"],
        "table6": PAPER_TABLES_1_TO_6["D3"],
        "table7": PAPER_TABLES_7_TO_9["D1"],
        "table8": PAPER_TABLES_7_TO_9["D2"],
        "table9": PAPER_TABLES_7_TO_9["D3"],
        "table10": PAPER_TABLES_10_TO_12["D1"],
        "table11": PAPER_TABLES_10_TO_12["D2"],
        "table12": PAPER_TABLES_10_TO_12["D3"],
    }
    return mapping.get(table_id)
