"""Rendering experiment results in the layout of the paper's tables."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.evaluation.experiment import ExperimentResult
from repro.representatives.sizing import CollectionSizing

__all__ = [
    "format_match_table",
    "format_error_table",
    "format_combined_table",
    "format_sizing_table",
]


def _render_grid(headers: List[str], rows: List[List[str]]) -> str:
    """Fixed-width plain-text grid with right-aligned cells."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_match_table(
    result: ExperimentResult, methods: Optional[Sequence[str]] = None
) -> str:
    """Tables 1/3/5 layout: T, U, then match/mismatch per method."""
    methods = list(methods) if methods is not None else list(result.methods)
    headers = ["T", "U"] + [result.labels[m] for m in methods]
    rows = []
    useful = result.useful_counts()
    for i, threshold in enumerate(result.thresholds):
        row = [f"{threshold:.1f}", str(useful[i])]
        for key in methods:
            row.append(result.metrics[key][i].match_mismatch())
        rows.append(row)
    title = f"match/mismatch on {result.database} ({result.n_queries} queries)"
    return title + "\n" + _render_grid(headers, rows)


def format_error_table(
    result: ExperimentResult, methods: Optional[Sequence[str]] = None
) -> str:
    """Tables 2/4/6 layout: T, U, then d-N and d-S per method."""
    methods = list(methods) if methods is not None else list(result.methods)
    headers = ["T", "U"]
    for key in methods:
        headers.extend([f"{result.labels[key]} d-N", "d-S"])
    rows = []
    useful = result.useful_counts()
    for i, threshold in enumerate(result.thresholds):
        row = [f"{threshold:.1f}", str(useful[i])]
        for key in methods:
            cell = result.metrics[key][i]
            row.extend([f"{cell.d_nodoc:.2f}", f"{cell.d_avgsim:.3f}"])
        rows.append(row)
    title = f"d-N / d-S on {result.database} ({result.n_queries} queries)"
    return title + "\n" + _render_grid(headers, rows)


def format_combined_table(result: ExperimentResult, method: str) -> str:
    """Tables 7-12 layout: T, m/mis, d-N, d-S for one method."""
    headers = ["T", "m/mis", "d-N", "d-S"]
    rows = []
    for i, threshold in enumerate(result.thresholds):
        cell = result.metrics[method][i]
        rows.append(
            [
                f"{threshold:.1f}",
                cell.match_mismatch(),
                f"{cell.d_nodoc:.2f}",
                f"{cell.d_avgsim:.3f}",
            ]
        )
    title = (
        f"{result.labels[method]} on {result.database} "
        f"({result.n_queries} queries)"
    )
    return title + "\n" + _render_grid(headers, rows)


def format_sizing_table(rows: Iterable[CollectionSizing]) -> str:
    """Section 3.2 layout: collection size, #terms, representative size, %."""
    headers = [
        "collection",
        "size(pages)",
        "#dist. terms",
        "rep. size",
        "%",
        "1-byte size",
        "1-byte %",
    ]
    grid = []
    for sizing in rows:
        grid.append(
            [
                sizing.name,
                f"{sizing.collection_pages:.0f}",
                str(sizing.n_distinct_terms),
                f"{sizing.representative_pages:.0f}",
                f"{sizing.percent:.2f}",
                f"{sizing.quantized_pages:.0f}",
                f"{sizing.quantized_percent:.2f}",
            ]
        )
    return _render_grid(headers, grid)
