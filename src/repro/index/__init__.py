"""Inverted index over a collection's (optionally normalized) term weights."""

from repro.index.inverted import InvertedIndex, PostingList
from repro.index.store import load_index, save_index

__all__ = ["InvertedIndex", "PostingList", "load_index", "save_index"]
