"""Binary persistence for inverted indexes.

Rebuilding an index from a collection re-tokenizes nothing (collections
store term ids) but still costs a full pass over every posting; for a
deployed engine the index itself is the artifact worth saving.  The format
is a single ``.npz`` (compressed numpy archive) holding the concatenated
posting arrays with per-term offsets, the document norms, document ids,
vocabulary, and the weighting/normalization configuration — enough to
reconstruct an :class:`~repro.index.InvertedIndex` byte-for-byte without
touching the collection again.

Note the loaded object carries a *skeleton* collection (doc ids and
vocabulary, no term frequencies): everything the search and representative
paths need, but ``tf_vector`` contents are not preserved.  Keep the
JSONL collection (``repro.corpus.io``) if you need to re-index under a
different configuration.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.corpus.collection import Collection
from repro.corpus.document import Document
from repro.index.inverted import InvertedIndex, PostingList
from repro.vsm.normalization import get_normalizer
from repro.vsm.weighting import get_weighting

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def save_index(index: InvertedIndex, path: Union[str, Path]) -> None:
    """Write ``index`` to a compressed .npz archive."""
    term_ids = np.array(sorted(index.iter_term_ids()), dtype=np.int64)
    doc_blocks = []
    weight_blocks = []
    offsets = np.zeros(term_ids.size + 1, dtype=np.int64)
    for i, tid in enumerate(term_ids):
        plist = index.postings(int(tid))
        doc_blocks.append(plist.doc_indices)
        weight_blocks.append(plist.weights)
        offsets[i + 1] = offsets[i] + plist.document_frequency
    collection = index.collection
    np.savez_compressed(
        Path(path),
        format_version=np.int64(_FORMAT_VERSION),
        name=np.array(collection.name),
        term_ids=term_ids,
        offsets=offsets,
        posting_docs=(
            np.concatenate(doc_blocks) if doc_blocks else np.empty(0, np.int64)
        ),
        posting_weights=(
            np.concatenate(weight_blocks) if weight_blocks else np.empty(0)
        ),
        doc_norms=np.array(
            [index.document_norm(i) for i in range(index.n_documents)]
        ),
        doc_ids=np.array(
            [collection.doc_id(i) for i in range(len(collection))]
        ),
        terms=np.array(list(collection.vocabulary)),
        weighting=np.array(index.weighting.name),
        normalizer=np.array(index.normalizer.name),
        idf=np.array(index.idf_variant or ""),
    )


def load_index(path: Union[str, Path]) -> InvertedIndex:
    """Read an index written by :func:`save_index`.

    The returned index answers postings, norms and representative builds
    identically to the original; its collection is a skeleton (ids and
    vocabulary only).
    """
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported index format {version!r}")
        skeleton = Collection(str(data["name"]))
        for term in data["terms"].tolist():
            skeleton.vocabulary.add(str(term))
        for doc_id in data["doc_ids"].tolist():
            skeleton.add_document(Document(doc_id=str(doc_id), terms=[]))

        index = InvertedIndex.__new__(InvertedIndex)
        index.collection = skeleton
        index.weighting = get_weighting(str(data["weighting"]))
        index.normalizer = get_normalizer(str(data["normalizer"]))
        from repro.vsm.normalization import NullNormalizer

        index.normalize = not isinstance(index.normalizer, NullNormalizer)
        idf = str(data["idf"])
        index.idf_variant = idf or None
        index._idf_factors = None  # factors are baked into stored weights
        index._doc_norms = data["doc_norms"]

        term_ids = data["term_ids"]
        offsets = data["offsets"]
        posting_docs = data["posting_docs"]
        posting_weights = data["posting_weights"]
        index._postings = {}
        for i, tid in enumerate(term_ids.tolist()):
            lo, hi = offsets[i], offsets[i + 1]
            index._postings[int(tid)] = PostingList(
                doc_indices=posting_docs[lo:hi].copy(),
                weights=posting_weights[lo:hi].copy(),
            )
        return index
