"""Inverted index construction.

The index stores, per term id, the posting list of (document index, weight)
with weights already put through the engine's weighting scheme, optionally
scaled by inverse document frequency, and divided by the document's
normalization divisor (Cosine by default).  Everything downstream — exact
similarity scans, representative building, gGlOSS statistics — reads these
normalized weights, which is what makes the whole system agree on what a
"weight" is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.corpus.collection import Collection
from repro.vsm.normalization import (
    CosineNormalizer,
    Normalizer,
    NullNormalizer,
)
from repro.vsm.weighting import RawTfWeighting, WeightingScheme

__all__ = ["PostingList", "InvertedIndex"]

#: Supported inverse-document-frequency variants.  "smooth" is
#: ln(1 + N/df); "ln" is the textbook ln(N/df) (zero for ubiquitous terms).
IDF_VARIANTS = (None, "ln", "smooth")


@dataclass(frozen=True)
class PostingList:
    """Frozen posting list for one term.

    Attributes:
        doc_indices: Ascending internal document indices containing the term.
        weights: Parallel (normalized) weights of the term in each document.
    """

    doc_indices: np.ndarray
    weights: np.ndarray

    @property
    def document_frequency(self) -> int:
        return int(self.doc_indices.size)

    def max_weight(self) -> float:
        """Largest (normalized) weight of the term in any document."""
        return float(self.weights.max()) if self.weights.size else 0.0


class InvertedIndex:
    """Index of a collection under a weighting/normalization configuration.

    Args:
        collection: The documents to index.
        weighting: Scheme mapping tf to unnormalized weights (raw tf by
            default, as in the paper's setup).
        normalize: Back-compat sugar — True selects Cosine normalization,
            False selects none.  Ignored when ``normalizer`` is given.
        normalizer: Explicit :class:`~repro.vsm.normalization.Normalizer`
            (e.g. :class:`~repro.vsm.normalization.PivotedNormalizer`).
        idf: Optional idf variant applied to document weights before
            normalization: None (default, the paper's setup), "smooth"
            (ln(1 + N/df)) or "ln" (ln(N/df)).
    """

    def __init__(
        self,
        collection: Collection,
        weighting: Optional[WeightingScheme] = None,
        normalize: bool = True,
        normalizer: Optional[Normalizer] = None,
        idf: Optional[str] = None,
    ):
        if idf not in IDF_VARIANTS:
            raise ValueError(f"idf must be one of {IDF_VARIANTS}, got {idf!r}")
        self.collection = collection
        self.weighting = weighting or RawTfWeighting()
        if normalizer is None:
            normalizer = CosineNormalizer() if normalize else NullNormalizer()
        self.normalizer = normalizer
        self.normalize = not isinstance(normalizer, NullNormalizer)
        self.idf_variant = idf

        n = len(collection)
        self._idf_factors = self._compute_idf_factors(collection, idf)

        # Pass 1: per-document weighted (idf-scaled) vectors and norms.
        doc_term_ids: List[np.ndarray] = []
        doc_weights: List[np.ndarray] = []
        self._doc_norms = np.zeros(n)
        for doc_index, tf_vector in collection.iter_tf_vectors():
            weights = self.weighting.weights(tf_vector.values)
            if self._idf_factors is not None and tf_vector.nnz:
                weights = weights * self._idf_factors[tf_vector.indices]
            doc_term_ids.append(tf_vector.indices)
            doc_weights.append(weights)
            self._doc_norms[doc_index] = float(np.sqrt(np.dot(weights, weights)))

        # Pass 2: divide by the normalizer's divisors and build postings.
        divisors = self.normalizer.divisors(self._doc_norms)
        per_term_docs: Dict[int, List[int]] = {}
        per_term_weights: Dict[int, List[float]] = {}
        for doc_index in range(n):
            weights = doc_weights[doc_index] / divisors[doc_index]
            for tid, weight in zip(
                doc_term_ids[doc_index].tolist(), weights.tolist()
            ):
                if weight == 0.0:
                    continue
                per_term_docs.setdefault(tid, []).append(doc_index)
                per_term_weights.setdefault(tid, []).append(weight)
        self._postings: Dict[int, PostingList] = {
            tid: PostingList(
                doc_indices=np.asarray(per_term_docs[tid], dtype=np.int64),
                weights=np.asarray(per_term_weights[tid], dtype=float),
            )
            for tid in per_term_docs
        }

    @staticmethod
    def _compute_idf_factors(
        collection: Collection, idf: Optional[str]
    ) -> Optional[np.ndarray]:
        if idf is None:
            return None
        n = len(collection)
        df = np.zeros(len(collection.vocabulary))
        for __, tf_vector in collection.iter_tf_vectors():
            df[tf_vector.indices] += 1
        factors = np.zeros_like(df)
        seen = df > 0
        if idf == "ln":
            factors[seen] = np.log(n / df[seen])
        else:  # "smooth"
            factors[seen] = np.log1p(n / df[seen])
        return factors

    # -- accessors -------------------------------------------------------------

    @property
    def n_documents(self) -> int:
        return len(self.collection)

    @property
    def n_terms(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._postings)

    def postings(self, term_id: int) -> PostingList:
        """Posting list of ``term_id``; empty list for unseen terms."""
        empty = PostingList(
            doc_indices=np.empty(0, dtype=np.int64), weights=np.empty(0)
        )
        return self._postings.get(term_id, empty)

    def document_frequency(self, term_id: int) -> int:
        plist = self._postings.get(term_id)
        return plist.document_frequency if plist is not None else 0

    def document_norm(self, doc_index: int) -> float:
        """Euclidean norm of the document's unnormalized weight vector
        (after weighting and idf scaling, before length normalization)."""
        return float(self._doc_norms[doc_index])

    def idf_factor(self, term_id: int) -> float:
        """The idf factor applied to ``term_id`` (1.0 when idf is off)."""
        if self._idf_factors is None:
            return 1.0
        if not 0 <= term_id < self._idf_factors.size:
            return 0.0
        return float(self._idf_factors[term_id])

    def iter_term_ids(self) -> Iterator[int]:
        return iter(self._postings)

    def items(self) -> Iterator[Tuple[int, PostingList]]:
        """Iterate ``(term_id, posting_list)`` pairs."""
        return iter(self._postings.items())

    def __repr__(self) -> str:
        return (
            f"InvertedIndex({self.collection.name!r}, terms={self.n_terms}, "
            f"docs={self.n_documents}, normalizer={self.normalizer.name}, "
            f"idf={self.idf_variant})"
        )
