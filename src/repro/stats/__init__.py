"""Statistical substrate used throughout the reproduction.

This subpackage is deliberately self-contained: the estimators in
:mod:`repro.core` only ever need the standard normal distribution, a few
descriptive statistics, and the one-byte quantizer of Section 3.2 of the
paper.  Everything here is implemented from scratch (and validated against
scipy in the test suite) so the library has no heavyweight runtime
dependencies beyond numpy.
"""

from repro.stats.descriptive import (
    mean_and_std,
    percentile_sorted,
    population_std,
)
from repro.stats.normal import (
    normal_cdf,
    normal_pdf,
    normal_quantile,
    truncated_normal_mean_above,
    truncated_normal_tail_mass,
)
from repro.stats.quantization import OneByteQuantizer, QuantizationGrid

__all__ = [
    "OneByteQuantizer",
    "QuantizationGrid",
    "mean_and_std",
    "normal_cdf",
    "normal_pdf",
    "normal_quantile",
    "percentile_sorted",
    "population_std",
    "truncated_normal_mean_above",
    "truncated_normal_tail_mass",
]
