"""Descriptive statistics for term-weight populations.

The database representative of the paper stores, per term, the *population*
mean and standard deviation of the term's weights over the documents that
contain the term.  These helpers operate on plain sequences or numpy arrays
and are the single source of truth for how those statistics are computed.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = ["population_std", "mean_and_std", "percentile_sorted"]


def population_std(values: Sequence[float]) -> float:
    """Population standard deviation (``ddof=0``) of ``values``.

    The paper treats the weights of a term in the documents containing it as
    the full population, not a sample, so the divisor is ``k`` rather than
    ``k - 1``.  A single observation therefore has zero deviation.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("population_std of an empty sequence is undefined")
    return float(arr.std(ddof=0))


def mean_and_std(values: Sequence[float]) -> Tuple[float, float]:
    """Population mean and standard deviation in one pass."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("mean_and_std of an empty sequence is undefined")
    return float(arr.mean()), float(arr.std(ddof=0))


def percentile_sorted(sorted_values: Sequence[float], percentile: float) -> float:
    """Value at ``percentile`` (0-100, measured from the bottom) of an
    ascending-sorted sequence, with linear interpolation.

    Used by exact (non-normal-approximated) subrange schemes and by tests
    that compare the normal approximation against the empirical weight
    distribution.
    """
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {percentile!r}")
    arr = np.asarray(sorted_values, dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of an empty sequence is undefined")
    if arr.size == 1:
        return float(arr[0])
    rank = percentile / 100.0 * (arr.size - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(arr[lo])
    frac = rank - lo
    return float(arr[lo] * (1.0 - frac) + arr[hi] * frac)
