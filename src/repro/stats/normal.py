"""Standard normal distribution primitives.

The subrange-based method of the paper approximates each term's weight
distribution by a normal ``N(w, sigma^2)`` and places subrange medians at
fixed percentiles of that normal (Section 3.1, Example 3.3).  That requires
the normal PDF, CDF and quantile function.  The quantile function uses Peter
Acklam's rational approximation refined with one step of Halley's method,
which is accurate to ~1e-15 over the open unit interval; the test suite
cross-checks it against ``scipy.stats.norm``.
"""

from __future__ import annotations

import math

__all__ = [
    "normal_pdf",
    "normal_cdf",
    "normal_quantile",
    "truncated_normal_tail_mass",
    "truncated_normal_mean_above",
]

_SQRT2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)

# Coefficients of Acklam's rational approximation to the normal quantile.
_ACKLAM_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_ACKLAM_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_ACKLAM_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_ACKLAM_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)
_ACKLAM_LOW = 0.02425
_ACKLAM_HIGH = 1.0 - _ACKLAM_LOW


def normal_pdf(x: float) -> float:
    """Density of the standard normal distribution at ``x``."""
    return math.exp(-0.5 * x * x) / _SQRT_2PI


def normal_cdf(x: float) -> float:
    """Cumulative distribution of the standard normal at ``x``.

    Uses :func:`math.erf`, which is exact to double precision.
    """
    return 0.5 * (1.0 + math.erf(x / _SQRT2))


def _acklam_estimate(p: float) -> float:
    """Initial rational-approximation estimate of the normal quantile."""
    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D
    if p < _ACKLAM_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= _ACKLAM_HIGH:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


def normal_quantile(p: float) -> float:
    """Inverse CDF (quantile / probit function) of the standard normal.

    ``normal_quantile(0.875)`` is the constant ``c1 = 1.15`` of the paper's
    Example 3.3.  Raises :class:`ValueError` outside the open interval (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile requires 0 < p < 1, got {p!r}")
    x = _acklam_estimate(p)
    # One Halley refinement step drives the error to machine precision.
    err = normal_cdf(x) - p
    u = err * _SQRT_2PI * math.exp(0.5 * x * x)
    return x - u / (1.0 + 0.5 * x * u)


def _zscore(cutoff: float, mean: float, std: float) -> float:
    """(cutoff - mean) / std, saturated at +-40 where the normal CDF is
    already exactly 0/1 in double precision — avoids overflow when ``std``
    is subnormal."""
    diff = float(cutoff) - float(mean)
    if abs(diff) > 40.0 * std:
        return 40.0 if diff > 0 else -40.0
    return diff / std


def truncated_normal_tail_mass(cutoff: float, mean: float, std: float) -> float:
    """Probability that ``N(mean, std^2)`` exceeds ``cutoff``.

    Degenerate distributions (``std <= 0``) collapse to a point mass at
    ``mean``.  Used by the previous-method estimator (VLDB'98 reconstruction)
    to shrink a term's occurrence probability under a high threshold.
    """
    if std <= 0.0:
        return 1.0 if mean > cutoff else 0.0
    return 1.0 - normal_cdf(_zscore(cutoff, mean, std))


def truncated_normal_mean_above(cutoff: float, mean: float, std: float) -> float:
    """Mean of ``N(mean, std^2)`` conditioned on exceeding ``cutoff``.

    This is the inverse Mills ratio formula ``mean + std * phi(a) / (1 -
    Phi(a))`` with ``a = (cutoff - mean) / std``.  For a degenerate
    distribution the unconditional mean is returned.  Far in the upper tail
    (where ``1 - Phi(a)`` underflows) the conditional mean approaches the
    cutoff itself, which is what we return.
    """
    if std <= 0.0:
        return mean
    a = _zscore(cutoff, mean, std)
    tail = 1.0 - normal_cdf(a)
    if tail <= 1e-300:
        return max(mean, cutoff)
    return mean + std * normal_pdf(a) / tail
