"""One-byte value quantization (Section 3.2 of the paper).

To shrink a database representative from 20 to 8 bytes per term, the paper
replaces each stored number with a one-byte code: the value range is split
into 256 equal-length intervals, the *average* of the values falling in each
interval is recorded once per database, and every value is mapped to the
average of its interval.  :class:`OneByteQuantizer` implements exactly that
scheme (generalized to any number of levels so ablations can sweep it), and
:class:`QuantizationGrid` is the frozen result that can encode/decode values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["OneByteQuantizer", "QuantizationGrid"]


@dataclass(frozen=True)
class QuantizationGrid:
    """A fitted quantizer: interval layout plus per-interval decode values.

    Attributes:
        low: Lower bound of the covered value range.
        high: Upper bound of the covered value range.
        decode_values: ``levels`` floats; code ``i`` decodes to
            ``decode_values[i]``.  Intervals that received no training value
            decode to their own midpoint, so decoding any legal code is safe.
    """

    low: float
    high: float
    decode_values: np.ndarray

    @property
    def levels(self) -> int:
        """Number of quantization intervals (256 for the paper's scheme)."""
        return int(self.decode_values.size)

    def encode(self, values: Sequence[float]) -> np.ndarray:
        """Map ``values`` to integer codes in ``[0, levels)``.

        Values outside ``[low, high]`` are clamped to the boundary interval,
        mirroring how a deployed representative would treat a value drifting
        slightly out of the fitted range after incremental updates.
        """
        arr = np.asarray(values, dtype=float)
        span = self.high - self.low
        if span <= 0.0:
            return np.zeros(arr.shape, dtype=np.int64)
        codes = np.floor((arr - self.low) / span * self.levels).astype(np.int64)
        return np.clip(codes, 0, self.levels - 1)

    def decode(self, codes: Sequence[int]) -> np.ndarray:
        """Map integer codes back to their interval-average values."""
        idx = np.asarray(codes, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.levels):
            raise ValueError("quantization code out of range")
        return self.decode_values[idx]

    def roundtrip(self, values: Sequence[float]) -> np.ndarray:
        """Encode then decode ``values`` — the approximation the paper applies."""
        return self.decode(self.encode(values))


class OneByteQuantizer:
    """Fits :class:`QuantizationGrid` objects from observed values.

    Args:
        levels: Number of intervals; 256 reproduces the paper's one-byte
            scheme.
        low: Optional fixed lower bound (the paper fixes probabilities to the
            interval [0, 1]); inferred from the data when omitted.
        high: Optional fixed upper bound; inferred when omitted.
    """

    def __init__(self, levels: int = 256, low: float = None, high: float = None):
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels!r}")
        self._levels = levels
        self._low = low
        self._high = high

    @property
    def levels(self) -> int:
        return self._levels

    def fit(self, values: Sequence[float]) -> QuantizationGrid:
        """Fit a grid: per-interval averages of the training ``values``.

        Empty intervals decode to their midpoint.  An empty training set with
        no explicit bounds is an error — there is nothing to cover.
        """
        arr = np.asarray(values, dtype=float)
        low = self._low if self._low is not None else (
            float(arr.min()) if arr.size else None
        )
        high = self._high if self._high is not None else (
            float(arr.max()) if arr.size else None
        )
        if low is None or high is None:
            raise ValueError("cannot fit a quantizer with no values and no bounds")
        if high < low:
            raise ValueError(f"invalid bounds: high {high!r} < low {low!r}")

        levels = self._levels
        span = high - low
        edges = low + span * np.arange(levels + 1) / levels
        midpoints = (edges[:-1] + edges[1:]) / 2.0
        decode = midpoints.copy()
        if arr.size and span > 0.0:
            codes = np.clip(
                np.floor((arr - low) / span * levels).astype(np.int64),
                0,
                levels - 1,
            )
            sums = np.bincount(codes, weights=arr, minlength=levels)
            counts = np.bincount(codes, minlength=levels)
            filled = counts > 0
            decode[filled] = sums[filled] / counts[filled]
        elif arr.size:
            # Degenerate range: every value is identical.
            decode[:] = low
        return QuantizationGrid(low=low, high=high, decode_values=decode)

    def fit_roundtrip(self, values: Sequence[float]) -> np.ndarray:
        """Convenience: fit on ``values`` and return their approximation."""
        return self.fit(values).roundtrip(values)
