"""Engine-selection policies.

Given per-engine usefulness estimates, a policy decides which engines the
broker should actually invoke.  The paper's notion is threshold-based —
invoke every engine estimated to hold at least one document above the
similarity threshold — and :class:`ThresholdPolicy` implements it
(estimates rounded to integers, as in the evaluation).  :class:`TopKPolicy`
is the common practical alternative: invoke the ``k`` engines with the
largest estimated NoDoc.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List

from repro.core.types import Usefulness

__all__ = [
    "EstimatedUsefulness",
    "SelectionPolicy",
    "ThresholdPolicy",
    "TopKPolicy",
]


@dataclass(frozen=True)
class EstimatedUsefulness:
    """A usefulness estimate attributed to a named engine."""

    engine: str
    usefulness: Usefulness

    @property
    def sort_key(self):
        """Engines compare by (NoDoc, AvgSim) descending, name ascending for
        deterministic ties."""
        return (-self.usefulness.nodoc, -self.usefulness.avgsim, self.engine)


class SelectionPolicy(ABC):
    """Chooses which engines to invoke from ranked usefulness estimates."""

    @abstractmethod
    def select(self, estimates: List[EstimatedUsefulness]) -> List[str]:
        """Names of the engines to invoke, most promising first."""


class ThresholdPolicy(SelectionPolicy):
    """Invoke every engine whose rounded estimated NoDoc is >= ``min_nodoc``.

    ``min_nodoc=1`` is the paper's usefulness criterion.
    """

    def __init__(self, min_nodoc: int = 1):
        if min_nodoc < 1:
            raise ValueError(f"min_nodoc must be >= 1, got {min_nodoc!r}")
        self.min_nodoc = min_nodoc

    def select(self, estimates: List[EstimatedUsefulness]) -> List[str]:
        chosen = [
            e
            for e in estimates
            if e.usefulness.nodoc_rounded >= self.min_nodoc
        ]
        chosen.sort(key=lambda e: e.sort_key)
        return [e.engine for e in chosen]


class TopKPolicy(SelectionPolicy):
    """Invoke the ``k`` engines with the largest estimated NoDoc (non-zero)."""

    def __init__(self, k: int):
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k!r}")
        self.k = k

    def select(self, estimates: List[EstimatedUsefulness]) -> List[str]:
        ranked = sorted(estimates, key=lambda e: e.sort_key)
        return [
            e.engine for e in ranked[: self.k] if e.usefulness.nodoc > 0.0
        ]
