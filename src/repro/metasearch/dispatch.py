"""Concurrent fan-out to local search engines.

The broker in the paper is a thin routing layer over many autonomous
engines; in a real deployment those engines answer over a network and can
be slow, flaky, or down entirely.  This module gives the broker a
production dispatch path:

* **Fan-out** — selected engines are queried in parallel on a
  :class:`~concurrent.futures.ThreadPoolExecutor` (``workers`` threads).
  Engine calls are dominated by I/O wait in a networked deployment (and
  by NumPy kernels, which release the GIL, in-process), so threads give
  real overlap.
* **Timeout** — each dispatch has a deadline of ``timeout`` seconds
  measured from fan-out start; an engine that has not answered by then is
  abandoned and reported as a :class:`EngineFailure` of kind
  ``"timeout"``.  The overall dispatch therefore returns within roughly
  ``timeout`` seconds no matter how many engines hang.
* **Retry** — an engine call that *raises* is retried up to ``retries``
  extra times with jittered exponential backoff (uniform in
  ``[base/2, base]`` for ``base = backoff * 2**attempt`` seconds, so
  concurrent retries against one struggling backend do not synchronize).
  Retries count against the same deadline: the backoff sleep is clamped
  to whatever remains of the fan-out deadline and of any ambient
  request deadline (:func:`repro.serving.deadlines.deadline_scope`), and
  when the budget is already spent the retry is skipped entirely — the
  last exception is surfaced instead of sleeping into a lost cause.  An
  exception whose ``retryable`` attribute is false is never retried
  (serving-layer clients use this to fail fast on exhausted deadlines),
  and its ``failure_kind`` attribute, when present, overrides the
  default ``"error"`` failure kind.  A timed out call is *not* retried:
  the request is still in flight, and issuing another would double the
  load on an already-struggling backend.
* **Graceful degradation** — a failed engine contributes an empty result
  list plus a structured failure record; healthy engines' results are
  unaffected.  The query never sinks with one bad backend.

``workers=1`` keeps the historical serial path: calls run in the caller's
thread, in selection order, with no executor.  A deadline cannot preempt an
in-thread call, so configuring ``timeout`` together with ``workers=1`` is
rejected at construction rather than silently ignored.  Retry and failure
capture still apply on the serial path, so the serial and concurrent paths
return identical results for healthy engines — which is what the property
suite asserts.

Dispatch is instrumented: pass a :class:`~repro.obs.MetricsRegistry` to
record attempts, retries, timeouts, errors, and a per-engine latency
histogram; the default :class:`~repro.obs.NullRegistry` makes every hook a
no-op.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.engine.results import SearchHit
from repro.obs.registry import LATENCY_BUCKETS, NULL_REGISTRY

__all__ = ["ConcurrentDispatcher", "DispatchReport", "EngineFailure"]

#: A zero-argument callable performing one engine search.
EngineCall = Callable[[], List[SearchHit]]


def _ambient_remaining() -> Optional[float]:
    """Seconds left on the tightest ambient serving deadline, or ``None``.

    The serving layer (which imports this module) publishes per-request
    deadlines through a thread-local scope; importing it eagerly here
    would be circular, so the lookup is deferred to call time — by the
    first retry every module involved is fully initialized.
    """
    try:
        from repro.serving.deadlines import ambient_deadline
    except ImportError:  # pragma: no cover - serving package always ships
        return None
    deadline = ambient_deadline()
    return None if deadline is None else deadline.remaining()


@dataclass(frozen=True)
class EngineFailure:
    """One engine's failure to answer a dispatched query.

    Attributes:
        engine: Name of the failing engine.
        kind: ``"timeout"`` (deadline passed, call abandoned) or
            ``"error"`` (every attempt raised).
        attempts: Number of attempts made (0 for a timeout that was
            abandoned before its outcome was observed).
        elapsed: Seconds spent on this engine before giving up.
        message: The final exception rendered as ``ExcType: text``, or a
            timeout description.
    """

    engine: str
    kind: str
    attempts: int
    elapsed: float
    message: str

    def __str__(self) -> str:
        return (
            f"{self.engine}: {self.kind} after {self.attempts} attempt(s) "
            f"in {self.elapsed:.3f}s ({self.message})"
        )


@dataclass
class DispatchReport:
    """Outcome of one fan-out.

    Attributes:
        results: Hits per engine that answered, keyed by engine name.
            Failed engines are absent (their result list is empty by the
            degradation contract).
        failures: One record per engine that timed out or errored.
        latencies: Wall-clock seconds per engine, successes and failures
            alike (for a timeout, the time until abandonment).
    """

    results: Dict[str, List[SearchHit]] = field(default_factory=dict)
    failures: List[EngineFailure] = field(default_factory=list)
    latencies: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every dispatched engine answered."""
        return not self.failures

    def result_lists(self) -> List[List[SearchHit]]:
        """Per-engine hit lists in dispatch order, ready for merging."""
        return list(self.results.values())


class ConcurrentDispatcher:
    """Queries engines in parallel with timeout, retry, and degradation.

    Args:
        workers: Maximum concurrent engine calls; ``1`` selects the
            serial in-thread path (no executor).
        timeout: Deadline in seconds for the whole fan-out, measured from
            dispatch start; ``None`` disables it.  A deadline is only
            enforceable on the concurrent path, so ``timeout`` with
            ``workers=1`` raises :class:`ValueError` instead of silently
            never firing.
        retries: Extra attempts after a raised engine call (a timed out
            call is never retried).
        backoff: Base sleep before retry ``i``: uniform jitter in
            ``[base/2, base]`` for ``base = backoff * 2**(i-1)`` seconds,
            clamped to the remaining fan-out/ambient deadline (the retry
            is skipped outright once that budget is spent); set 0 for
            immediate retries in tests.
        registry: Metrics sink for attempts/retries/timeouts/errors and the
            per-engine latency histogram; the shared no-op registry by
            default.
    """

    def __init__(
        self,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        registry=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout!r}")
        if timeout is not None and workers == 1:
            raise ValueError(
                "timeout requires workers > 1: the serial path runs engine "
                "calls in the caller's thread, where a deadline cannot be "
                "enforced"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries!r}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff!r}")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._m_dispatches = self.registry.counter("dispatch.fanouts")
        self._m_attempts = self.registry.counter("dispatch.attempts")
        self._m_retries = self.registry.counter("dispatch.retries")
        self._m_timeouts = self.registry.counter("dispatch.timeouts")
        self._m_errors = self.registry.counter("dispatch.errors")

    def _observe_engine_latency(self, name: str, seconds: float) -> None:
        self.registry.histogram(
            "dispatch.engine.seconds",
            buckets=LATENCY_BUCKETS,
            labels={"engine": name},
        ).observe(seconds)

    # -- single-engine attempt loop ------------------------------------------------

    def _retry_budget(self, expires_at: Optional[float]) -> Optional[float]:
        """Seconds of sleep available before the tightest deadline —
        the fan-out deadline (``expires_at``, on the ``perf_counter``
        clock) or the ambient serving-request deadline — or ``None``
        when neither applies."""
        budget: Optional[float] = None
        if expires_at is not None:
            budget = expires_at - time.perf_counter()
        ambient = _ambient_remaining()
        if ambient is not None:
            budget = ambient if budget is None else min(budget, ambient)
        return budget

    def _call_with_retry(
        self, name: str, call: EngineCall, expires_at: Optional[float] = None
    ):
        """Run one engine call with bounded retry; returns
        ``(hits, attempts, elapsed)`` or raises the final exception with
        ``.attempts`` / ``.elapsed`` bookkeeping attached.

        ``expires_at`` is the fan-out deadline on the ``perf_counter``
        clock (``None`` when the dispatcher has no timeout).  Backoff
        sleeps are jittered and clamped to the remaining budget; once the
        budget is spent the attempt loop stops retrying and surfaces the
        last exception immediately.
        """
        start = time.perf_counter()
        attempts = 0
        while True:
            attempts += 1
            self._m_attempts.inc()
            try:
                hits = call()
                return hits, attempts, time.perf_counter() - start
            except Exception as exc:
                if attempts > self.retries or not getattr(exc, "retryable", True):
                    exc._dispatch_attempts = attempts
                    exc._dispatch_elapsed = time.perf_counter() - start
                    raise
                if self.backoff:
                    budget = self._retry_budget(expires_at)
                    if budget is not None and budget <= 0:
                        # Deadline already spent: a retry could never
                        # answer in time, so don't sleep into it.
                        exc._dispatch_attempts = attempts
                        exc._dispatch_elapsed = time.perf_counter() - start
                        raise
                    base = self.backoff * (2 ** (attempts - 1))
                    sleep = base * (0.5 + 0.5 * random.random())
                    if budget is not None:
                        sleep = min(sleep, budget)
                    if sleep > 0:
                        time.sleep(sleep)
                self._m_retries.inc()

    @staticmethod
    def _error_failure(name: str, exc: Exception) -> EngineFailure:
        # Exceptions may carry a ``failure_kind`` (e.g. the serving layer
        # marks an exhausted-deadline fail-fast as a "timeout" rather
        # than a generic "error").
        return EngineFailure(
            engine=name,
            kind=getattr(exc, "failure_kind", "error"),
            attempts=getattr(exc, "_dispatch_attempts", 1),
            elapsed=getattr(exc, "_dispatch_elapsed", 0.0),
            message=f"{type(exc).__name__}: {exc}",
        )

    def _count_failure(self, failure: EngineFailure) -> None:
        if failure.kind == "timeout":
            self._m_timeouts.inc()
        else:
            self._m_errors.inc()

    # -- keyed execution core --------------------------------------------------------

    # The execution core works on arbitrary hashable keys plus a ``label``
    # function mapping a key to its engine name (used for failure records
    # and latency histogram labels).  ``dispatch`` uses the engine name as
    # the key directly; ``dispatch_many`` uses ``(batch_index, name)`` so
    # several batches can share one fan-out and one deadline.

    def _execute(self, calls: Mapping, label: Callable) -> tuple:
        if self.workers == 1 or not calls:
            return self._execute_serial(calls, label)
        return self._execute_concurrent(calls, label)

    def _execute_serial(self, calls: Mapping, label: Callable) -> tuple:
        results: Dict = {}
        failures: List[tuple] = []
        latencies: Dict = {}
        for key, call in calls.items():
            name = label(key)
            try:
                hits, attempts, elapsed = self._call_with_retry(name, call)
            except Exception as exc:  # degraded, never fatal
                failure = self._error_failure(name, exc)
                self._count_failure(failure)
                failures.append((key, failure))
                latencies[key] = getattr(exc, "_dispatch_elapsed", 0.0)
            else:
                results[key] = hits
                latencies[key] = elapsed
            self._observe_engine_latency(name, latencies[key])
        return results, failures, latencies

    def _execute_concurrent(self, calls: Mapping, label: Callable) -> tuple:
        results: Dict = {}
        failures: List[tuple] = []
        latencies: Dict = {}
        start = time.perf_counter()
        expires_at = None if self.timeout is None else start + self.timeout
        outcomes: Dict = {}
        lock = threading.Lock()

        def run(key, call: EngineCall) -> None:
            # Outcomes are recorded inside the worker so a late-finishing
            # engine that already missed the deadline cannot race the
            # report assembly below.
            try:
                hits, attempts, elapsed = self._call_with_retry(
                    label(key), call, expires_at
                )
                with lock:
                    outcomes[key] = ("ok", hits, attempts, elapsed)
            except Exception as exc:
                with lock:
                    outcomes[key] = ("error", exc)

        executor = ThreadPoolExecutor(
            max_workers=min(self.workers, len(calls)),
            thread_name_prefix="repro-dispatch",
        )
        try:
            futures = {
                key: executor.submit(run, key, call)
                for key, call in calls.items()
            }
            for key, future in futures.items():
                remaining: Optional[float] = None
                if self.timeout is not None:
                    remaining = max(0.0, self.timeout - (time.perf_counter() - start))
                try:
                    future.result(timeout=remaining)
                except FutureTimeout:
                    future.cancel()
                latencies[key] = time.perf_counter() - start
            with lock:
                done = dict(outcomes)
            for key in calls:
                outcome = done.get(key)
                if outcome is None:
                    self._m_timeouts.inc()
                    failures.append(
                        (
                            key,
                            EngineFailure(
                                engine=label(key),
                                kind="timeout",
                                attempts=0,
                                elapsed=latencies[key],
                                message=f"no answer within {self.timeout}s deadline",
                            ),
                        )
                    )
                elif outcome[0] == "ok":
                    _, hits, attempts, elapsed = outcome
                    results[key] = hits
                    latencies[key] = elapsed
                else:
                    exc = outcome[1]
                    failure = self._error_failure(label(key), exc)
                    self._count_failure(failure)
                    failures.append((key, failure))
                    latencies[key] = getattr(exc, "_dispatch_elapsed", 0.0)
                self._observe_engine_latency(label(key), latencies[key])
        finally:
            # Abandon hung workers instead of joining them; their threads
            # finish (or leak until process exit) without blocking us.
            executor.shutdown(wait=False)
        return results, failures, latencies

    # -- fan-out --------------------------------------------------------------------

    def dispatch(self, calls: Mapping[str, EngineCall]) -> DispatchReport:
        """Run every engine call; never raises for an engine failure.

        Args:
            calls: Ordered mapping engine name -> zero-argument search
                call.  Result/latency dicts preserve this order for the
                engines that answered.
        """
        self._m_dispatches.inc()
        results, failures, latencies = self._execute(calls, lambda key: key)
        return DispatchReport(
            results={name: results[name] for name in calls if name in results},
            failures=[failure for __, failure in failures],
            latencies={
                name: latencies[name] for name in calls if name in latencies
            },
        )

    def dispatch_many(
        self, batches: Sequence[Mapping[str, EngineCall]]
    ) -> List[DispatchReport]:
        """Fan out several queries' engine calls as one pooled dispatch.

        All calls across all batches share the executor and — unlike
        per-batch :meth:`dispatch` loops, where every batch gets a fresh
        ``timeout`` — a *single* deadline measured from the start of the
        whole fan-out.  Per-batch results are split back into one
        :class:`DispatchReport` per input batch, preserving each batch's
        call order; an engine may appear in any number of batches.

        On the serial path (``workers=1``) batches simply run back to
        back, preserving the historical semantics.
        """
        self._m_dispatches.inc()
        flat: Dict[tuple, EngineCall] = {}
        for index, calls in enumerate(batches):
            for name, call in calls.items():
                flat[(index, name)] = call
        results, failures, latencies = self._execute(flat, lambda key: key[1])
        reports = []
        for index, calls in enumerate(batches):
            reports.append(
                DispatchReport(
                    results={
                        name: results[(index, name)]
                        for name in calls
                        if (index, name) in results
                    },
                    failures=[
                        failure
                        for key, failure in failures
                        if key[0] == index
                    ],
                    latencies={
                        name: latencies[(index, name)]
                        for name in calls
                        if (index, name) in latencies
                    },
                )
            )
        return reports

    def __repr__(self) -> str:
        return (
            f"ConcurrentDispatcher(workers={self.workers}, "
            f"timeout={self.timeout}, retries={self.retries})"
        )
