"""Engine/broker exchange protocol with representative staleness.

The paper's architecture assumes the broker's metadata lags the engines:
"local updates may need to be propagated to the metadata ... the propagation
can be done infrequently as the metadata are typically statistical in nature
and can tolerate certain degree of inaccuracy."  This module makes that
claim measurable:

* :class:`EngineServer` wraps a growing document collection behind the two
  calls a remote engine would expose — ``snapshot_representative()`` and
  ``search()`` — and versions its representative by document count.
* :class:`SubscribingBroker` holds possibly-stale representative snapshots
  and refreshes them only when an engine has grown by more than a
  configurable fraction since the last snapshot (the "infrequent
  propagation" policy).
* ``staleness()`` reports how out-of-date each snapshot is, and the
  ``bench_staleness`` benchmark sweeps the refresh policy against selection
  quality — quantifying exactly how much inaccuracy the statistics
  tolerate.

The implementation is in-process (the reproduction has no network), but the
interfaces mirror what a wire protocol would carry: name, version, the
serialized representative, hit lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.base import UsefulnessEstimator
from repro.core.subrange_estimator import SubrangeEstimator
from repro.corpus.collection import Collection
from repro.corpus.document import Document
from repro.corpus.query import Query
from repro.engine.results import SearchHit
from repro.engine.search_engine import SearchEngine
from repro.metasearch.merge import merge_hits
from repro.representatives.builder import build_representative
from repro.representatives.representative import DatabaseRepresentative

__all__ = ["EngineServer", "RepresentativeSnapshot", "SubscribingBroker"]


@dataclass(frozen=True)
class RepresentativeSnapshot:
    """A versioned representative as published by an engine."""

    name: str
    version: int  # the engine's document count at snapshot time
    representative: DatabaseRepresentative


class EngineServer:
    """A local search engine that grows over time and serves snapshots.

    Documents are appended with :meth:`add_documents`; the engine's index is
    rebuilt lazily on the next search or snapshot (document addition changes
    only the new documents' normalized weights, but the index itself is
    immutable, so a rebuild is the simple correct choice at this scale).
    """

    def __init__(self, name: str, documents: Optional[List[Document]] = None):
        self._name = name
        self._documents: List[Document] = list(documents or [])
        self._engine: Optional[SearchEngine] = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def version(self) -> int:
        """Current version = number of documents held."""
        return len(self._documents)

    def add_documents(self, documents: List[Document]) -> None:
        """Ingest new documents; invalidates the built index."""
        self._documents.extend(documents)
        self._engine = None

    def _built(self) -> SearchEngine:
        if self._engine is None:
            collection = Collection.from_documents(self._name, self._documents)
            self._engine = SearchEngine(collection)
        return self._engine

    def snapshot_representative(self) -> RepresentativeSnapshot:
        """Publish the current representative (the expensive call a real
        deployment batches — exactly why brokers tolerate staleness)."""
        return RepresentativeSnapshot(
            name=self._name,
            version=self.version,
            representative=build_representative(self._built()),
        )

    def search(self, query: Query, threshold: float) -> List[SearchHit]:
        """Serve a query against the *current* documents."""
        return self._built().search(query, threshold)

    def max_similarity(self, query: Query) -> float:
        return self._built().max_similarity(query)

    def __repr__(self) -> str:
        return f"EngineServer({self._name!r}, version={self.version})"


class SubscribingBroker:
    """A broker holding possibly-stale representative snapshots.

    Args:
        estimator: Usefulness estimator over the snapshots.
        refresh_growth: Refresh an engine's snapshot when its live version
            exceeds the snapshot version by more than this fraction
            (0.0 = always refresh; 1.0 = refresh only after doubling).
    """

    def __init__(
        self,
        estimator: Optional[UsefulnessEstimator] = None,
        refresh_growth: float = 0.1,
    ):
        if refresh_growth < 0.0:
            raise ValueError(f"refresh_growth must be >= 0, got {refresh_growth!r}")
        self.estimator = estimator or SubrangeEstimator()
        self.refresh_growth = refresh_growth
        self._servers: Dict[str, EngineServer] = {}
        self._snapshots: Dict[str, RepresentativeSnapshot] = {}
        self.refresh_count = 0

    def register(self, server: EngineServer) -> None:
        """Subscribe to an engine; takes an initial snapshot.

        Engine names must be unique — the name is the routing key.
        Re-registering the *same server object* is a refresh: a fresh
        snapshot is taken immediately, regardless of the growth policy
        (mirroring :meth:`~repro.metasearch.broker.MetasearchBroker.
        register`).  Registering a *different* server under an existing
        name stays an error.
        """
        existing = self._servers.get(server.name)
        if existing is not None and existing is not server:
            raise ValueError(f"engine {server.name!r} already registered")
        self._servers[server.name] = server
        self._snapshots[server.name] = server.snapshot_representative()
        self.refresh_count += 1

    @property
    def engine_names(self) -> List[str]:
        return sorted(self._servers)

    def staleness(self) -> Dict[str, float]:
        """Per engine: fraction of documents the snapshot has not seen."""
        out = {}
        for name, server in self._servers.items():
            live = server.version
            seen = self._snapshots[name].version
            out[name] = (live - seen) / live if live else 0.0
        return out

    def maybe_refresh(self) -> List[str]:
        """Apply the refresh policy; returns the engines refreshed."""
        refreshed = []
        for name, server in self._servers.items():
            snapshot = self._snapshots[name]
            if snapshot.version == 0 and server.version > 0:
                grown = float("inf")
            elif snapshot.version == 0:
                grown = 0.0
            else:
                grown = (server.version - snapshot.version) / snapshot.version
            if grown > self.refresh_growth:
                self._snapshots[name] = server.snapshot_representative()
                self.refresh_count += 1
                refreshed.append(name)
        return refreshed

    def select(self, query: Query, threshold: float) -> List[str]:
        """Engines whose (possibly stale) snapshot estimates usefulness."""
        selected = []
        for name in self.engine_names:
            representative = self._snapshots[name].representative
            estimate = self.estimator.estimate(query, representative, threshold)
            if estimate.identifies_useful:
                selected.append(name)
        return selected

    def search(
        self, query: Query, threshold: float, limit: Optional[int] = None
    ) -> List[SearchHit]:
        """Select on snapshots, search live engines, merge."""
        result_lists = [
            self._servers[name].search(query, threshold)
            for name in self.select(query, threshold)
        ]
        return merge_hits(result_lists, limit=limit)

    def true_selection(self, query: Query, threshold: float) -> List[str]:
        """Oracle over the engines' *live* contents."""
        return [
            name
            for name in self.engine_names
            if self._servers[name].max_similarity(query) > threshold
        ]
