"""LRU caches for per-engine usefulness estimates and term polynomials.

Two memoization layers live here:

* :class:`EstimateCache` — whole answers.  Usefulness estimation is a pure
  function of (representative, query, threshold), and real query logs are
  heavily repetitive — so the broker caches estimates keyed on ``(engine,
  query terms, *normalized* weights, threshold)`` and invalidates an
  engine's entries whenever its representative is rebuilt or replaced.
  Keys use the unit-normalized weight vector because that is all an
  estimator ever consumes (:meth:`Query.normalized_items`): raw weights
  ``(1, 1)`` and ``(2, 2)`` describe the same query, and keying on them raw
  fragmented the cache into one entry per proportional variant.

* :class:`TermPolynomialCache` — per-term factors.  An expansion
  estimator's ``(exponents, coeffs)`` factor is a pure function of
  (estimator configuration, engine representative, term, normalized query
  weight), so distinct queries sharing vocabulary share factors even when
  their estimate keys differ.  Unmatched terms are negatively cached
  (value ``None``).  Both caches invalidate through the same per-engine
  hook when a representative changes.

The caches are thread-safe: lookups may happen concurrently with a
registration refresh on another thread.  Hit/miss/eviction/invalidation
totals are kept both as plain attributes (cheap to read in-process) and,
when a :class:`~repro.obs.MetricsRegistry` is supplied, as registry
counters plus a resident-size gauge for export.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.core.types import Usefulness
from repro.corpus.query import Query
from repro.obs.registry import NULL_REGISTRY

__all__ = ["EstimateCache", "TermPolynomialCache"]

#: Cache key: (engine name, query terms, normalized query weights, threshold).
CacheKey = Tuple[str, Tuple[str, ...], Tuple[float, ...], float]

#: Decimals kept of each normalized weight — enough that distinct weight
#: profiles stay distinct while float noise from equal profiles merges.
_KEY_DECIMALS = 12


class EstimateCache:
    """Bounded LRU mapping (engine, query, threshold) -> Usefulness.

    Args:
        maxsize: Maximum resident entries; the least recently used entry
            is evicted when full.  Must be positive — construct no cache
            at all to disable caching.
        registry: Metrics sink mirroring the hit/miss/eviction/invalidation
            counters and the resident-size gauge; no-op by default.
    """

    def __init__(self, maxsize: int = 1024, registry=None):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize!r}")
        self.maxsize = maxsize
        self._data: "OrderedDict[CacheKey, Usefulness]" = OrderedDict()
        # term -> cache-key index, keyed (engine, term): the precise
        # invalidation path drops only entries whose queries touch a
        # delta's terms instead of the whole engine.
        self._by_term: Dict[Tuple[str, str], Set[CacheKey]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_hits = registry.counter("cache.hits")
        self._m_misses = registry.counter("cache.misses")
        self._m_evictions = registry.counter("cache.evictions")
        self._m_invalidations = registry.counter("cache.invalidations")
        self._m_size = registry.gauge("cache.size")

    @staticmethod
    def query_key(query: Query) -> Tuple[Tuple[str, ...], Tuple[float, ...]]:
        """The query's ``(terms, normalized weights)`` identity.

        Weights enter *unit-normalized* (rounded to 12 decimals):
        estimators only ever see :meth:`Query.normalized_items`, so
        proportional raw weights — ``(1, 1)`` vs ``(2, 2)`` — must map to
        the same entry instead of fragmenting the cache.  The batch
        pipeline also groups queries by this key to share expansions.
        """
        normalized = tuple(
            round(w, _KEY_DECIMALS) for w in query.normalized_weights().tolist()
        )
        return (query.terms, normalized)

    @classmethod
    def key_for(cls, engine: str, query: Query, threshold: float) -> CacheKey:
        """The cache key for one estimate."""
        terms, normalized = cls.query_key(query)
        return (engine, terms, normalized, float(threshold))

    def get(self, key: CacheKey) -> Optional[Usefulness]:
        """The cached estimate, refreshed as most recently used; None on miss."""
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                self._m_misses.inc()
                return None
            self._data.move_to_end(key)
            self.hits += 1
            self._m_hits.inc()
            return value

    def peek(self, key: CacheKey) -> bool:
        """Presence test with no side effects: no hit/miss accounting and
        no recency refresh — for probes that must not distort stats when
        they bail out partway (e.g. the coalescing cache probe)."""
        with self._lock:
            return key in self._data

    def _index(self, key: CacheKey) -> None:
        for term in key[1]:
            self._by_term.setdefault((key[0], term), set()).add(key)

    def _unindex(self, key: CacheKey) -> None:
        for term in key[1]:
            bucket = self._by_term.get((key[0], term))
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_term[(key[0], term)]

    def put(self, key: CacheKey, value: Usefulness) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            else:
                self._index(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                evicted, __ = self._data.popitem(last=False)
                self._unindex(evicted)
                self.evictions += 1
                self._m_evictions.inc()
            self._m_size.set(len(self._data))

    def invalidate_engine(self, engine: str) -> int:
        """Drop every entry for ``engine`` (its representative changed).

        Returns:
            Number of entries removed.
        """
        with self._lock:
            stale = [key for key in self._data if key[0] == engine]
            for key in stale:
                del self._data[key]
                self._unindex(key)
            self.invalidations += len(stale)
            self._m_invalidations.inc(len(stale))
            self._m_size.set(len(self._data))
            return len(stale)

    def invalidate_terms(
        self, engine: str, terms: Iterable[str]
    ) -> Tuple[int, int]:
        """Drop only ``engine`` entries whose queries touch ``terms``.

        The precise path for a representative delta: an estimate is a
        function of its query terms' statistics (plus the document count,
        which the caller accounts for by widening ``terms``), so entries
        over disjoint vocabulary are provably still valid and survive.

        Returns:
            ``(evicted, retained)`` — entries dropped vs. entries for
            ``engine`` left resident.
        """
        with self._lock:
            stale: Set[CacheKey] = set()
            for term in terms:
                stale.update(self._by_term.get((engine, term), ()))
            for key in stale:
                del self._data[key]
                self._unindex(key)
            retained = sum(1 for key in self._data if key[0] == engine)
            self.invalidations += len(stale)
            self._m_invalidations.inc(len(stale))
            self._m_size.set(len(self._data))
            return len(stale), retained

    def clear(self) -> None:
        """Drop all entries; the hit/miss/eviction counters survive."""
        with self._lock:
            self._data.clear()
            self._by_term.clear()
            self._m_size.set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"EstimateCache(size={len(self)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: Polynomial cache key: (estimator config, engine, term, rounded weight).
#: The term slot holds the string, or its interned integer id when the
#: cache is constructed with a shared broker vocabulary.
PolyKey = Tuple[Tuple, str, object, float]


class TermPolynomialCache:
    """Bounded LRU mapping (estimator config, engine, term, query weight)
    to a frozen ``(exponents, coeffs)`` factor — or ``None`` for a term the
    engine's representative does not match (negative caching, so repeated
    misses skip the representative lookup too).

    The stored arrays are exactly what a fresh
    :meth:`~repro.core.base.ExpansionEstimator.term_polynomial` call would
    return (read-only views of them), so memoized expansions are
    bit-identical to unmemoized ones.

    Args:
        maxsize: Maximum resident entries (LRU-evicted beyond this).
        registry: Metrics sink for ``estimator.polycache.*`` counters and
            the resident-size gauge; no-op by default.
        vocab: Optional :class:`~repro.representatives.columnar.BrokerVocabulary`.
            When given, keys carry the term's interned integer id instead of
            the string — one shared id per distinct term fleet-wide, and key
            tuples that hash/compare on small ints instead of text.
    """

    def __init__(self, maxsize: int = 4096, registry=None, vocab=None):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize!r}")
        self.maxsize = maxsize
        self._vocab = vocab
        self._data: "OrderedDict[PolyKey, object]" = OrderedDict()
        # (engine, term slot) -> keys, for precise per-term invalidation.
        # The term slot matches the key's third element: the interned id
        # when a vocabulary is attached, the raw string otherwise.
        self._by_term: Dict[Tuple[str, object], Set[PolyKey]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_hits = registry.counter("estimator.polycache.hits")
        self._m_misses = registry.counter("estimator.polycache.misses")
        self._m_evictions = registry.counter("estimator.polycache.evictions")
        self._m_invalidations = registry.counter(
            "estimator.polycache.invalidations"
        )
        self._m_size = registry.gauge("estimator.polycache.size")

    @staticmethod
    def key_for(config: Tuple, engine: str, term: str, weight: float) -> PolyKey:
        """Weights are rounded like :meth:`EstimateCache.key_for` rounds
        them, so float noise between equal profiles shares entries."""
        return (config, engine, term, round(float(weight), _KEY_DECIMALS))

    def _key(self, config: Tuple, engine: str, term: str, weight: float) -> PolyKey:
        if self._vocab is not None:
            term = self._vocab.intern(term)
        return (config, engine, term, round(float(weight), _KEY_DECIMALS))

    def lookup(
        self, config: Tuple, engine: str, term: str, weight: float
    ) -> Tuple[bool, object]:
        """``(hit, value)`` — value may be a cached ``None`` on a hit."""
        key = self._key(config, engine, term, weight)
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                self._m_hits.inc()
                return True, self._data[key]
            self.misses += 1
            self._m_misses.inc()
            return False, None

    def _index(self, key: PolyKey) -> None:
        self._by_term.setdefault((key[1], key[2]), set()).add(key)

    def _unindex(self, key: PolyKey) -> None:
        bucket = self._by_term.get((key[1], key[2]))
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del self._by_term[(key[1], key[2])]

    def store(
        self, config: Tuple, engine: str, term: str, weight: float, value
    ) -> None:
        key = self._key(config, engine, term, weight)
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            else:
                self._index(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                evicted, __ = self._data.popitem(last=False)
                self._unindex(evicted)
                self.evictions += 1
                self._m_evictions.inc()
            self._m_size.set(len(self._data))

    def invalidate_engine(self, engine: str) -> int:
        """Drop every factor derived from ``engine``'s representative.

        Returns:
            Number of entries removed.
        """
        with self._lock:
            stale = [key for key in self._data if key[1] == engine]
            for key in stale:
                del self._data[key]
                self._unindex(key)
            self.invalidations += len(stale)
            self._m_invalidations.inc(len(stale))
            self._m_size.set(len(self._data))
            return len(stale)

    def invalidate_terms(
        self, engine: str, terms: Iterable[str]
    ) -> Tuple[int, int]:
        """Drop only the factors of ``engine``'s changed ``terms``.

        Sound only for estimators whose per-term factor depends on that
        term's statistics alone (``term_local`` estimators) — the broker
        falls back to :meth:`invalidate_engine` otherwise.  Negative
        entries for terms never present in the representative do not
        depend on the document count and survive an ``n``-only change
        (the caller widens ``terms`` with every present term when ``n``
        moves).

        Returns:
            ``(evicted, retained)`` — entries dropped vs. entries for
            ``engine`` left resident.
        """
        with self._lock:
            slots: Set[object] = set()
            for term in terms:
                if self._vocab is not None:
                    tid = self._vocab.id_of(term)
                    if tid >= 0:
                        slots.add(tid)
                else:
                    slots.add(term)
            stale: Set[PolyKey] = set()
            for slot in slots:
                stale.update(self._by_term.get((engine, slot), ()))
            for key in stale:
                del self._data[key]
                self._unindex(key)
            retained = sum(1 for key in self._data if key[1] == engine)
            self.invalidations += len(stale)
            self._m_invalidations.inc(len(stale))
            self._m_size.set(len(self._data))
            return len(stale), retained

    def clear(self) -> None:
        """Drop all entries; the hit/miss/eviction counters survive."""
        with self._lock:
            self._data.clear()
            self._by_term.clear()
            self._m_size.set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"TermPolynomialCache(size={len(self)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
