"""LRU cache for per-engine usefulness estimates.

Usefulness estimation is a pure function of (representative, query,
threshold), and real query logs are heavily repetitive — so the broker
caches estimates keyed on ``(engine, query terms+weights, threshold)``
and invalidates an engine's entries whenever its representative is
rebuilt or replaced.  The cache is thread-safe: estimate lookups may
happen concurrently with a registration refresh on another thread.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional, Tuple

from repro.core.types import Usefulness
from repro.corpus.query import Query

__all__ = ["EstimateCache"]

#: Cache key: (engine name, query terms, query weights, threshold).
CacheKey = Tuple[str, Tuple[str, ...], Tuple[float, ...], float]


class EstimateCache:
    """Bounded LRU mapping (engine, query, threshold) -> Usefulness.

    Args:
        maxsize: Maximum resident entries; the least recently used entry
            is evicted when full.  Must be positive — construct no cache
            at all to disable caching.
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize!r}")
        self.maxsize = maxsize
        self._data: "OrderedDict[CacheKey, Usefulness]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key_for(engine: str, query: Query, threshold: float) -> CacheKey:
        """The cache key for one estimate; weights are part of the key
        because estimators see normalized weights, not just terms."""
        return (engine, query.terms, query.weights, float(threshold))

    def get(self, key: CacheKey) -> Optional[Usefulness]:
        """The cached estimate, refreshed as most recently used; None on miss."""
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: CacheKey, value: Usefulness) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def invalidate_engine(self, engine: str) -> int:
        """Drop every entry for ``engine`` (its representative changed).

        Returns:
            Number of entries removed.
        """
        with self._lock:
            stale = [key for key in self._data if key[0] == engine]
            for key in stale:
                del self._data[key]
            return len(stale)

    def clear(self) -> None:
        """Drop all entries; the hit/miss/eviction counters survive."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"EstimateCache(size={len(self)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
