"""Metasearch engine — the top level of the paper's architecture.

A :class:`MetasearchBroker` keeps one database representative per registered
local search engine, ranks the engines for each incoming query with a
usefulness estimator, forwards the query only to the selected engines, and
merges their results under the global similarity function.
"""

from repro.metasearch.allocation import (
    allocate_documents,
    expected_nodoc_at,
    threshold_for_k,
)
from repro.metasearch.hierarchy import BrokerNode, HierarchySearchReport
from repro.metasearch.protocol import (
    EngineServer,
    RepresentativeSnapshot,
    SubscribingBroker,
)
from repro.metasearch.broker import (
    EngineRegistration,
    MetasearchBroker,
    MetasearchResponse,
)
from repro.metasearch.cache import EstimateCache, TermPolynomialCache
from repro.metasearch.dispatch import (
    ConcurrentDispatcher,
    DispatchReport,
    EngineFailure,
)
from repro.metasearch.merge import merge_hits
from repro.metasearch.selection import (
    EstimatedUsefulness,
    SelectionPolicy,
    ThresholdPolicy,
    TopKPolicy,
)

__all__ = [
    "BrokerNode",
    "ConcurrentDispatcher",
    "DispatchReport",
    "EngineFailure",
    "EngineRegistration",
    "EngineServer",
    "EstimateCache",
    "HierarchySearchReport",
    "RepresentativeSnapshot",
    "SubscribingBroker",
    "EstimatedUsefulness",
    "MetasearchBroker",
    "MetasearchResponse",
    "SelectionPolicy",
    "TermPolynomialCache",
    "ThresholdPolicy",
    "TopKPolicy",
    "allocate_documents",
    "expected_nodoc_at",
    "merge_hits",
    "threshold_for_k",
]
