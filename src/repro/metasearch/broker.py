"""The metasearch broker.

The broker is "just an interface" plus representatives, exactly as the paper
describes: it holds no document index of its own.  For each query it (1)
estimates every registered engine's usefulness from its representative,
(2) applies a selection policy, (3) forwards the query to the selected
engines only, and (4) merges their results.  A ``search_all`` baseline
broadcasts to every engine, which is what selection is meant to avoid.

Two production concerns live behind the same interface:

* Dispatch runs through a :class:`~repro.metasearch.dispatch.ConcurrentDispatcher`
  — parallel fan-out with per-dispatch timeout, bounded retry, and graceful
  degradation.  ``workers=1`` (the default) preserves the historical serial
  semantics exactly.
* Estimates are memoized in an :class:`~repro.metasearch.cache.EstimateCache`
  keyed on (engine, query, threshold); re-registering an engine invalidates
  its entries, so a rebuilt representative is never shadowed by stale
  estimates.
* Below the estimate cache sits a
  :class:`~repro.metasearch.cache.TermPolynomialCache` memoizing each
  expansion estimator's per-term ``(exponents, coeffs)`` factor keyed on
  (estimator config, engine, term, normalized query weight) — distinct
  queries sharing vocabulary share factors even when their estimate keys
  differ.  Both caches invalidate through the same per-engine
  registration hook, and the cached factors are bit-identical to fresh
  computation, so memoized answers equal unmemoized ones exactly.
* :meth:`MetasearchBroker.estimate_batch` and
  :meth:`MetasearchBroker.search_batch` run many queries in one pass:
  expansions are shared across a batch's duplicate queries, both caches
  are consulted and populated in one sweep, and dispatch pools every
  query's engine calls on the dispatcher's thread pool under a single
  batch deadline (:meth:`~repro.metasearch.dispatch.ConcurrentDispatcher.dispatch_many`).

The whole pipeline is observable: every search builds a
:class:`~repro.obs.QueryTrace` with one span per stage (``estimate``,
``select``, ``dispatch`` plus a ``dispatch:<engine>`` child per invoked
engine, ``merge``), and a :class:`~repro.obs.MetricsRegistry` passed at
construction collects search totals, per-stage latency histograms, and the
dispatcher/cache/estimator series.  The default
:class:`~repro.obs.NullRegistry` keeps all metric hooks free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.base import ExpansionEstimator, UsefulnessEstimator
from repro.core.subrange_estimator import SubrangeEstimator
from repro.core.types import Usefulness
from repro.core.vectorized import fleet_usefulness_grid, supports_fleet
from repro.corpus.query import Query
from repro.engine.results import SearchHit
from repro.engine.search_engine import SearchEngine
from repro.fleet.delta import RepresentativeDelta, apply_delta as _apply_dict_delta
from repro.metasearch.cache import EstimateCache, TermPolynomialCache
from repro.metasearch.dispatch import ConcurrentDispatcher, EngineFailure
from repro.metasearch.merge import merge_hits
from repro.metasearch.selection import (
    EstimatedUsefulness,
    SelectionPolicy,
    ThresholdPolicy,
)
from repro.obs.registry import LATENCY_BUCKETS, NULL_REGISTRY
from repro.obs.trace import QueryTrace
from repro.representatives.builder import build_representative
from repro.representatives.columnar import (
    FleetRepresentativeRef,
    FleetRepresentativeStore,
)
from repro.representatives.representative import DatabaseRepresentative

__all__ = [
    "DeltaApplyReport",
    "EngineRegistration",
    "MetasearchBroker",
    "MetasearchResponse",
]


@dataclass
class EngineRegistration:
    """An engine known to the broker, with its representative."""

    engine: SearchEngine
    representative: DatabaseRepresentative


@dataclass(frozen=True)
class DeltaApplyReport:
    """Outcome of applying one representative delta at the broker.

    Attributes:
        name: Engine whose representative was updated.
        from_version: Version the delta was built against.
        to_version: Version the representative is now at.
        mode: ``"precise"`` when only the affected terms' cache entries
            were evicted, ``"full"`` when the estimator is not term-local
            and the broker fell back to whole-engine eviction.
        nbytes: Canonical wire size of the delta.
        terms_touched: Terms the delta adds, removes, or reweights.
        cache_evicted / cache_retained: Estimate-cache entries for this
            engine dropped vs. kept by the invalidation.
        polycache_evicted / polycache_retained: Same for the term-
            polynomial cache.
        seconds: Wall-clock apply time (mutation plus invalidation).
    """

    name: str
    from_version: int
    to_version: int
    mode: str
    nbytes: int
    terms_touched: int
    cache_evicted: int
    cache_retained: int
    polycache_evicted: int
    polycache_retained: int
    seconds: float = field(compare=False)


@dataclass(frozen=True)
class MetasearchResponse:
    """Outcome of one brokered search.

    Attributes:
        hits: Globally ranked merged hits from the engines that answered.
        invoked: Names of the engines the query was forwarded to.
        estimates: All per-engine usefulness estimates (invoked or not),
            most promising first — useful for diagnostics and the paper's
            evaluation harness.
        failures: One :class:`~repro.metasearch.dispatch.EngineFailure`
            per invoked engine that timed out or errored; such an engine
            contributes no hits but does not sink the query.
        latencies: Wall-clock seconds per invoked engine (time until
            abandonment for a failed one).
        trace: The per-stage :class:`~repro.obs.QueryTrace` recorded while
            answering (estimate/select/dispatch/merge spans plus one
            ``dispatch:<engine>`` span per invoked engine).  Excluded from
            equality: two identical answers differ only in timing.
    """

    hits: List[SearchHit]
    invoked: List[str]
    estimates: List[EstimatedUsefulness]
    failures: List[EngineFailure] = field(default_factory=list)
    latencies: Dict[str, float] = field(default_factory=dict)
    trace: Optional[QueryTrace] = field(default=None, compare=False, repr=False)

    @property
    def degraded(self) -> bool:
        """True when at least one invoked engine failed to answer."""
        return bool(self.failures)

    @property
    def answered(self) -> List[str]:
        """Invoked engines that actually contributed results."""
        failed = {f.engine for f in self.failures}
        return [name for name in self.invoked if name not in failed]


class MetasearchBroker:
    """Selects and queries local search engines via usefulness estimates.

    Args:
        estimator: Usefulness estimator applied to each representative; the
            paper's subrange method by default.
        policy: Engine selection policy; the paper's threshold criterion
            (estimated NoDoc >= 1) by default.
        workers: Concurrent engine calls per search; ``1`` keeps the
            serial dispatch path.
        timeout: Fan-out deadline in seconds; ``None`` waits indefinitely.
            Requires ``workers > 1`` (the serial path cannot preempt an
            in-thread call, so the combination raises :class:`ValueError`
            instead of silently never enforcing the deadline).
        retries: Extra attempts after an engine call raises.
        backoff: Base backoff in seconds between retry attempts.
        cache_size: Capacity of the estimate cache; ``0`` disables
            caching entirely.
        polycache_size: Capacity of the term-polynomial cache memoizing
            each expansion estimator's per-term factors across queries;
            ``0`` disables it.  Only expansion estimators use it.
        columnar: Keep representatives in a columnar
            :class:`~repro.representatives.columnar.FleetRepresentativeStore`
            (terms interned into one shared vocabulary, per-engine stats as
            packed numpy arrays) and answer :meth:`estimate_all` /
            :meth:`estimate_batch` through the engine-axis vectorized pass
            of :mod:`repro.core.vectorized` when the estimator supports it.
            Estimates are bit-identical to the scalar path; estimators
            without a vectorized path fall back to it transparently.
        fleet: A pre-built
            :class:`~repro.representatives.columnar.FleetRepresentativeStore`
            to adopt instead of creating a fresh one (implies
            ``columnar=True``).  Shard workers use this to serve a slice
            shipped as an ``.npz`` bundle: engines registered without an
            explicit representative reuse their resident fleet entry
            rather than rebuilding from the engine (which may be remote).
        registry: A :class:`~repro.obs.MetricsRegistry` receiving search
            totals, per-stage latency histograms, and the dispatcher /
            cache / estimator series; the shared no-op registry by default,
            which keeps every hook free.
    """

    def __init__(
        self,
        estimator: Optional[UsefulnessEstimator] = None,
        policy: Optional[SelectionPolicy] = None,
        *,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        cache_size: int = 1024,
        polycache_size: int = 4096,
        columnar: bool = False,
        fleet: Optional[FleetRepresentativeStore] = None,
        registry=None,
    ):
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size!r}")
        if polycache_size < 0:
            raise ValueError(
                f"polycache_size must be >= 0, got {polycache_size!r}"
            )
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.estimator = (estimator or SubrangeEstimator()).instrument(self.registry)
        self.policy = policy or ThresholdPolicy()
        self.dispatcher = ConcurrentDispatcher(
            workers=workers,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            registry=self.registry,
        )
        if fleet is not None:
            self.fleet: Optional[FleetRepresentativeStore] = fleet
        else:
            self.fleet = FleetRepresentativeStore() if columnar else None
        self.cache: Optional[EstimateCache] = (
            EstimateCache(cache_size, registry=self.registry) if cache_size else None
        )
        self.polycache: Optional[TermPolynomialCache] = (
            TermPolynomialCache(
                polycache_size,
                registry=self.registry,
                vocab=self.fleet.vocab if self.fleet is not None else None,
            )
            if polycache_size
            else None
        )
        self._engines: Dict[str, EngineRegistration] = {}
        self._rep_versions: Dict[str, int] = {}
        self._m_searches = self.registry.counter("broker.searches")
        self._m_degraded = self.registry.counter("broker.searches.degraded")
        self._m_invoked = self.registry.counter("broker.engines.invoked")
        self._m_search_seconds = self.registry.histogram(
            "broker.search.seconds", buckets=LATENCY_BUCKETS
        )
        self._m_batches = self.registry.counter("broker.batch.batches")
        self._m_batch_queries = self.registry.counter("broker.batch.queries")
        self._m_batch_seconds = self.registry.histogram(
            "broker.batch.seconds", buckets=LATENCY_BUCKETS
        )
        self._m_delta_applies = self.registry.counter("fleet.delta.applies")
        self._m_delta_bytes = self.registry.counter("fleet.delta.bytes")
        self._m_delta_terms = self.registry.counter("fleet.delta.terms")
        self._m_delta_full = self.registry.counter("fleet.delta.full_evictions")
        self._m_delta_cache_evicted = self.registry.counter(
            "fleet.delta.cache.evicted"
        )
        self._m_delta_cache_retained = self.registry.counter(
            "fleet.delta.cache.retained"
        )
        self._m_delta_poly_evicted = self.registry.counter(
            "fleet.delta.polycache.evicted"
        )
        self._m_delta_poly_retained = self.registry.counter(
            "fleet.delta.polycache.retained"
        )
        self._m_delta_seconds = self.registry.histogram(
            "fleet.delta.apply.seconds", buckets=LATENCY_BUCKETS
        )

    def _stage_seconds(self, stage: str):
        return self.registry.histogram(
            "broker.stage.seconds", buckets=LATENCY_BUCKETS, labels={"stage": stage}
        )

    # -- registration -------------------------------------------------------------

    def register(
        self,
        engine: SearchEngine,
        representative: Optional[DatabaseRepresentative] = None,
        *,
        version: Optional[int] = None,
    ) -> None:
        """Register a local engine; builds its representative when omitted.

        Engine names must be unique — the name is the routing key.
        Re-registering the *same engine object* is a refresh: its
        representative is rebuilt (or replaced by the one given) and any
        cached estimates for it are invalidated, so a corpus change
        becomes visible to selection immediately.  Registering a
        *different* engine under an existing name stays an error.

        Args:
            engine: The engine to register (or refresh).
            representative: Pre-built representative; built from the
                engine when omitted.
            version: Mutation version of the source this representative
                snapshots, recorded so a later
                :meth:`apply_representative_delta` can check the delta's
                base version and :meth:`sync_representative` can request
                only the missing suffix.  ``None`` clears any recorded
                version (unknown provenance).
        """
        existing = self._engines.get(engine.name)
        if existing is not None and existing.engine is not engine:
            raise ValueError(f"engine {engine.name!r} already registered")
        if representative is None:
            if (
                self.fleet is not None
                and existing is None
                and engine.name in self.fleet
            ):
                # First registration of an engine whose representative is
                # already resident in a pre-built fleet (a shard slice):
                # adopt the resident entry instead of rebuilding from the
                # engine, which may be remote or expensive to walk.
                representative = FleetRepresentativeRef(engine.name, self.fleet)
            else:
                representative = build_representative(engine)
        if self.fleet is not None and not (
            isinstance(representative, FleetRepresentativeRef)
            and representative._store is self.fleet
        ):
            # The fleet owns the packed arrays; the registration keeps a
            # lightweight name-keyed view (the dict representative is
            # dropped — that is the columnar memory win).
            if representative.name != engine.name:
                representative = DatabaseRepresentative(
                    name=engine.name,
                    n_documents=representative.n_documents,
                    term_stats=dict(representative.items()),
                )
            representative = self.fleet.add(representative)
        self._engines[engine.name] = EngineRegistration(
            engine=engine, representative=representative
        )
        if version is not None:
            self._rep_versions[engine.name] = version
        else:
            self._rep_versions.pop(engine.name, None)
        if self.cache is not None:
            self.cache.invalidate_engine(engine.name)
        if self.polycache is not None:
            self.polycache.invalidate_engine(engine.name)

    @property
    def engine_names(self) -> List[str]:
        return sorted(self._engines)

    def __len__(self) -> int:
        return len(self._engines)

    def representative_of(self, name: str) -> DatabaseRepresentative:
        return self._engines[name].representative

    def representative_version(self, name: str) -> Optional[int]:
        """Recorded source version of ``name``'s representative, if known."""
        if name not in self._engines:
            raise KeyError(f"engine {name!r} not registered")
        return self._rep_versions.get(name)

    def engine_of(self, name: str) -> SearchEngine:
        """The registered engine object itself (shard workers dispatch to
        a requested subset of engines directly)."""
        return self._engines[name].engine

    # -- live-fleet delta propagation ---------------------------------------------

    def _present_terms(self, name: str, representative) -> set:
        """Term strings currently present in ``name``'s representative."""
        if self.fleet is not None and name in self.fleet:
            columns = self.fleet.columnar_of(name)
            vocab = self.fleet.vocab
            return {vocab.term_of(int(t)) for t in columns.term_ids}
        return {term for term, __ in representative.items()}

    def apply_representative_delta(
        self, delta: RepresentativeDelta, *, precise: bool = True
    ) -> DeltaApplyReport:
        """Apply one versioned delta to a registered representative in place.

        The mutation is bit-exact: the updated representative equals the
        one a full rebuild of the mutated corpus would produce (in
        canonical sorted-term order), on both the dict and the columnar
        fleet backend.

        Cache invalidation is *precise* when the estimator declares
        ``term_local``: only estimate-cache entries whose queries touch an
        affected term are evicted, and only the affected terms' polynomial
        factors.  "Affected" is the delta's own terms; when the document
        count changes it widens to every term present before the apply
        (all per-term probabilities rescale), which still retains entries
        for queries over terms this engine never held.  Estimators whose
        estimates mix in representative-global state (``term_local =
        False``) — and ``precise=False`` — fall back to whole-engine
        eviction, which is always sound.

        Raises:
            KeyError: ``delta.name`` is not a registered engine.
            ValueError: The broker knows the representative's source
                version and the delta was built against a different one,
                or the delta's base document count does not match.
        """
        started = time.perf_counter()
        registration = self._engines.get(delta.name)
        if registration is None:
            raise KeyError(f"engine {delta.name!r} not registered")
        known = self._rep_versions.get(delta.name)
        if known is not None and known != delta.from_version:
            raise ValueError(
                f"delta for {delta.name!r} is based on version "
                f"{delta.from_version}, but the broker holds version {known}"
            )
        term_local = bool(getattr(self.estimator, "term_local", False))
        n_changed = delta.n_documents != delta.from_n_documents
        affected: Optional[set] = None
        if precise and term_local:
            affected = set(delta.terms)
            if n_changed:
                # Every present term's probability rescales with n; terms
                # this engine never held keep their (zero / negative)
                # entries — they do not depend on the document count.
                affected |= self._present_terms(
                    delta.name, registration.representative
                )
        if self.fleet is not None and delta.name in self.fleet:
            self.fleet.apply_delta(delta)
        else:
            representative = registration.representative
            if not isinstance(representative, DatabaseRepresentative):
                raise TypeError(
                    "cannot apply a delta to a "
                    f"{type(representative).__name__} representative"
                )
            registration.representative = _apply_dict_delta(
                representative, delta
            )
        cache_evicted = cache_retained = 0
        poly_evicted = poly_retained = 0
        if affected is not None:
            mode = "precise"
            if self.cache is not None:
                cache_evicted, cache_retained = self.cache.invalidate_terms(
                    delta.name, affected
                )
            if self.polycache is not None:
                poly_evicted, poly_retained = self.polycache.invalidate_terms(
                    delta.name, affected
                )
        else:
            mode = "full"
            if self.cache is not None:
                cache_evicted = self.cache.invalidate_engine(delta.name)
            if self.polycache is not None:
                poly_evicted = self.polycache.invalidate_engine(delta.name)
            self._m_delta_full.inc()
        self._rep_versions[delta.name] = delta.to_version
        elapsed = time.perf_counter() - started
        self._m_delta_applies.inc()
        self._m_delta_bytes.inc(delta.nbytes)
        self._m_delta_terms.inc(len(delta.terms))
        self._m_delta_cache_evicted.inc(cache_evicted)
        self._m_delta_cache_retained.inc(cache_retained)
        self._m_delta_poly_evicted.inc(poly_evicted)
        self._m_delta_poly_retained.inc(poly_retained)
        self._m_delta_seconds.observe(elapsed)
        return DeltaApplyReport(
            name=delta.name,
            from_version=delta.from_version,
            to_version=delta.to_version,
            mode=mode,
            nbytes=delta.nbytes,
            terms_touched=len(delta.terms),
            cache_evicted=cache_evicted,
            cache_retained=cache_retained,
            polycache_evicted=poly_evicted,
            polycache_retained=poly_retained,
            seconds=elapsed,
        )

    def sync_representative(self, engine) -> Optional[DeltaApplyReport]:
        """Catch a registered engine's representative up to its source.

        Asks ``engine.sync_representative(since=<last known version>)``
        — live engine servers and remote engine proxies both implement
        it — and applies whatever comes back: a
        :class:`~repro.fleet.delta.RepresentativeDelta` is applied
        incrementally (returning the apply report), a full snapshot
        (the compaction fallback, or the first sync) re-registers the
        engine and returns ``None``.
        """
        name = engine.name
        since = self._rep_versions.get(name) if name in self._engines else None
        result = engine.sync_representative(since=since)
        if isinstance(result, RepresentativeDelta):
            return self.apply_representative_delta(result)
        self.register(
            engine,
            representative=result.representative,
            version=result.version,
        )
        return None

    # -- estimation and search ---------------------------------------------------------

    def _compute_estimate(
        self, name: str, registration: EngineRegistration, query: Query, threshold: float
    ) -> Usefulness:
        """One fresh estimate, routed through the term-polynomial cache
        when the estimator supports it (cached factors are bit-identical
        to fresh computation, so the answer is too)."""
        if isinstance(self.estimator, ExpansionEstimator):
            expansion = self.estimator.expand(
                query, registration.representative, self.polycache, name
            )
            return Usefulness(
                nodoc=expansion.est_nodoc(
                    threshold, registration.representative.n_documents
                ),
                avgsim=expansion.est_avgsim(threshold),
            )
        return self.estimator.estimate(
            query, registration.representative, threshold
        )

    def _estimate_one(
        self, name: str, registration: EngineRegistration, query: Query, threshold: float
    ):
        if self.cache is None:
            return self._compute_estimate(name, registration, query, threshold)
        key = EstimateCache.key_for(name, query, threshold)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        usefulness = self._compute_estimate(name, registration, query, threshold)
        self.cache.put(key, usefulness)
        return usefulness

    def _fleet_rows(
        self, query: Query, thresholds: List[float]
    ) -> Optional[List[List[EstimatedUsefulness]]]:
        """Vectorized estimate rows for one query at several thresholds.

        One :func:`~repro.core.vectorized.fleet_usefulness_grid` call
        answers every (engine, threshold) pair that the estimate cache
        cannot; cache hits are honored and misses populated exactly as the
        scalar path would (the grid is bit-identical to it, so the cache
        stays interchangeable between paths).  Returns ``None`` when the
        estimator has no vectorized path — the caller falls back to the
        scalar loop.  For supported estimators the route is unconditional:
        pruning floors, ``max_terms`` caps, non-default decimals, and
        triplet mode all run through the batched
        :class:`~repro.core.genfunc.BatchedGenFunc` product (the grid only
        ever demotes individual engines whose exponents would overflow
        ``np.round``'s float64 scaling, counted by
        :func:`repro.core.fallback_count`).
        """
        if self.fleet is None or not supports_fleet(self.estimator):
            return None
        names = self.fleet.engine_names
        per_threshold: Dict[float, tuple] = {}
        missing: List[float] = []
        for t in thresholds:
            if t in per_threshold:
                continue
            if self.cache is not None and names:
                keys = [EstimateCache.key_for(name, query, t) for name in names]
                vals = [self.cache.get(key) for key in keys]
                per_threshold[t] = (vals, keys)
                if all(v is not None for v in vals):
                    continue
            else:
                per_threshold[t] = (None, None)
            missing.append(t)
        fresh: Dict[float, List[Usefulness]] = {}
        if missing:
            grid = fleet_usefulness_grid(
                self.estimator, self.fleet, query, missing, self.polycache
            )
            fresh = dict(zip(missing, grid))
        rows = []
        for t in thresholds:
            vals, keys = per_threshold[t]
            row = []
            for i, name in enumerate(names):
                usefulness = vals[i] if vals is not None else None
                if usefulness is None:
                    usefulness = fresh[t][i]
                    if keys is not None:
                        self.cache.put(keys[i], usefulness)
                row.append(
                    EstimatedUsefulness(engine=name, usefulness=usefulness)
                )
            row.sort(key=lambda e: e.sort_key)
            rows.append(row)
        return rows

    def estimate_all(
        self, query: Query, threshold: float
    ) -> List[EstimatedUsefulness]:
        """Usefulness estimate for every registered engine, best first."""
        if self.fleet is not None:
            rows = self._fleet_rows(query, [float(threshold)])
            if rows is not None:
                return rows[0]
        estimates = [
            EstimatedUsefulness(
                engine=name,
                usefulness=self._estimate_one(name, registration, query, threshold),
            )
            for name, registration in self._engines.items()
        ]
        estimates.sort(key=lambda e: e.sort_key)
        return estimates

    def estimate_all_cached(
        self, query: Query, threshold: float
    ) -> Optional[List[EstimatedUsefulness]]:
        """:meth:`estimate_all`'s answer iff it is fully cached, else None.

        Never computes anything: the row is returned only when *every*
        registered engine's ``(engine, query, threshold)`` estimate is
        already resident, in which case it is exactly what
        :meth:`estimate_all` would return (same cache reads, same sort).
        The coalescing layer uses this as its pre-window probe so repeat
        queries keep the serial path's 100% hit behavior — including its
        hit accounting: a full-row probe counts one hit per engine, and a
        failed probe counts nothing (it peeks without touching stats).
        """
        if self.cache is None or not self._engines:
            return None
        threshold = float(threshold)
        keys = [
            EstimateCache.key_for(name, query, threshold)
            for name in self._engines
        ]
        if not all(self.cache.peek(key) for key in keys):
            return None
        row = []
        for name, key in zip(self._engines, keys):
            usefulness = self.cache.get(key)
            if usefulness is None:  # raced an eviction between peek and get
                return None
            row.append(EstimatedUsefulness(engine=name, usefulness=usefulness))
        row.sort(key=lambda e: e.sort_key)
        return row

    def select(self, query: Query, threshold: float) -> List[str]:
        """Names of the engines the policy picks for this query."""
        return self.policy.select(self.estimate_all(query, threshold))

    # -- batch estimation and search ----------------------------------------------

    @staticmethod
    def _broadcast_thresholds(
        queries: List[Query], thresholds: Union[float, Sequence[float]]
    ) -> List[float]:
        if isinstance(thresholds, (int, float)):
            return [float(thresholds)] * len(queries)
        per_query = [float(t) for t in thresholds]
        if len(per_query) != len(queries):
            raise ValueError(
                f"got {len(per_query)} thresholds for {len(queries)} queries"
            )
        return per_query

    def _estimate_batch_rows(
        self, queries: List[Query], per_query: List[float]
    ) -> List[List[EstimatedUsefulness]]:
        """Per-query estimate rows, engines best first — the batch core.

        Engines are visited in registration order (exactly as
        :meth:`estimate_all` does) and, per engine, queries sharing a
        normalized ``(terms, weights)`` identity share one expansion.
        Every (engine, query, threshold) consults the estimate cache
        first and populates it on a miss, so a batch both benefits from
        and warms the serial path's cache.  All read-outs go through the
        same expansion/tail code as the serial path, so the rows are
        bit-identical to per-query :meth:`estimate_all` calls.

        With a columnar fleet and a supported estimator the whole batch is
        answered by the vectorized fast path instead: queries sharing a
        normalized identity are grouped (the same sharing rule as the
        expansion memo below) and each group costs one fleet grid over its
        distinct thresholds.
        """
        if self.fleet is not None:
            fleet_rows = self._fleet_batch_rows(queries, per_query)
            if fleet_rows is not None:
                return fleet_rows
        rows: List[List[EstimatedUsefulness]] = [[] for __ in queries]
        is_expansion = isinstance(self.estimator, ExpansionEstimator)
        for name, registration in self._engines.items():
            expansions: Dict = {}
            for i, (query, threshold) in enumerate(zip(queries, per_query)):
                key = None
                usefulness = None
                if self.cache is not None:
                    key = EstimateCache.key_for(name, query, threshold)
                    usefulness = self.cache.get(key)
                if usefulness is None:
                    if is_expansion:
                        gkey = EstimateCache.query_key(query)
                        expansion = expansions.get(gkey)
                        if expansion is None:
                            expansion = self.estimator.expand(
                                query,
                                registration.representative,
                                self.polycache,
                                name,
                            )
                            expansions[gkey] = expansion
                        usefulness = Usefulness(
                            nodoc=expansion.est_nodoc(
                                threshold, registration.representative.n_documents
                            ),
                            avgsim=expansion.est_avgsim(threshold),
                        )
                    else:
                        usefulness = self.estimator.estimate(
                            query, registration.representative, threshold
                        )
                    if self.cache is not None:
                        self.cache.put(key, usefulness)
                rows[i].append(
                    EstimatedUsefulness(engine=name, usefulness=usefulness)
                )
        for row in rows:
            row.sort(key=lambda e: e.sort_key)
        return rows

    def _fleet_batch_rows(
        self, queries: List[Query], per_query: List[float]
    ) -> Optional[List[List[EstimatedUsefulness]]]:
        """Batch rows through the vectorized fleet path, or ``None``.

        Queries with the same normalized ``(terms, weights)`` identity
        share one grid computed from the first of them — mirroring how the
        scalar batch shares one expansion per identity.
        """
        if not supports_fleet(self.estimator):
            return None
        groups: Dict[tuple, List[int]] = {}
        for i, query in enumerate(queries):
            groups.setdefault(EstimateCache.query_key(query), []).append(i)
        rows: List[Optional[List[EstimatedUsefulness]]] = [None] * len(queries)
        for indices in groups.values():
            thresholds = [float(per_query[i]) for i in indices]
            group_rows = self._fleet_rows(queries[indices[0]], thresholds)
            if group_rows is None:
                return None
            for i, row in zip(indices, group_rows):
                rows[i] = row
        return rows

    def estimate_batch(
        self,
        queries: Sequence[Query],
        thresholds: Union[float, Sequence[float]],
    ) -> List[List[EstimatedUsefulness]]:
        """Usefulness estimates for many queries in one amortized pass.

        Args:
            queries: The batch, in answer order.
            thresholds: One threshold applied to every query, or a
                sequence parallel to ``queries``.

        Returns:
            One best-first estimate row per query — each row exactly what
            :meth:`estimate_all` would return for that (query, threshold).
        """
        started = time.perf_counter()
        queries = list(queries)
        per_query = self._broadcast_thresholds(queries, thresholds)
        rows = self._estimate_batch_rows(queries, per_query)
        self._m_batches.inc()
        self._m_batch_queries.inc(len(queries))
        self._m_batch_seconds.observe(time.perf_counter() - started)
        return rows

    def search_batch(
        self,
        queries: Sequence[Query],
        thresholds: Union[float, Sequence[float]],
        limit: Optional[int] = None,
    ) -> List[MetasearchResponse]:
        """The full pipeline — estimate, select, dispatch, merge — for a
        whole batch of queries.

        Estimation runs through :meth:`estimate_batch`'s shared-expansion
        pass; dispatch pools every selected engine call of every query on
        the dispatcher's thread pool under a *single* batch deadline
        (:meth:`~repro.metasearch.dispatch.ConcurrentDispatcher.dispatch_many`).
        Each query still gets its own :class:`~repro.obs.QueryTrace` and
        its own :class:`MetasearchResponse`, equal to what a serial
        :meth:`search` call would produce for healthy engines.
        """
        started = time.perf_counter()
        queries = list(queries)
        per_query = self._broadcast_thresholds(queries, thresholds)
        traces = [QueryTrace() for __ in queries]

        est_start = time.perf_counter()
        all_estimates = self._estimate_batch_rows(queries, per_query)
        est_elapsed = time.perf_counter() - est_start
        self._stage_seconds("estimate").observe(est_elapsed)
        shared = est_elapsed / len(queries) if queries else 0.0
        for trace in traces:
            trace.add("estimate", shared, engines=len(self._engines))

        invoked_lists: List[List[str]] = []
        batches = []
        for query, threshold, estimates, trace in zip(
            queries, per_query, all_estimates, traces
        ):
            with trace.span("select") as span:
                invoked = self.policy.select(estimates)
                span.metadata["selected"] = len(invoked)
            self._stage_seconds("select").observe(span.duration)
            invoked_lists.append(invoked)
            batches.append(
                {
                    name: (
                        lambda engine=self._engines[name].engine,
                        q=query,
                        t=threshold: engine.search(q, t)
                    )
                    for name in invoked
                }
            )

        dispatch_start = time.perf_counter()
        reports = self.dispatcher.dispatch_many(batches)
        self._stage_seconds("dispatch").observe(
            time.perf_counter() - dispatch_start
        )

        responses = []
        for query, estimates, trace, invoked, report in zip(
            queries, all_estimates, traces, invoked_lists, reports
        ):
            failed = {failure.engine for failure in report.failures}
            for name in invoked:
                trace.add(
                    f"dispatch:{name}",
                    report.latencies.get(name, 0.0),
                    ok=name not in failed,
                )
            with trace.span("merge") as span:
                hits = merge_hits(report.result_lists(), limit=limit)
                span.metadata["hits"] = len(hits)
            self._stage_seconds("merge").observe(span.duration)
            response = MetasearchResponse(
                hits=hits,
                invoked=invoked,
                estimates=estimates,
                failures=report.failures,
                latencies=report.latencies,
                trace=trace,
            )
            self._m_searches.inc()
            self._m_invoked.inc(len(invoked))
            if response.degraded:
                self._m_degraded.inc()
            responses.append(response)

        self._m_batches.inc()
        self._m_batch_queries.inc(len(queries))
        self._m_batch_seconds.observe(time.perf_counter() - started)
        return responses

    def _dispatch(
        self,
        names: List[str],
        query: Query,
        threshold: float,
        limit: Optional[int],
        estimates: List[EstimatedUsefulness],
        trace: QueryTrace,
    ) -> MetasearchResponse:
        with trace.span("dispatch", engines=len(names)) as span:
            report = self.dispatcher.dispatch(
                {
                    name: (
                        lambda engine=self._engines[name].engine: engine.search(
                            query, threshold
                        )
                    )
                    for name in names
                }
            )
            span.metadata["failures"] = len(report.failures)
        self._stage_seconds("dispatch").observe(span.duration)
        failed = {failure.engine for failure in report.failures}
        for name in names:
            trace.add(
                f"dispatch:{name}",
                report.latencies.get(name, 0.0),
                ok=name not in failed,
            )
        with trace.span("merge") as span:
            hits = merge_hits(report.result_lists(), limit=limit)
            span.metadata["hits"] = len(hits)
        self._stage_seconds("merge").observe(span.duration)
        return MetasearchResponse(
            hits=hits,
            invoked=names,
            estimates=estimates,
            failures=report.failures,
            latencies=report.latencies,
            trace=trace,
        )

    def _finish(self, response: MetasearchResponse, started: float) -> MetasearchResponse:
        self._m_searches.inc()
        self._m_invoked.inc(len(response.invoked))
        if response.degraded:
            self._m_degraded.inc()
        self._m_search_seconds.observe(time.perf_counter() - started)
        return response

    def search(
        self,
        query: Query,
        threshold: float,
        limit: Optional[int] = None,
    ) -> MetasearchResponse:
        """Estimate, select, dispatch, merge — with a trace of each stage."""
        started = time.perf_counter()
        trace = QueryTrace()
        with trace.span("estimate", engines=len(self._engines)) as span:
            estimates = self.estimate_all(query, threshold)
        self._stage_seconds("estimate").observe(span.duration)
        with trace.span("select") as span:
            invoked = self.policy.select(estimates)
            span.metadata["selected"] = len(invoked)
        self._stage_seconds("select").observe(span.duration)
        response = self._dispatch(invoked, query, threshold, limit, estimates, trace)
        return self._finish(response, started)

    def search_all(
        self,
        query: Query,
        threshold: float,
        limit: Optional[int] = None,
    ) -> MetasearchResponse:
        """Broadcast baseline: query every engine regardless of estimates."""
        started = time.perf_counter()
        response = self._dispatch(
            self.engine_names, query, threshold, limit, [], QueryTrace()
        )
        return self._finish(response, started)

    def true_selection(self, query: Query, threshold: float) -> List[str]:
        """Oracle: engines that *actually* hold a document above threshold
        (by exhaustive search) — the reference for selection accuracy."""
        selected = []
        for name in self.engine_names:
            engine = self._engines[name].engine
            if engine.max_similarity(query) > threshold:
                selected.append(name)
        return selected
