"""The metasearch broker.

The broker is "just an interface" plus representatives, exactly as the paper
describes: it holds no document index of its own.  For each query it (1)
estimates every registered engine's usefulness from its representative,
(2) applies a selection policy, (3) forwards the query to the selected
engines only, and (4) merges their results.  A ``search_all`` baseline
broadcasts to every engine, which is what selection is meant to avoid.

Two production concerns live behind the same interface:

* Dispatch runs through a :class:`~repro.metasearch.dispatch.ConcurrentDispatcher`
  — parallel fan-out with per-dispatch timeout, bounded retry, and graceful
  degradation.  ``workers=1`` (the default) preserves the historical serial
  semantics exactly.
* Estimates are memoized in an :class:`~repro.metasearch.cache.EstimateCache`
  keyed on (engine, query, threshold); re-registering an engine invalidates
  its entries, so a rebuilt representative is never shadowed by stale
  estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.base import UsefulnessEstimator
from repro.core.subrange_estimator import SubrangeEstimator
from repro.corpus.query import Query
from repro.engine.results import SearchHit
from repro.engine.search_engine import SearchEngine
from repro.metasearch.cache import EstimateCache
from repro.metasearch.dispatch import ConcurrentDispatcher, EngineFailure
from repro.metasearch.merge import merge_hits
from repro.metasearch.selection import (
    EstimatedUsefulness,
    SelectionPolicy,
    ThresholdPolicy,
)
from repro.representatives.builder import build_representative
from repro.representatives.representative import DatabaseRepresentative

__all__ = ["EngineRegistration", "MetasearchBroker", "MetasearchResponse"]


@dataclass
class EngineRegistration:
    """An engine known to the broker, with its representative."""

    engine: SearchEngine
    representative: DatabaseRepresentative


@dataclass(frozen=True)
class MetasearchResponse:
    """Outcome of one brokered search.

    Attributes:
        hits: Globally ranked merged hits from the engines that answered.
        invoked: Names of the engines the query was forwarded to.
        estimates: All per-engine usefulness estimates (invoked or not),
            most promising first — useful for diagnostics and the paper's
            evaluation harness.
        failures: One :class:`~repro.metasearch.dispatch.EngineFailure`
            per invoked engine that timed out or errored; such an engine
            contributes no hits but does not sink the query.
        latencies: Wall-clock seconds per invoked engine (time until
            abandonment for a failed one).
    """

    hits: List[SearchHit]
    invoked: List[str]
    estimates: List[EstimatedUsefulness]
    failures: List[EngineFailure] = field(default_factory=list)
    latencies: Dict[str, float] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when at least one invoked engine failed to answer."""
        return bool(self.failures)

    @property
    def answered(self) -> List[str]:
        """Invoked engines that actually contributed results."""
        failed = {f.engine for f in self.failures}
        return [name for name in self.invoked if name not in failed]


class MetasearchBroker:
    """Selects and queries local search engines via usefulness estimates.

    Args:
        estimator: Usefulness estimator applied to each representative; the
            paper's subrange method by default.
        policy: Engine selection policy; the paper's threshold criterion
            (estimated NoDoc >= 1) by default.
        workers: Concurrent engine calls per search; ``1`` keeps the
            serial dispatch path.
        timeout: Fan-out deadline in seconds (enforced when
            ``workers > 1``); ``None`` waits indefinitely.
        retries: Extra attempts after an engine call raises.
        backoff: Base backoff in seconds between retry attempts.
        cache_size: Capacity of the estimate cache; ``0`` disables
            caching entirely.
    """

    def __init__(
        self,
        estimator: Optional[UsefulnessEstimator] = None,
        policy: Optional[SelectionPolicy] = None,
        *,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        cache_size: int = 1024,
    ):
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size!r}")
        self.estimator = estimator or SubrangeEstimator()
        self.policy = policy or ThresholdPolicy()
        self.dispatcher = ConcurrentDispatcher(
            workers=workers, timeout=timeout, retries=retries, backoff=backoff
        )
        self.cache: Optional[EstimateCache] = (
            EstimateCache(cache_size) if cache_size else None
        )
        self._registry: Dict[str, EngineRegistration] = {}

    # -- registration -------------------------------------------------------------

    def register(
        self,
        engine: SearchEngine,
        representative: Optional[DatabaseRepresentative] = None,
    ) -> None:
        """Register a local engine; builds its representative when omitted.

        Engine names must be unique — the name is the routing key.
        Re-registering the *same engine object* is a refresh: its
        representative is rebuilt (or replaced by the one given) and any
        cached estimates for it are invalidated, so a corpus change
        becomes visible to selection immediately.  Registering a
        *different* engine under an existing name stays an error.
        """
        existing = self._registry.get(engine.name)
        if existing is not None and existing.engine is not engine:
            raise ValueError(f"engine {engine.name!r} already registered")
        if representative is None:
            representative = build_representative(engine)
        self._registry[engine.name] = EngineRegistration(
            engine=engine, representative=representative
        )
        if self.cache is not None:
            self.cache.invalidate_engine(engine.name)

    @property
    def engine_names(self) -> List[str]:
        return sorted(self._registry)

    def __len__(self) -> int:
        return len(self._registry)

    def representative_of(self, name: str) -> DatabaseRepresentative:
        return self._registry[name].representative

    # -- estimation and search ---------------------------------------------------------

    def _estimate_one(
        self, name: str, registration: EngineRegistration, query: Query, threshold: float
    ):
        if self.cache is None:
            return self.estimator.estimate(
                query, registration.representative, threshold
            )
        key = EstimateCache.key_for(name, query, threshold)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        usefulness = self.estimator.estimate(
            query, registration.representative, threshold
        )
        self.cache.put(key, usefulness)
        return usefulness

    def estimate_all(
        self, query: Query, threshold: float
    ) -> List[EstimatedUsefulness]:
        """Usefulness estimate for every registered engine, best first."""
        estimates = [
            EstimatedUsefulness(
                engine=name,
                usefulness=self._estimate_one(name, registration, query, threshold),
            )
            for name, registration in self._registry.items()
        ]
        estimates.sort(key=lambda e: e.sort_key)
        return estimates

    def select(self, query: Query, threshold: float) -> List[str]:
        """Names of the engines the policy picks for this query."""
        return self.policy.select(self.estimate_all(query, threshold))

    def _dispatch(
        self,
        names: List[str],
        query: Query,
        threshold: float,
        limit: Optional[int],
        estimates: List[EstimatedUsefulness],
    ) -> MetasearchResponse:
        report = self.dispatcher.dispatch(
            {
                name: (
                    lambda engine=self._registry[name].engine: engine.search(
                        query, threshold
                    )
                )
                for name in names
            }
        )
        return MetasearchResponse(
            hits=merge_hits(report.result_lists(), limit=limit),
            invoked=names,
            estimates=estimates,
            failures=report.failures,
            latencies=report.latencies,
        )

    def search(
        self,
        query: Query,
        threshold: float,
        limit: Optional[int] = None,
    ) -> MetasearchResponse:
        """Estimate, select, dispatch, merge."""
        estimates = self.estimate_all(query, threshold)
        invoked = self.policy.select(estimates)
        return self._dispatch(invoked, query, threshold, limit, estimates)

    def search_all(
        self,
        query: Query,
        threshold: float,
        limit: Optional[int] = None,
    ) -> MetasearchResponse:
        """Broadcast baseline: query every engine regardless of estimates."""
        return self._dispatch(self.engine_names, query, threshold, limit, [])

    def true_selection(self, query: Query, threshold: float) -> List[str]:
        """Oracle: engines that *actually* hold a document above threshold
        (by exhaustive search) — the reference for selection accuracy."""
        selected = []
        for name in self.engine_names:
            engine = self._registry[name].engine
            if engine.max_similarity(query) > threshold:
                selected.append(name)
        return selected
