"""The metasearch broker.

The broker is "just an interface" plus representatives, exactly as the paper
describes: it holds no document index of its own.  For each query it (1)
estimates every registered engine's usefulness from its representative,
(2) applies a selection policy, (3) forwards the query to the selected
engines only, and (4) merges their results.  A ``search_all`` baseline
broadcasts to every engine, which is what selection is meant to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.base import UsefulnessEstimator
from repro.core.subrange_estimator import SubrangeEstimator
from repro.corpus.query import Query
from repro.engine.results import SearchHit
from repro.engine.search_engine import SearchEngine
from repro.metasearch.merge import merge_hits
from repro.metasearch.selection import (
    EstimatedUsefulness,
    SelectionPolicy,
    ThresholdPolicy,
)
from repro.representatives.builder import build_representative
from repro.representatives.representative import DatabaseRepresentative

__all__ = ["EngineRegistration", "MetasearchBroker"]


@dataclass
class EngineRegistration:
    """An engine known to the broker, with its representative."""

    engine: SearchEngine
    representative: DatabaseRepresentative


@dataclass(frozen=True)
class MetasearchResponse:
    """Outcome of one brokered search.

    Attributes:
        hits: Globally ranked merged hits.
        invoked: Names of the engines the query was forwarded to.
        estimates: All per-engine usefulness estimates (invoked or not),
            most promising first — useful for diagnostics and the paper's
            evaluation harness.
    """

    hits: List[SearchHit]
    invoked: List[str]
    estimates: List[EstimatedUsefulness]


class MetasearchBroker:
    """Selects and queries local search engines via usefulness estimates.

    Args:
        estimator: Usefulness estimator applied to each representative; the
            paper's subrange method by default.
        policy: Engine selection policy; the paper's threshold criterion
            (estimated NoDoc >= 1) by default.
    """

    def __init__(
        self,
        estimator: Optional[UsefulnessEstimator] = None,
        policy: Optional[SelectionPolicy] = None,
    ):
        self.estimator = estimator or SubrangeEstimator()
        self.policy = policy or ThresholdPolicy()
        self._registry: Dict[str, EngineRegistration] = {}

    # -- registration -------------------------------------------------------------

    def register(
        self,
        engine: SearchEngine,
        representative: Optional[DatabaseRepresentative] = None,
    ) -> None:
        """Register a local engine; builds its representative when omitted.

        Engine names must be unique — the name is the routing key.
        """
        if engine.name in self._registry:
            raise ValueError(f"engine {engine.name!r} already registered")
        if representative is None:
            representative = build_representative(engine)
        self._registry[engine.name] = EngineRegistration(
            engine=engine, representative=representative
        )

    @property
    def engine_names(self) -> List[str]:
        return sorted(self._registry)

    def __len__(self) -> int:
        return len(self._registry)

    def representative_of(self, name: str) -> DatabaseRepresentative:
        return self._registry[name].representative

    # -- estimation and search ---------------------------------------------------------

    def estimate_all(
        self, query: Query, threshold: float
    ) -> List[EstimatedUsefulness]:
        """Usefulness estimate for every registered engine, best first."""
        estimates = [
            EstimatedUsefulness(
                engine=name,
                usefulness=self.estimator.estimate(
                    query, registration.representative, threshold
                ),
            )
            for name, registration in self._registry.items()
        ]
        estimates.sort(key=lambda e: e.sort_key)
        return estimates

    def select(self, query: Query, threshold: float) -> List[str]:
        """Names of the engines the policy picks for this query."""
        return self.policy.select(self.estimate_all(query, threshold))

    def search(
        self,
        query: Query,
        threshold: float,
        limit: Optional[int] = None,
    ) -> MetasearchResponse:
        """Estimate, select, dispatch, merge."""
        estimates = self.estimate_all(query, threshold)
        invoked = self.policy.select(estimates)
        result_lists = [
            self._registry[name].engine.search(query, threshold)
            for name in invoked
        ]
        return MetasearchResponse(
            hits=merge_hits(result_lists, limit=limit),
            invoked=invoked,
            estimates=estimates,
        )

    def search_all(
        self,
        query: Query,
        threshold: float,
        limit: Optional[int] = None,
    ) -> MetasearchResponse:
        """Broadcast baseline: query every engine regardless of estimates."""
        names = self.engine_names
        result_lists = [
            self._registry[name].engine.search(query, threshold) for name in names
        ]
        return MetasearchResponse(
            hits=merge_hits(result_lists, limit=limit),
            invoked=names,
            estimates=[],
        )

    def true_selection(self, query: Query, threshold: float) -> List[str]:
        """Oracle: engines that *actually* hold a document above threshold
        (by exhaustive search) — the reference for selection accuracy."""
        selected = []
        for name in self.engine_names:
            engine = self._registry[name].engine
            if engine.max_similarity(query) > threshold:
                selected.append(name)
        return selected
