"""Hierarchical metasearch — the paper's "more than two levels".

The introduction notes the two-level architecture "can be generalized to
more than two levels": brokers fronting brokers, with each level holding
only representatives of the level below.  :class:`BrokerNode` implements
that recursion:

* a **leaf** node wraps one local :class:`~repro.engine.SearchEngine`;
* an **inner** node aggregates child nodes, summarizing them with the
  *exact merge* of their representatives
  (:func:`~repro.representatives.algebra.merge_representatives`) — valid
  because a node's subtree is a disjoint union of document sets;
* selection happens top-down: a query descends only into children whose
  merged representative estimates at least one above-threshold document, so
  whole subtrees are pruned with a single estimate.

Because the merged representative is exactly what a flat build over the
subtree's documents would publish, the single-term guarantee survives every
level: a single-term query descends to exactly the engines that truly hold
above-threshold documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.base import UsefulnessEstimator
from repro.core.subrange_estimator import SubrangeEstimator
from repro.corpus.query import Query
from repro.engine.results import SearchHit
from repro.engine.search_engine import SearchEngine
from repro.metasearch.merge import merge_hits
from repro.representatives.algebra import merge_representatives
from repro.representatives.builder import build_representative
from repro.representatives.representative import DatabaseRepresentative

__all__ = ["BrokerNode", "HierarchySearchReport"]


@dataclass
class HierarchySearchReport:
    """Outcome of one hierarchical search.

    Attributes:
        hits: Globally ranked merged hits.
        visited_nodes: Names of the nodes whose estimate was computed.
        invoked_engines: Names of the leaf engines actually searched.
        pruned_subtrees: Names of subtree roots skipped by estimation.
    """

    hits: List[SearchHit]
    visited_nodes: List[str] = field(default_factory=list)
    invoked_engines: List[str] = field(default_factory=list)
    pruned_subtrees: List[str] = field(default_factory=list)


class BrokerNode:
    """One node of a metasearch hierarchy.

    Build leaves with :meth:`leaf` and inner nodes with :meth:`inner`; the
    representative of every node is derived automatically.
    """

    def __init__(
        self,
        name: str,
        engine: Optional[SearchEngine] = None,
        children: Optional[Sequence["BrokerNode"]] = None,
        representative: Optional[DatabaseRepresentative] = None,
    ):
        if (engine is None) == (children is None):
            raise ValueError("a node is either a leaf (engine) or inner (children)")
        if children is not None and not children:
            raise ValueError("an inner node needs at least one child")
        self.name = name
        self.engine = engine
        self.children = list(children) if children is not None else []
        if representative is not None:
            self.representative = representative
        elif engine is not None:
            self.representative = build_representative(engine)
        else:
            self.representative = merge_representatives(
                name, [child.representative for child in self.children]
            )

    # -- constructors -------------------------------------------------------------

    @classmethod
    def leaf(cls, engine: SearchEngine) -> "BrokerNode":
        """A leaf node around one local engine."""
        return cls(name=engine.name, engine=engine)

    @classmethod
    def inner(cls, name: str, children: Sequence["BrokerNode"]) -> "BrokerNode":
        """An inner node aggregating child nodes."""
        return cls(name=name, children=children)

    # -- structure -----------------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return self.engine is not None

    @property
    def n_documents(self) -> int:
        """Documents reachable through this node."""
        return self.representative.n_documents

    def leaves(self) -> List["BrokerNode"]:
        """All leaf nodes of this subtree, left to right."""
        if self.is_leaf:
            return [self]
        out = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def depth(self) -> int:
        """Levels below this node (a leaf has depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children)

    # -- search --------------------------------------------------------------------

    def search(
        self,
        query: Query,
        threshold: float,
        estimator: Optional[UsefulnessEstimator] = None,
        limit: Optional[int] = None,
    ) -> HierarchySearchReport:
        """Top-down estimate-and-descend search of the subtree."""
        estimator = estimator or SubrangeEstimator()
        report = HierarchySearchReport(hits=[])
        result_lists: List[List[SearchHit]] = []
        self._descend(query, threshold, estimator, report, result_lists)
        report.hits = merge_hits(result_lists, limit=limit)
        return report

    def _descend(self, query, threshold, estimator, report, result_lists) -> None:
        report.visited_nodes.append(self.name)
        estimate = estimator.estimate(query, self.representative, threshold)
        if not estimate.identifies_useful:
            report.pruned_subtrees.append(self.name)
            return
        if self.is_leaf:
            report.invoked_engines.append(self.name)
            result_lists.append(self.engine.search(query, threshold))
            return
        for child in self.children:
            child._descend(query, threshold, estimator, report, result_lists)

    def true_engines(self, query: Query, threshold: float) -> List[str]:
        """Oracle: leaf engines truly holding an above-threshold document."""
        return [
            leaf.name
            for leaf in self.leaves()
            if leaf.engine.max_similarity(query) > threshold
        ]

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"inner x{len(self.children)}"
        return f"BrokerNode({self.name!r}, {kind}, docs={self.n_documents})"
