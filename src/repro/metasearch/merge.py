"""Merging results from multiple local engines.

Because every engine scores under the same global similarity function
(Cosine over its own index), merged hits are directly comparable — the
metasearch engine only needs a deterministic interleave.  Hits keep their
engine attribution so callers can see where documents came from.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.engine.results import SearchHit

__all__ = ["merge_hits"]


def merge_hits(
    result_lists: Iterable[Iterable[SearchHit]], limit: Optional[int] = None
) -> List[SearchHit]:
    """Merge per-engine hit lists into one globally ranked list.

    Args:
        result_lists: One iterable of hits per invoked engine.  Any
            iterable works — lists, tuples, or generators (the wire
            decoder streams hits straight in without materializing).
        limit: Optional cap on the merged list length.

    Returns:
        Hits sorted by descending similarity (ties broken by doc id and
        engine for determinism).
    """
    merged: List[SearchHit] = []
    for hits in result_lists:
        merged.extend(hits)
    merged.sort(key=lambda h: (-h.similarity, h.doc_id, h.engine or ""))
    if limit is not None:
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit!r}")
        merged = merged[:limit]
    return merged
