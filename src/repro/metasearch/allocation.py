"""Document-count-driven engine selection and retrieval allocation.

The paper criticizes rank-only selection methods because "a separate method
has to be used to convert these measures to the number of documents to
retrieve from each search engine."  The usefulness measure needs no such
second method: because expansion estimators answer *every* threshold from
one generating function, we can invert the relationship — given a desired
total number of documents ``k``, find the similarity threshold at which the
fleet is expected to hold ``k`` documents, and read each engine's expected
share straight off its expansion.

:func:`threshold_for_k` performs the inversion (NoDoc estimates are
monotone non-increasing in the threshold, so bisection applies) and
:func:`allocate_documents` turns the per-engine expectations into integer
retrieval quotas via largest-remainder rounding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.base import ExpansionEstimator
from repro.core.genfunc import GenFunc
from repro.core.subrange_estimator import SubrangeEstimator
from repro.corpus.query import Query

__all__ = ["threshold_for_k", "allocate_documents", "expected_nodoc_at"]


def _expansions(
    query: Query,
    representatives: Dict[str, object],
    estimator: Optional[ExpansionEstimator],
) -> Dict[str, Tuple[GenFunc, int]]:
    estimator = estimator or SubrangeEstimator()
    out = {}
    for name, representative in representatives.items():
        out[name] = (
            estimator.expand(query, representative),
            representative.n_documents,
        )
    return out


def expected_nodoc_at(
    query: Query,
    representatives: Dict[str, object],
    threshold: float,
    estimator: Optional[ExpansionEstimator] = None,
) -> Dict[str, float]:
    """Per-engine expected NoDoc at one threshold."""
    return {
        name: expansion.est_nodoc(threshold, n)
        for name, (expansion, n) in _expansions(
            query, representatives, estimator
        ).items()
    }


def threshold_for_k(
    query: Query,
    representatives: Dict[str, object],
    k: int,
    estimator: Optional[ExpansionEstimator] = None,
    tolerance: float = 1e-6,
) -> float:
    """The similarity threshold at which ~``k`` documents are expected.

    Returns the largest threshold whose total expected NoDoc across the
    fleet is at least ``k`` (0.0 when even the full range cannot supply
    ``k``).  Bisection is exact here because every engine's NoDoc estimate
    is a non-increasing step function of the threshold.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k!r}")
    expansions = _expansions(query, representatives, estimator)

    def total(threshold: float) -> float:
        return sum(
            expansion.est_nodoc(threshold, n)
            for expansion, n in expansions.values()
        )

    lo, hi = 0.0, 1.0
    # Extend the upper bracket if similarities can exceed 1 (e.g. pivoted
    # normalization or unnormalized weights).
    while total(hi) >= k and hi < 1e6:
        lo = hi
        hi *= 2.0
    if total(0.0) < k:
        return 0.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if total(mid) >= k:
            lo = mid
        else:
            hi = mid
    return lo


def allocate_documents(
    query: Query,
    representatives: Dict[str, object],
    k: int,
    estimator: Optional[ExpansionEstimator] = None,
) -> Dict[str, int]:
    """Integer per-engine retrieval quotas summing to ``k``.

    Engines receive quotas proportional to their expected NoDoc at the
    ``k``-threshold, rounded by largest remainder so the total is exactly
    ``k`` whenever the fleet is expected to supply it (when it is not, the
    expectation-weighted allocation of everything available is returned).
    """
    threshold = threshold_for_k(query, representatives, k, estimator)
    expected = expected_nodoc_at(query, representatives, threshold, estimator)
    total = sum(expected.values())
    if total <= 0.0:
        return {name: 0 for name in representatives}
    scale = min(k / total, 1.0)
    shares: List[Tuple[str, float]] = [
        (name, value * scale) for name, value in expected.items()
    ]
    quotas = {name: int(share) for name, share in shares}
    assigned = sum(quotas.values())
    want = min(k, int(round(total)))
    remainders = sorted(
        shares, key=lambda item: (item[1] - int(item[1]), item[0]), reverse=True
    )
    for name, __ in remainders:
        if assigned >= want:
            break
        quotas[name] += 1
        assigned += 1
    return quotas
