"""Text processing pipeline: tokenization, stop words, stemming.

The paper's preprocessing is classic late-90s vector-space IR: lowercase,
strip punctuation, drop "non-content words such as 'the', 'of', etc.", and
(conventionally for the SMART-era systems it builds on) stem.  The pipeline
here is a small composable object so corpora, queries and engines all share
one configuration.
"""

from repro.text.pipeline import TextPipeline
from repro.text.porter import PorterStemmer
from repro.text.stopwords import DEFAULT_STOPWORDS, is_stopword
from repro.text.tokenizer import tokenize

__all__ = [
    "DEFAULT_STOPWORDS",
    "PorterStemmer",
    "TextPipeline",
    "is_stopword",
    "tokenize",
]
