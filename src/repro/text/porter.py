"""Porter stemming algorithm (Porter, 1980), implemented from scratch.

Conflating morphological variants ("connection", "connected", "connecting"
-> "connect") is the standard term-normalization step of the SMART-family
vector-space systems the paper's evaluation environment descends from.  The
implementation follows the original paper's five steps; the test suite pins
the published sample vocabulary behaviour for a few dozen words.
"""

from __future__ import annotations

__all__ = ["PorterStemmer"]

_VOWELS = frozenset("aeiou")


class PorterStemmer:
    """Stateless Porter stemmer; ``stem`` may be called concurrently."""

    def stem(self, word: str) -> str:
        """Return the Porter stem of a lowercase ``word``.

        Words of length <= 2 are returned unchanged, per the original
        algorithm's convention.  Non-alphabetic characters are left alone —
        callers are expected to tokenize first.
        """
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- measure and shape predicates ------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            return i == 0 or not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem: str) -> int:
        """The Porter measure m: number of VC (vowel-consonant) sequences."""
        m = 0
        prev_vowel = False
        for i in range(len(stem)):
            vowel = not cls._is_consonant(stem, i)
            if prev_vowel and not vowel:
                m += 1
            prev_vowel = vowel
        return m

    @classmethod
    def _contains_vowel(cls, stem: str) -> bool:
        return any(not cls._is_consonant(stem, i) for i in range(len(stem)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and cls._is_consonant(word, len(word) - 1)
        )

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        """True for a consonant-vowel-consonant ending where the final
        consonant is not w, x or y (the *o* condition of the paper)."""
        if len(word) < 3:
            return False
        return (
            cls._is_consonant(word, len(word) - 3)
            and not cls._is_consonant(word, len(word) - 2)
            and cls._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    # -- rule application helpers ----------------------------------------

    @classmethod
    def _replace_if_m(cls, word: str, suffix: str, repl: str, min_m: int):
        """Replace ``suffix`` by ``repl`` when the remaining stem has
        measure > ``min_m``; returns (new_word, rule_fired)."""
        if not word.endswith(suffix):
            return word, False
        stem = word[: len(word) - len(suffix)]
        if cls._measure(stem) > min_m:
            return stem + repl, True
        return word, True  # suffix matched; rule consumed even if no change

    # -- the five steps ----------------------------------------------------

    @staticmethod
    def _step1a(word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    @classmethod
    def _step1b(cls, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if cls._measure(stem) > 0:
                return word[:-1]
            return word
        fired = False
        if word.endswith("ed"):
            stem = word[:-2]
            if cls._contains_vowel(stem):
                word = stem
                fired = True
        elif word.endswith("ing"):
            stem = word[:-3]
            if cls._contains_vowel(stem):
                word = stem
                fired = True
        if fired:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if cls._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if cls._measure(word) == 1 and cls._ends_cvc(word):
                return word + "e"
        return word

    @classmethod
    def _step1c(cls, word: str) -> str:
        if word.endswith("y") and cls._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    @classmethod
    def _step2(cls, word: str) -> str:
        for suffix, repl in cls._STEP2_RULES:
            if word.endswith(suffix):
                word, __ = cls._replace_if_m(word, suffix, repl, 0)
                return word
        return word

    _STEP3_RULES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    @classmethod
    def _step3(cls, word: str) -> str:
        for suffix, repl in cls._STEP3_RULES:
            if word.endswith(suffix):
                word, __ = cls._replace_if_m(word, suffix, repl, 0)
                return word
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    @classmethod
    def _step4(cls, word: str) -> str:
        if word.endswith("ion") and len(word) > 3 and word[-4] in "st":
            stem = word[:-3]
            if cls._measure(stem) > 1:
                return stem
            return word
        for suffix in cls._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if cls._measure(stem) > 1:
                    return stem
                return word
        return word

    @classmethod
    def _step5a(cls, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = cls._measure(stem)
            if m > 1 or (m == 1 and not cls._ends_cvc(stem)):
                return stem
        return word

    @classmethod
    def _step5b(cls, word: str) -> str:
        if (
            word.endswith("ll")
            and cls._measure(word) > 1
        ):
            return word[:-1]
        return word
