"""Composable text-processing pipeline.

A :class:`TextPipeline` turns raw text into the final list of index terms by
tokenizing, dropping non-content words, and optionally stemming.  Documents,
queries, corpus builders and search engines all accept a pipeline instance so
the whole system is guaranteed to agree on what a "term" is — a mismatch
there is the classic source of silent zero-similarity bugs in IR stacks.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional

from repro.text.porter import PorterStemmer
from repro.text.stopwords import DEFAULT_STOPWORDS
from repro.text.tokenizer import tokenize

__all__ = ["TextPipeline"]


class TextPipeline:
    """Tokenize, stop, and stem text into index terms.

    Args:
        stopwords: Set of non-content words to remove; pass an empty set to
            disable stopping.  Defaults to :data:`DEFAULT_STOPWORDS`.
        stem: Whether to apply the Porter stemmer (default True).
        min_length: Tokens shorter than this survive only if stemming/
            stopping left them alone; single characters are rarely content
            terms, so the default is 2.
    """

    def __init__(
        self,
        stopwords: Optional[FrozenSet[str]] = None,
        stem: bool = True,
        min_length: int = 2,
    ):
        self._stopwords = DEFAULT_STOPWORDS if stopwords is None else frozenset(stopwords)
        self._stemmer = PorterStemmer() if stem else None
        self._min_length = min_length

    @property
    def stems(self) -> bool:
        """Whether this pipeline applies stemming."""
        return self._stemmer is not None

    def terms(self, text: str) -> List[str]:
        """Full pipeline: raw text to the list of index terms (with repeats).

        Repeats are preserved because term frequency is the raw signal the
        weighting schemes in :mod:`repro.vsm` consume.
        """
        out = []
        for token in tokenize(text):
            if token in self._stopwords or len(token) < self._min_length:
                continue
            if self._stemmer is not None:
                token = self._stemmer.stem(token)
                if len(token) < self._min_length:
                    continue
            out.append(token)
        return out

    def terms_joined(self, texts: Iterable[str]) -> List[str]:
        """Apply :meth:`terms` to several fields and concatenate the output."""
        out: List[str] = []
        for text in texts:
            out.extend(self.terms(text))
        return out

    def __repr__(self) -> str:
        return (
            f"TextPipeline(stem={self.stems}, "
            f"stopwords={len(self._stopwords)}, min_length={self._min_length})"
        )
