"""Tokenization of raw text into lowercase word tokens.

A token is a maximal run of ASCII letters or digits that starts with a
letter; embedded apostrophes are allowed so contractions survive as single
tokens ("don't" -> "don't").  Purely numeric runs are discarded — they carry
no topical content in the newsgroup corpora the paper evaluates on and would
otherwise dominate the tail of the vocabulary.
"""

from __future__ import annotations

import re
from typing import List

__all__ = ["tokenize"]

_TOKEN_RE = re.compile(r"[a-z][a-z0-9']*")
_APOSTROPHE_TRIM = re.compile(r"^'+|'+$")


def tokenize(text: str) -> List[str]:
    """Split ``text`` into lowercase tokens.

    >>> tokenize("The QUICK brown-fox, don't panic! v2")
    ['the', 'quick', 'brown', 'fox', "don't", 'panic', 'v2']
    """
    tokens = []
    for match in _TOKEN_RE.finditer(text.lower()):
        token = _APOSTROPHE_TRIM.sub("", match.group())
        if token:
            tokens.append(token)
    return tokens
