"""Command-line interface.

Subcommands::

    repro-usefulness synth --out-dir data/          # corpora + query log
    repro-usefulness represent --collection data/D1.jsonl.gz --out D1.rep.json
    repro-usefulness estimate --collection ... --query "terms ..." --threshold 0.2
    repro-usefulness evaluate --database D1 --queries 2000
    repro-usefulness scalability

Every command prints plain text to stdout; all randomness is seeded.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import get_estimator, true_usefulness
from repro.corpus import (
    Query,
    analyze_collection,
    load_collection,
    load_trec_collection,
    save_collection,
    save_queries,
)
from repro.corpus.synth import NewsgroupModel, QueryLogModel, build_paper_databases
from repro.engine import SearchEngine
from repro.evaluation import (
    MethodSpec,
    format_error_table,
    format_match_table,
    format_sizing_table,
    run_usefulness_experiment,
)
from repro.metasearch import allocate_documents, threshold_for_k
from repro.representatives import (
    DatabaseRepresentative,
    PAPER_COLLECTION_STATS,
    build_representative,
    sizing_for_collection,
)

__all__ = ["main", "build_parser"]


def _cmd_synth(args: argparse.Namespace) -> int:
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    model = NewsgroupModel(seed=args.seed)
    d1, d2, d3 = build_paper_databases(model)
    for collection in (d1, d2, d3):
        path = out_dir / f"{collection.name}.jsonl.gz"
        save_collection(collection, path)
        print(f"wrote {path} ({collection.n_documents} docs, {collection.n_terms} terms)")
    queries = QueryLogModel(model, seed=args.query_seed).generate(args.n_queries)
    qpath = out_dir / "queries.jsonl.gz"
    save_queries(queries, qpath)
    print(f"wrote {qpath} ({len(queries)} queries)")
    return 0


def _cmd_represent(args: argparse.Namespace) -> int:
    collection = load_collection(args.collection)
    engine = SearchEngine(collection)
    representative = build_representative(engine)
    representative.save(args.out)
    print(
        f"wrote {args.out} ({representative.n_terms} terms, "
        f"{representative.n_documents} docs)"
    )
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    collection = load_collection(args.collection)
    engine = SearchEngine(collection)
    if args.representative:
        representative = DatabaseRepresentative.load(args.representative)
    else:
        representative = build_representative(engine)
    query = Query.from_terms(args.query.split())
    estimator = get_estimator(args.method)
    estimate = estimator.estimate(query, representative, args.threshold)
    truth = true_usefulness(engine, query, args.threshold)
    print(f"database : {collection.name} ({collection.n_documents} docs)")
    print(f"query    : {' '.join(query.terms)}  (threshold {args.threshold})")
    print(f"method   : {estimator.label}")
    print(f"estimated: NoDoc={estimate.nodoc:.2f}  AvgSim={estimate.avgsim:.4f}")
    print(f"true     : NoDoc={truth.nodoc:.0f}  AvgSim={truth.avgsim:.4f}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    model = NewsgroupModel(seed=args.seed)
    d1, d2, d3 = build_paper_databases(model)
    by_name = {"D1": d1, "D2": d2, "D3": d3}
    collection = by_name[args.database]
    engine = SearchEngine(collection)
    representative = build_representative(engine)
    queries = QueryLogModel(model, seed=args.query_seed).generate(args.queries)
    methods = [
        MethodSpec(name, get_estimator(name), representative)
        for name in args.methods
    ]
    result = run_usefulness_experiment(engine, queries, methods)
    print(format_match_table(result))
    print()
    print(format_error_table(result))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    collection = load_collection(args.collection)
    stats = analyze_collection(collection)
    print(f"collection           : {collection.name}")
    print(f"documents            : {stats.n_documents}")
    print(f"distinct terms       : {stats.n_terms}")
    print(f"tokens               : {stats.n_tokens}")
    print(f"mean / median length : {stats.mean_doc_length:.1f} / "
          f"{stats.median_doc_length:.1f}")
    print(f"Zipf exponent (head) : {stats.zipf_exponent:.2f} "
          f"(R^2 {stats.zipf_r_squared:.3f})")
    print(f"Heaps beta           : {stats.heaps_beta:.2f}")
    print(f"df Gini coefficient  : {stats.df_gini:.2f}")
    sizing = sizing_for_collection(collection)
    print(f"representative       : {sizing.representative_pages:.1f} pages "
          f"({sizing.percent:.2f}% of collection; "
          f"{sizing.quantized_percent:.2f}% one-byte)")
    return 0


def _cmd_allocate(args: argparse.Namespace) -> int:
    representatives = {}
    for path in args.representatives:
        representative = DatabaseRepresentative.load(path)
        representatives[representative.name] = representative
    query = Query.from_terms(args.query.split())
    threshold = threshold_for_k(query, representatives, args.k)
    quotas = allocate_documents(query, representatives, args.k)
    print(f"query    : {' '.join(query.terms)}")
    print(f"desired  : {args.k} documents")
    print(f"threshold: {threshold:.4f}")
    for name in sorted(quotas):
        print(f"  {name}: {quotas[name]}")
    return 0


def _cmd_import_trec(args: argparse.Namespace) -> int:
    collection = load_trec_collection(
        args.files, name=args.name, limit=args.limit
    )
    save_collection(collection, args.out)
    print(
        f"wrote {args.out} ({collection.n_documents} docs, "
        f"{collection.n_terms} terms)"
    )
    return 0


def _cmd_scalability(args: argparse.Namespace) -> int:
    rows = list(PAPER_COLLECTION_STATS)
    if args.synthetic:
        model = NewsgroupModel(seed=args.seed)
        rows.extend(
            sizing_for_collection(c) for c in build_paper_databases(model)
        )
    print(format_sizing_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-usefulness",
        description="Usefulness estimation for metasearch engine selection "
        "(Meng et al., ICDE 1999 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synth", help="generate the synthetic D1/D2/D3 + query log")
    p.add_argument("--out-dir", default="data")
    p.add_argument("--seed", type=int, default=1999)
    p.add_argument("--query-seed", type=int, default=42)
    p.add_argument("--n-queries", type=int, default=6234)
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("represent", help="build a database representative")
    p.add_argument("--collection", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_represent)

    p = sub.add_parser("estimate", help="estimate usefulness for one query")
    p.add_argument("--collection", required=True)
    p.add_argument("--representative", default=None)
    p.add_argument("--query", required=True, help="space-separated terms")
    p.add_argument("--threshold", type=float, default=0.2)
    p.add_argument("--method", default="subrange")
    p.set_defaults(func=_cmd_estimate)

    p = sub.add_parser("evaluate", help="run the Section 4 comparison tables")
    p.add_argument("--database", choices=("D1", "D2", "D3"), default="D1")
    p.add_argument("--queries", type=int, default=6234)
    p.add_argument(
        "--methods",
        nargs="+",
        default=["gloss-hc", "prev", "subrange"],
    )
    p.add_argument("--seed", type=int, default=1999)
    p.add_argument("--query-seed", type=int, default=42)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("analyze", help="corpus statistics of a collection")
    p.add_argument("--collection", required=True)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "allocate", help="per-engine retrieval quotas for a desired k"
    )
    p.add_argument("--representatives", nargs="+", required=True,
                   help="representative JSON files, one per engine")
    p.add_argument("--query", required=True, help="space-separated terms")
    p.add_argument("-k", type=int, default=10)
    p.set_defaults(func=_cmd_allocate)

    p = sub.add_parser(
        "import-trec", help="convert TREC SGML files into a collection"
    )
    p.add_argument("files", nargs="+")
    p.add_argument("--name", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--limit", type=int, default=None)
    p.set_defaults(func=_cmd_import_trec)

    p = sub.add_parser("scalability", help="print the Section 3.2 sizing table")
    p.add_argument("--synthetic", action="store_true",
                   help="append rows for the synthetic D1/D2/D3")
    p.add_argument("--seed", type=int, default=1999)
    p.set_defaults(func=_cmd_scalability)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
